"""The :class:`Country` record and :class:`CountryRegistry` lookup service.

The registry is the single authority for resolving country identity across
all dataset emitters and the merge pipeline.  It indexes countries by
ISO-3166 alpha-2 code, canonical name, and every known alias (after
normalization by :func:`repro.countries.names.normalize_name`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Tuple

from repro.countries.data import COUNTRY_ROWS
from repro.countries.iso3 import ISO2_TO_ISO3
from repro.countries.names import normalize_name
from repro.errors import CountryLookupError
from repro.timeutils.calendars import MON_FRI, SUN_THU, Workweek
from repro.timeutils.timezones import FixedOffset

__all__ = ["Archetype", "Country", "CountryRegistry", "default_registry"]


class Archetype(enum.Enum):
    """Coarse behavioural archetype used to seed synthetic world profiles.

    The archetype shapes the *distributions* from which a country's
    political, economic, and infrastructure parameters are drawn.  It mirrors
    the populations the paper documents rather than encoding outcomes
    directly: e.g. an ``EXAM`` country is parameterized to be autocratic with
    a state-dominated access market and a policy of exam-season shutdowns,
    but whether any given synthetic year contains shutdowns is decided by
    the stochastic world generator.
    """

    EXAM = "exam"                # recurring exam-season shutdowns (Iraq, Syria)
    COUP = "coup"                # coup-prone; blackouts during coups (Myanmar)
    PROTEST = "protest"          # shutdowns responding to protests (Iran)
    ELECTION = "election"        # election-time blackouts (Belarus, Gabon)
    AUTOCRACY = "autocracy"      # capable autocracy, fewer realized events
    FRAGILE = "fragile"          # fragile infrastructure; outage-heavy (Togo)
    SUBNATIONAL = "subnational"  # region-scoped mobile shutdowns (India)
    STABLE = "stable"            # neither class of event expected


#: Per-archetype default hints, each in [0, 1]:
#: (autocracy, income, state_isp_share, infrastructure_fragility).
_ARCHETYPE_HINTS: Mapping[Archetype, Tuple[float, float, float, float]] = {
    Archetype.EXAM: (0.85, 0.30, 0.88, 0.50),
    Archetype.COUP: (0.80, 0.20, 0.85, 0.60),
    Archetype.PROTEST: (0.70, 0.35, 0.60, 0.45),
    Archetype.ELECTION: (0.75, 0.25, 0.80, 0.55),
    Archetype.AUTOCRACY: (0.85, 0.45, 0.55, 0.35),
    Archetype.FRAGILE: (0.60, 0.15, 0.30, 0.85),
    Archetype.SUBNATIONAL: (0.55, 0.35, 0.25, 0.35),
    Archetype.STABLE: (0.15, 0.80, 0.10, 0.08),
}

_WORKWEEKS: Mapping[str, Workweek] = {"F": MON_FRI, "S": SUN_THU}


@dataclass(frozen=True)
class Country:
    """A country as known to the registry.

    Attributes mirror the columns of :data:`repro.countries.data.COUNTRY_ROWS`
    plus the archetype-derived hints consumed by the world generator.
    """

    iso2: str
    name: str
    region: str
    utc_offset: FixedOffset
    workweek: Workweek
    population_millions: float
    archetype: Archetype
    aliases: Tuple[str, ...] = ()
    autocracy_hint: float = 0.0
    income_hint: float = 0.0
    state_isp_hint: float = 0.0
    fragility_hint: float = 0.0

    @property
    def iso3(self) -> str:
        """ISO-3166 alpha-3 code (some sources publish only these)."""
        return ISO2_TO_ISO3[self.iso2]

    @property
    def friday_weekend(self) -> bool:
        """Whether Friday falls outside the customary workweek."""
        return 4 in self.workweek.weekend

    def all_names(self) -> Tuple[str, ...]:
        """Canonical name followed by every alias."""
        return (self.name, *self.aliases)

    def __str__(self) -> str:
        return f"{self.name} ({self.iso2})"


class CountryRegistry:
    """Indexed collection of :class:`Country` records.

    Lookup accepts ISO-3166 alpha-2 codes (case-insensitive) and any
    canonical name or alias (normalization-insensitive).  Iteration yields
    countries in the stable order of the source table.
    """

    def __init__(self, countries: Tuple[Country, ...]):
        self._countries = countries
        self._by_iso2: Dict[str, Country] = {}
        self._by_iso3: Dict[str, Country] = {}
        self._by_name: Dict[str, Country] = {}
        for country in countries:
            code = country.iso2.upper()
            if code in self._by_iso2:
                raise CountryLookupError(f"duplicate ISO code {code}")
            self._by_iso2[code] = country
            iso3 = ISO2_TO_ISO3.get(code)
            if iso3 is not None:
                if iso3 in self._by_iso3:
                    raise CountryLookupError(
                        f"duplicate ISO-3 code {iso3}")
                self._by_iso3[iso3] = country
            for name in country.all_names():
                key = normalize_name(name)
                existing = self._by_name.get(key)
                if existing is not None and existing is not country:
                    raise CountryLookupError(
                        f"name {name!r} maps to both {existing.iso2} "
                        f"and {country.iso2}")
                self._by_name[key] = country

    @classmethod
    def from_rows(cls, rows=COUNTRY_ROWS) -> "CountryRegistry":
        """Build a registry from static table rows."""
        countries = []
        for iso2, name, region, offset, ww, pop, archetype, aliases in rows:
            kind = Archetype(archetype)
            autocracy, income, state_isp, fragility = _ARCHETYPE_HINTS[kind]
            countries.append(Country(
                iso2=iso2,
                name=name,
                region=region,
                utc_offset=FixedOffset(offset),
                workweek=_WORKWEEKS[ww],
                population_millions=pop,
                archetype=kind,
                aliases=tuple(aliases),
                autocracy_hint=autocracy,
                income_hint=income,
                state_isp_hint=state_isp,
                fragility_hint=fragility,
            ))
        return cls(tuple(countries))

    def __len__(self) -> int:
        return len(self._countries)

    def __iter__(self) -> Iterator[Country]:
        return iter(self._countries)

    def __contains__(self, ref: str) -> bool:
        try:
            self.lookup(ref)
        except CountryLookupError:
            return False
        return True

    def get(self, iso2: str) -> Country:
        """Resolve an ISO-3166 alpha-2 code (case-insensitive)."""
        try:
            return self._by_iso2[iso2.upper()]
        except KeyError:
            raise CountryLookupError(
                f"unknown ISO-3166 alpha-2 code: {iso2!r}") from None

    def by_name(self, name: str) -> Country:
        """Resolve a country name or alias."""
        try:
            return self._by_name[normalize_name(name)]
        except KeyError:
            raise CountryLookupError(
                f"unresolvable country name: {name!r}") from None

    def by_iso3(self, iso3: str) -> Country:
        """Resolve an ISO-3166 alpha-3 code (case-insensitive)."""
        try:
            return self._by_iso3[iso3.upper()]
        except KeyError:
            raise CountryLookupError(
                f"unknown ISO-3166 alpha-3 code: {iso3!r}") from None

    def lookup(self, ref: str) -> Country:
        """Resolve an ISO alpha-2/alpha-3 code or a name/alias."""
        if len(ref) == 2:
            try:
                return self.get(ref)
            except CountryLookupError:
                pass
        if len(ref) == 3:
            try:
                return self.by_iso3(ref)
            except CountryLookupError:
                pass
        return self.by_name(ref)

    def codes(self) -> Tuple[str, ...]:
        """All ISO codes in table order."""
        return tuple(c.iso2 for c in self._countries)


_DEFAULT: CountryRegistry | None = None


def default_registry() -> CountryRegistry:
    """The process-wide registry built from the static table (cached)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = CountryRegistry.from_rows()
    return _DEFAULT
