"""ISO-3166 alpha-3 codes.

The paper keys its merged data on alpha-2 codes, but several of its
sources (the World Bank Data Bank most prominently) publish alpha-3
codes.  The registry exposes both so emitters can publish whichever the
real source uses and the merge layer can resolve either.
"""

from __future__ import annotations

from typing import Mapping

__all__ = ["ISO2_TO_ISO3"]

ISO2_TO_ISO3: Mapping[str, str] = {
    "SY": "SYR", "IQ": "IRQ", "IR": "IRN", "SA": "SAU", "YE": "YEM",
    "JO": "JOR", "LB": "LBN", "IL": "ISR", "AE": "ARE", "KW": "KWT",
    "QA": "QAT", "BH": "BHR", "OM": "OMN", "TR": "TUR", "PS": "PSE",
    "DZ": "DZA", "SD": "SDN", "EG": "EGY", "LY": "LBY", "TN": "TUN",
    "MA": "MAR", "ET": "ETH", "ER": "ERI", "SO": "SOM", "DJ": "DJI",
    "KE": "KEN", "TZ": "TZA", "UG": "UGA", "RW": "RWA", "BI": "BDI",
    "CD": "COD", "CG": "COG", "CM": "CMR", "NG": "NGA", "NE": "NER",
    "TG": "TGO", "BJ": "BEN", "BF": "BFA", "ML": "MLI", "GN": "GIN",
    "GW": "GNB", "SN": "SEN", "GM": "GMB", "SL": "SLE", "LR": "LBR",
    "CI": "CIV", "GH": "GHA", "MR": "MRT", "TD": "TCD", "CF": "CAF",
    "GA": "GAB", "GQ": "GNQ", "ST": "STP", "AO": "AGO", "ZM": "ZMB",
    "ZW": "ZWE", "MW": "MWI", "MZ": "MOZ", "SZ": "SWZ", "LS": "LSO",
    "BW": "BWA", "NA": "NAM", "ZA": "ZAF", "MG": "MDG", "MU": "MUS",
    "KM": "COM", "SC": "SYC", "CV": "CPV", "SS": "SSD", "MM": "MMR",
    "IN": "IND", "PK": "PAK", "BD": "BGD", "LK": "LKA", "NP": "NPL",
    "BT": "BTN", "AF": "AFG", "KZ": "KAZ", "KG": "KGZ", "TJ": "TJK",
    "TM": "TKM", "UZ": "UZB", "AZ": "AZE", "AM": "ARM", "GE": "GEO",
    "CN": "CHN", "KP": "PRK", "KR": "KOR", "JP": "JPN", "MN": "MNG",
    "TH": "THA", "VN": "VNM", "LA": "LAO", "KH": "KHM", "MY": "MYS",
    "SG": "SGP", "ID": "IDN", "PH": "PHL", "TL": "TLS", "BN": "BRN",
    "TW": "TWN", "PG": "PNG", "FJ": "FJI", "SB": "SLB", "VU": "VUT",
    "WS": "WSM", "TO": "TON", "AU": "AUS", "NZ": "NZL", "RU": "RUS",
    "BY": "BLR", "UA": "UKR", "MD": "MDA", "RO": "ROU", "PL": "POL",
    "DE": "DEU", "FR": "FRA", "ES": "ESP", "PT": "PRT", "IT": "ITA",
    "GB": "GBR", "IE": "IRL", "NL": "NLD", "BE": "BEL", "LU": "LUX",
    "CH": "CHE", "AT": "AUT", "CZ": "CZE", "SK": "SVK", "HU": "HUN",
    "SI": "SVN", "HR": "HRV", "BA": "BIH", "RS": "SRB", "ME": "MNE",
    "MK": "MKD", "AL": "ALB", "GR": "GRC", "BG": "BGR", "SE": "SWE",
    "NO": "NOR", "DK": "DNK", "FI": "FIN", "EE": "EST", "LV": "LVA",
    "LT": "LTU", "IS": "ISL", "MT": "MLT", "CY": "CYP", "US": "USA",
    "CA": "CAN", "MX": "MEX", "GT": "GTM", "BZ": "BLZ", "SV": "SLV",
    "HN": "HND", "NI": "NIC", "CR": "CRI", "PA": "PAN", "CU": "CUB",
    "DO": "DOM", "HT": "HTI", "JM": "JAM", "TT": "TTO", "BS": "BHS",
    "BB": "BRB", "VE": "VEN", "CO": "COL", "EC": "ECU", "PE": "PER",
    "BR": "BRA", "BO": "BOL", "PY": "PRY", "UY": "URY", "AR": "ARG",
    "CL": "CHL", "GY": "GUY", "SR": "SUR",
}
