"""Country registry and name standardization.

The paper's first merge step (§4) standardizes country names across datasets
that disagree ("Ivory Coast" vs "Cote d'Ivoire", "Swaziland" vs "Eswatini",
"Timor Leste" vs "Timor-Leste", long-form official names) and then keys
everything on ISO-3166 alpha-2 codes.  This subpackage provides:

- :mod:`repro.countries.data` — the static table of countries: ISO code,
  canonical name, known name variants, capital-city UTC offset, workweek
  custom, population, and the archetype hints used by the synthetic world
  generator.
- :mod:`repro.countries.names` — name normalization and alias resolution.
- :mod:`repro.countries.registry` — the :class:`Country` record and the
  :class:`CountryRegistry` lookup service.
"""

from repro.countries.registry import (
    Archetype,
    Country,
    CountryRegistry,
    default_registry,
)
from repro.countries.names import normalize_name

__all__ = [
    "Archetype",
    "Country",
    "CountryRegistry",
    "default_registry",
    "normalize_name",
]
