"""Country-name normalization.

Real-world datasets disagree on country names for mundane reasons (§4 of the
paper): languages ("Ivory Coast" vs "Cote d'Ivoire"), renames ("Swaziland"
vs "Eswatini"), punctuation ("Timor Leste" vs "Timor-Leste"), and long
official forms ("Venezuela, Bolivarian Republic of").  The synthetic dataset
emitters in :mod:`repro.datasets` intentionally emit these variants, and the
merge pipeline resolves them through :func:`normalize_name` plus the
registry's alias table.

:func:`normalize_name` is deliberately conservative: it only removes
typographic noise (case, accents, punctuation, whitespace).  Semantic
variants — renames and official long forms — are resolved by the explicit
alias table in :mod:`repro.countries.data`, because aggressive word-stripping
would conflate distinct countries (both Koreas and both Congos reduce to the
same words once "Democratic", "People's" and "Republic" are dropped).
"""

from __future__ import annotations

import re
import unicodedata

__all__ = ["normalize_name"]

_APOSTROPHES = re.compile(r"[‘’']")
_PUNCTUATION = re.compile(r"[^a-z0-9 ]+")
_WHITESPACE = re.compile(r"\s+")


def normalize_name(name: str) -> str:
    """Collapse a country name to a canonical lookup key.

    Lowercases, strips accents, folds apostrophes into the preceding word
    (so "Cote d'Ivoire" and "Cote dIvoire" agree), replaces remaining
    punctuation with spaces, and collapses whitespace.

    >>> normalize_name("Côte d'Ivoire")
    'cote divoire'
    >>> normalize_name("Timor Leste") == normalize_name("Timor-Leste")
    True
    """
    decomposed = unicodedata.normalize("NFKD", name)
    ascii_only = decomposed.encode("ascii", "ignore").decode("ascii")
    lowered = ascii_only.lower().replace("&", " and ")
    no_apostrophes = _APOSTROPHES.sub("", lowered)
    cleaned = _PUNCTUATION.sub(" ", no_apostrophes)
    return _WHITESPACE.sub(" ", cleaned).strip()
