"""Mann-Whitney U test (two-sided, normal approximation with tie
correction).

The paper's §5.1 figures argue that indicator distributions differ across
the Shutdowns / Outages / Neither groups by showing CDFs.  The Mann-Whitney
U test formalizes those comparisons: it tests whether one group's values
are stochastically larger than another's, without distributional
assumptions — appropriate for bounded indices and heavy-tailed GDP alike.

Implemented from first principles: rank the pooled sample (midranks for
ties), compute U from rank sums, and evaluate the two-sided p-value with
the normal approximation including the tie-corrected variance and a
continuity correction — the same default SciPy uses for large samples.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.errors import SignalError

__all__ = ["MannWhitneyResult", "mann_whitney_u", "rankdata"]


def rankdata(values: Sequence[float]) -> List[float]:
    """Midranks of ``values`` (ties share the average rank).

    >>> rankdata([10, 20, 20, 30])
    [1.0, 2.5, 2.5, 4.0]
    """
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while (j + 1 < len(order)
               and values[order[j + 1]] == values[order[i]]):
            j += 1
        midrank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = midrank
        i = j + 1
    return ranks


@dataclass(frozen=True)
class MannWhitneyResult:
    """Test outcome."""

    u_statistic: float
    p_value: float
    n1: int
    n2: int

    @property
    def effect_size(self) -> float:
        """The common-language effect size P(X > Y) + 0.5 P(X = Y)."""
        return self.u_statistic / (self.n1 * self.n2)


def mann_whitney_u(sample1: Iterable[float],
                   sample2: Iterable[float]) -> MannWhitneyResult:
    """Two-sided Mann-Whitney U test.

    Returns the U statistic of ``sample1`` (large U means sample1 tends
    to exceed sample2) and the two-sided p-value.
    """
    x = list(sample1)
    y = list(sample2)
    n1, n2 = len(x), len(y)
    if n1 == 0 or n2 == 0:
        raise SignalError("Mann-Whitney requires two non-empty samples")
    pooled = x + y
    ranks = rankdata(pooled)
    rank_sum_1 = sum(ranks[:n1])
    u1 = rank_sum_1 - n1 * (n1 + 1) / 2.0

    n = n1 + n2
    mean_u = n1 * n2 / 2.0
    tie_counts = Counter(pooled).values()
    tie_term = sum(t ** 3 - t for t in tie_counts)
    variance = (n1 * n2 / 12.0) * ((n + 1) - tie_term / (n * (n - 1)))
    if variance <= 0:
        # All pooled values identical: no evidence of any difference.
        return MannWhitneyResult(u_statistic=u1, p_value=1.0, n1=n1, n2=n2)
    # Continuity correction toward the mean.
    z = (u1 - mean_u - math.copysign(0.5, u1 - mean_u)) \
        / math.sqrt(variance)
    if u1 == mean_u:
        z = 0.0
    p = 2.0 * _normal_sf(abs(z))
    return MannWhitneyResult(u_statistic=u1, p_value=min(1.0, p),
                             n1=n1, n2=n2)


def _normal_sf(z: float) -> float:
    """Standard normal survival function via erfc."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))
