"""Empirical cumulative distribution functions.

All of the paper's Figures 4-14 are CDFs over per-event or per-country-year
values, so the ECDF is the analysis layer's workhorse.  The implementation
uses the right-continuous step convention ``F(x) = P(X <= x)``.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from repro.errors import SignalError

__all__ = ["ECDF"]


@dataclass(frozen=True)
class ECDF:
    """An empirical CDF over a fixed sample.

    >>> cdf = ECDF.from_samples([1, 2, 2, 4])
    >>> cdf(2)
    0.75
    >>> cdf.quantile(0.5)
    2
    """

    sorted_samples: Tuple[float, ...]

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "ECDF":
        """Build from any iterable of numbers (must be non-empty)."""
        ordered = tuple(sorted(samples))
        if not ordered:
            raise SignalError("cannot build an ECDF from an empty sample")
        return cls(ordered)

    @property
    def n(self) -> int:
        """Sample size."""
        return len(self.sorted_samples)

    def __call__(self, x: float) -> float:
        """``P(X <= x)``."""
        return bisect.bisect_right(self.sorted_samples, x) / self.n

    def survival(self, x: float) -> float:
        """``P(X > x)``."""
        return 1.0 - self(x)

    def quantile(self, q: float) -> float:
        """The smallest sample value ``v`` with ``F(v) >= q``.

        ``q`` must lie in (0, 1]; ``quantile(0.5)`` is the lower median.
        """
        if not 0.0 < q <= 1.0:
            raise SignalError(f"quantile level out of range: {q}")
        # Smallest index i such that (i + 1) / n >= q, i.e. ceil(q*n) - 1.
        # The epsilon guards against q*n landing just above an integer due
        # to floating-point error (e.g. 0.3 * 10 == 3.0000000000000004).
        index = math.ceil(q * self.n - 1e-9) - 1
        index = max(0, min(index, self.n - 1))
        return self.sorted_samples[index]

    @property
    def median(self) -> float:
        """The lower median of the sample."""
        return self.quantile(0.5)

    def points(self) -> Sequence[Tuple[float, float]]:
        """The step points ``(x, F(x))`` at each distinct sample value.

        This is exactly the series a CDF plot of the figure would draw.
        """
        steps = []
        previous = None
        for i, x in enumerate(self.sorted_samples):
            if x != previous:
                if previous is not None:
                    steps.append((previous, i / self.n))
                previous = x
        steps.append((self.sorted_samples[-1], 1.0))
        return steps

    def mass_at(self, x: float) -> float:
        """``P(X == x)`` — the height of the step at ``x``."""
        left = bisect.bisect_left(self.sorted_samples, x)
        right = bisect.bisect_right(self.sorted_samples, x)
        return (right - left) / self.n
