"""Exact binomial tests.

§5.3 tests whether the low number of shutdowns starting on Fridays is a
statistically significant deviation from a uniform weekday distribution,
reporting a two-tailed binomial p-value (< 0.00065).  We implement the exact
test (no normal approximation) using the standard "sum of outcomes no more
likely than the observation" definition of the two-tailed p-value, which is
what SciPy's ``binomtest`` computes.
"""

from __future__ import annotations

import math

from repro.errors import SignalError

__all__ = ["binomial_pmf", "binomial_test_two_tailed"]


def binomial_pmf(k: int, n: int, p: float) -> float:
    """``P(X = k)`` for ``X ~ Binomial(n, p)``.

    Computed in log space so large ``n`` does not overflow.
    """
    _validate(k, n, p)
    if p == 0.0:
        return 1.0 if k == 0 else 0.0
    if p == 1.0:
        return 1.0 if k == n else 0.0
    log_pmf = (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
        + k * math.log(p) + (n - k) * math.log(1.0 - p)
    )
    return math.exp(log_pmf)


def binomial_test_two_tailed(k: int, n: int, p: float) -> float:
    """Exact two-tailed binomial test p-value.

    Sums the probabilities of all outcomes whose likelihood does not exceed
    that of the observed ``k`` (with a small relative tolerance so that
    symmetric cases at ``p = 0.5`` behave exactly).

    >>> round(binomial_test_two_tailed(2, 10, 0.5), 4)
    0.1094
    """
    _validate(k, n, p)
    observed = binomial_pmf(k, n, p)
    threshold = observed * (1.0 + 1e-7)
    total = 0.0
    for outcome in range(n + 1):
        mass = binomial_pmf(outcome, n, p)
        if mass <= threshold:
            total += mass
    return min(1.0, total)


def _validate(k: int, n: int, p: float) -> None:
    if n < 0:
        raise SignalError(f"binomial n must be non-negative: {n}")
    if not 0 <= k <= n:
        raise SignalError(f"binomial k out of range: k={k} n={n}")
    if not 0.0 <= p <= 1.0:
        raise SignalError(f"binomial p out of range: {p}")
