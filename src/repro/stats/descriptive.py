"""Descriptive statistics helpers.

Small, dependency-free helpers used across the analysis layer.  ``median``
follows the usual interpolating convention (average of the two central
values for even-length samples); ``fraction_multiple_of`` implements the
paper's "duration is a multiple of 30 minutes" style measurements (§5.3).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import SignalError

__all__ = ["median", "quantile", "fraction", "fraction_multiple_of", "mean"]

T = TypeVar("T")


def mean(samples: Iterable[float]) -> float:
    """Arithmetic mean of a non-empty sample."""
    values = list(samples)
    if not values:
        raise SignalError("mean of an empty sample")
    return sum(values) / len(values)


def median(samples: Iterable[float]) -> float:
    """Interpolating median of a non-empty sample."""
    ordered = sorted(samples)
    if not ordered:
        raise SignalError("median of an empty sample")
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def quantile(samples: Iterable[float], q: float) -> float:
    """Lower-median style quantile: the smallest sample value at or above
    the ``q`` probability level."""
    ordered = sorted(samples)
    if not ordered:
        raise SignalError("quantile of an empty sample")
    if not 0.0 < q <= 1.0:
        raise SignalError(f"quantile level out of range: {q}")
    index = min(len(ordered) - 1, max(0, int(q * len(ordered) - 1e-9)))
    # int() truncation gives ceil(q*n)-1 for non-integer q*n; for exact
    # multiples the epsilon keeps the index at the boundary sample.
    return float(ordered[index])


def fraction(items: Iterable[T], predicate: Callable[[T], bool]) -> float:
    """Fraction of ``items`` satisfying ``predicate`` (items must be
    non-empty)."""
    total = 0
    hits = 0
    for item in items:
        total += 1
        if predicate(item):
            hits += 1
    if total == 0:
        raise SignalError("fraction of an empty collection")
    return hits / total


def fraction_multiple_of(values: Sequence[float], step: float,
                         tolerance: float = 1e-9) -> float:
    """Fraction of ``values`` that are an exact multiple of ``step``.

    Used for §5.3's observations such as "over 55% of shutdowns lasting a
    multiple of 30 minutes" and "67.7% of recurrence intervals at exactly
    1-4 days".
    """
    if step <= 0:
        raise SignalError(f"step must be positive: {step}")
    return fraction(
        values,
        lambda v: abs(v / step - round(v / step)) <= tolerance)
