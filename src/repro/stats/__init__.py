"""Statistics used by the analysis layer.

Everything the paper's figures and tables need is implemented here from
first principles so the analysis code has no hidden dependencies:

- :mod:`repro.stats.ecdf` — empirical CDFs (every figure 4-14 is a CDF).
- :mod:`repro.stats.descriptive` — medians, quantiles, fractions.
- :mod:`repro.stats.rolling` — sliding-window medians (IODA's alert engine
  compares each bin against the median of a trailing history window).
- :mod:`repro.stats.binomial` — exact two-tailed binomial test (Figure 15's
  Friday-deficit significance test).
- :mod:`repro.stats.contingency` — day-level event/condition probability
  tables (Table 4).
"""

from repro.stats.ecdf import ECDF
from repro.stats.descriptive import (
    fraction,
    fraction_multiple_of,
    median,
    quantile,
)
from repro.stats.rolling import RollingMedian, rolling_median
from repro.stats.binomial import binomial_pmf, binomial_test_two_tailed
from repro.stats.contingency import ConditionalRates, DayLevelContingency

__all__ = [
    "ECDF",
    "fraction",
    "fraction_multiple_of",
    "median",
    "quantile",
    "RollingMedian",
    "rolling_median",
    "binomial_pmf",
    "binomial_test_two_tailed",
    "ConditionalRates",
    "DayLevelContingency",
]
