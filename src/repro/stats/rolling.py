"""Sliding-window medians.

IODA's alert engine compares each new bin of a signal against the median of
a trailing history window (24 hours for BGP, 7 days for active probing and
the telescope).  Two implementations of the same quantity live here:

- :class:`RollingMedian` maintains the median incrementally using a
  sorted window (O(log w) per push) — the scalar reference, one value
  at a time; :func:`rolling_median` is its batch convenience.
- :func:`trailing_median` computes every trailing-window median of a
  whole series at once with numpy bulk operations — the engine behind
  the columnar alert detector.  It is *exact*: tests assert bitwise
  equality with the scalar path on every series shape the detectors
  see.
- :func:`trailing_median_at` answers the same question at selected
  positions only, for callers (the alert detector's prefilter) that
  can prove most bins need no baseline at all.

Both use the interpolating median (mean of the central pair for even
counts), matching :func:`repro.stats.descriptive.median`.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Iterable, List, Optional

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.errors import SignalError

__all__ = ["RollingMedian", "TrailingMedianStream", "rolling_median",
           "trailing_median", "trailing_median_at"]


class RollingMedian:
    """Median over a sliding window of the last ``window`` values.

    Values are pushed one bin at a time; :attr:`median` reflects only the
    values currently inside the window.  The median is the interpolating
    median (mean of central pair for even counts), matching
    :func:`repro.stats.descriptive.median`.
    """

    def __init__(self, window: int):
        if window <= 0:
            raise SignalError(f"window must be positive: {window}")
        self._window = window
        self._queue: deque[float] = deque()
        self._sorted: List[float] = []

    @property
    def window(self) -> int:
        """Capacity of the sliding window, in values."""
        return self._window

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        """Whether the window has reached capacity."""
        return len(self._queue) == self._window

    def push(self, value: float) -> None:
        """Add a value, evicting the oldest if the window is full."""
        if len(self._queue) == self._window:
            oldest = self._queue.popleft()
            index = bisect.bisect_left(self._sorted, oldest)
            del self._sorted[index]
        self._queue.append(value)
        bisect.insort(self._sorted, value)

    @property
    def median(self) -> Optional[float]:
        """Current median, or ``None`` if the window is empty."""
        n = len(self._sorted)
        if n == 0:
            return None
        mid = n // 2
        if n % 2:
            return float(self._sorted[mid])
        return (self._sorted[mid - 1] + self._sorted[mid]) / 2.0


class TrailingMedianStream:
    """Incremental counterpart to :func:`trailing_median` — O(window) state.

    Values arrive chunk by chunk (the streaming detector feeds one chunk
    per watermark advance); the stream retains only the trailing
    ``window`` values, yet answers any trailing-window median inside a
    new chunk **bitwise-identically** to the batch path: the window of
    position ``i`` only ever reaches ``window`` values back, all of
    which live in the retained tail, so the same exact rank selection
    (:func:`trailing_median_at`) runs over the same multiset.  Per-push
    work is columnar — no per-bin Python loop — and state never grows
    with the length of the series, which is what lets a streamed
    timeline run arbitrarily long at bounded memory.
    """

    def __init__(self, window: int):
        if window <= 0:
            raise SignalError(f"window must be positive: {window}")
        self._window = window
        self._tail = np.empty(0, dtype=np.float64)
        self._count = 0

    @property
    def window(self) -> int:
        """Capacity of the trailing window, in values."""
        return self._window

    @property
    def count(self) -> int:
        """Total values absorbed so far (not just the retained tail)."""
        return self._count

    @property
    def tail_size(self) -> int:
        """Retained values — always ``min(count, window)``."""
        return len(self._tail)

    def medians_at(self, chunk: np.ndarray,
                   idx: np.ndarray) -> np.ndarray:
        """Trailing medians at positions ``idx`` *within* ``chunk``.

        ``out[k]`` is the median the batch path would compute at global
        position ``count + idx[k]`` of the full series — the strictly
        trailing window of up to ``window`` values ending just before
        that position.  ``chunk`` is the next contiguous run of values
        (not yet pushed); call :meth:`push` afterwards to absorb it.
        """
        chunk = np.ascontiguousarray(chunk, dtype=np.float64)
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size == 0:
            return np.empty(0)
        if idx.min() < 0 or idx.max() >= chunk.shape[0]:
            raise SignalError(
                f"positions out of range for chunk of {chunk.shape[0]} "
                f"values")
        joined = np.concatenate([self._tail, chunk])
        return trailing_median_at(joined, self._window,
                                  idx + len(self._tail))

    def push(self, chunk: np.ndarray) -> None:
        """Absorb a chunk, keeping only the trailing ``window`` values."""
        chunk = np.ascontiguousarray(chunk, dtype=np.float64)
        if chunk.ndim != 1:
            raise SignalError("push expects a one-dimensional chunk")
        self._count += chunk.shape[0]
        if chunk.shape[0] >= self._window:
            self._tail = chunk[-self._window:].copy()
        else:
            joined = np.concatenate([self._tail, chunk])
            self._tail = joined[-self._window:]


def rolling_median(values: Iterable[float],
                   window: int) -> List[Optional[float]]:
    """For each position, the median of the *preceding* ``window`` values.

    The value at index ``i`` summarizes values ``i-window .. i-1``; it is
    ``None`` while no history exists (index 0).  This trailing convention
    matches the alert engine, which must not let the current (possibly
    anomalous) bin influence its own baseline.
    """
    tracker = RollingMedian(window)
    medians: List[Optional[float]] = []
    for value in values:
        medians.append(tracker.median)
        tracker.push(value)
    return medians


#: Bounds on the coarse value-bucket count of the two-level rank select
#: below.  The coarse histogram matrix is ``buckets x (n+1)`` and its
#: cumsums dominate when buckets are plentiful, while the fine pass
#: grows as buckets shrink — so the count adapts to ``sqrt(2 *
#: n_unique)`` between these bounds.
_MIN_COARSE_BUCKETS = 16
_MAX_COARSE_BUCKETS = 64

#: Prefix lengths up to this are answered by sorting the padded prefix
#: matrix directly — cheaper than rank selection, and it keeps the
#: early-warm-up median wander (which would force many fine buckets)
#: out of the bucketed path.
_SMALL_PREFIX = 64


def trailing_median(values: np.ndarray, window: int, *,
                    first: int = 1) -> np.ndarray:
    """Every trailing-window median of ``values``, vectorized and exact.

    ``out[i]`` is the interpolating median of
    ``values[max(0, i - window):i]`` — the same strictly trailing
    convention as :func:`rolling_median` — for every ``i >= first``;
    positions before ``first`` are NaN.  Callers that only consume
    medians from some index on (the alert detector's minimum-history
    guard) pass ``first`` to skip the early warm-up entirely.

    The computation is an exact two-level counting rank-select, not an
    approximation: values are mapped to ranks of their sorted unique
    values, cumulative rank histograms answer "how many window elements
    are <= rank r" for every bin at once, and the two central order
    statistics are selected per bin (coarse bucket via a cumulative
    bucket histogram, then the rank range containing the medians is
    refined).  Short prefixes are handled by one
    :func:`~numpy.lib.stride_tricks.sliding_window_view` sort, which
    also bounds the memory of the widest (2016-bin telescope) windows:
    no ``n x window`` matrix is ever materialized.  Output bits match
    :class:`RollingMedian` exactly for every input.
    """
    if window <= 0:
        raise SignalError(f"window must be positive: {window}")
    v = np.ascontiguousarray(values, dtype=np.float64)
    if v.ndim != 1:
        raise SignalError("trailing_median expects a one-dimensional array")
    n = v.shape[0]
    out = np.full(n, np.nan)
    first = max(1, first)
    if n <= first:
        return out
    # One stable argsort yields everything the rank select needs: the
    # sorted unique values, each element's value rank, and the element
    # positions grouped by rank (``order`` itself).
    order = np.argsort(v, kind="stable")
    sv = v[order]
    new_flag = np.empty(n, dtype=bool)
    new_flag[0] = True
    np.not_equal(sv[1:], sv[:-1], out=new_flag[1:])
    uniq = sv[new_flag]
    n_uniq = uniq.shape[0]
    if n_uniq == 1:
        out[first:] = uniq[0]
        return out
    inv = np.empty(n, dtype=np.int64)
    inv[order] = np.cumsum(new_flag) - 1
    rank_starts = np.flatnonzero(new_flag)

    i = np.arange(first, n)
    lo = np.maximum(0, i - window)
    cnt = i - lo
    med = np.empty(len(i))

    # Short prefixes (window not yet sliding): sort the +inf-padded
    # prefix matrix and read the central pair off each sorted row.
    small = min(_SMALL_PREFIX, window, n - 1)
    n_small = int((i <= small).sum())
    if n_small:
        padded = np.concatenate([np.full(small, np.inf), v[:small]])
        rows = np.sort(sliding_window_view(padded, small)[i[:n_small]])
        c = cnt[:n_small]
        sel = np.arange(n_small)
        med[:n_small] = (rows[sel, (c - 1) // 2] + rows[sel, c // 2]) / 2.0

    if n_small < len(i):
        med[n_small:] = _rank_select_medians(
            v, uniq, inv, order, rank_starts,
            i[n_small:], lo[n_small:], cnt[n_small:])
    out[first:] = med
    return out


#: Requested-position counts up to this go through the per-position
#: partition loop in :func:`trailing_median_at`; denser requests fall
#: through to the columnar :func:`trailing_median`, whose fixed cost is
#: amortized once enough rows share it.
_SPARSE_ROWS = 32


def trailing_median_at(values: np.ndarray, window: int,
                       idx: np.ndarray) -> np.ndarray:
    """Exact trailing-window medians at selected positions only.

    ``out[k]`` equals ``trailing_median(values, window)[idx[k]]`` for
    every requested position — the same strictly trailing window and
    interpolating median, bit for bit — but computed per position with
    :func:`numpy.partition`.  The alert detector calls this after its
    necessary-condition prefilter has reduced thousands of bins to the
    handful that could possibly alert; a request dense enough that the
    columnar path is cheaper falls through to :func:`trailing_median`.
    """
    if window <= 0:
        raise SignalError(f"window must be positive: {window}")
    v = np.ascontiguousarray(values, dtype=np.float64)
    if v.ndim != 1:
        raise SignalError(
            "trailing_median_at expects a one-dimensional array")
    idx = np.asarray(idx, dtype=np.int64)
    if idx.size == 0:
        return np.empty(0)
    if idx.min() < 0 or idx.max() >= v.shape[0]:
        raise SignalError(
            f"positions out of range for series of {v.shape[0]} bins")
    if idx.size > _SPARSE_ROWS:
        first = max(1, int(idx.min()))
        return trailing_median(v, window, first=first)[idx]
    out = np.empty(idx.size)
    for k, j in enumerate(idx.tolist()):
        if j == 0:
            out[k] = np.nan
            continue
        w = v[max(0, j - window):j]
        c = w.shape[0]
        h = (c - 1) // 2
        if c % 2:
            out[k] = np.partition(w, h)[h]
        else:
            part = np.partition(w, (h, h + 1))
            out[k] = (part[h] + part[h + 1]) / 2.0
    return out


#: Element budget for the unified fine pass: the rank range the two
#: median statistics span, refined in one histogram.  Ranges whose
#: histogram or rank-compare matrix would exceed this fall back to the
#: per-bucket loop, whose compares stay one bucket wide.
_FINE_BUDGET = 500_000


def _rank_select_medians(v: np.ndarray, uniq: np.ndarray, inv: np.ndarray,
                         order: np.ndarray, rank_starts: np.ndarray,
                         i: np.ndarray, lo: np.ndarray,
                         cnt: np.ndarray) -> np.ndarray:
    """Central order statistics of every window ``v[lo_j:i_j]``.

    ``order`` is the stable value-order permutation of ``v`` and
    ``rank_starts[r]`` the offset in ``order`` where rank ``r``'s
    elements begin — both by-products of the caller's argsort.
    """
    n = v.shape[0]
    n_uniq = uniq.shape[0]
    n_rows = len(i)
    count_dtype = np.int16 if n < 32000 else np.int64
    # Target *counts*: the k-th smallest is the first rank whose
    # cumulative window count reaches k+1.
    t1 = ((cnt - 1) // 2 + 1).astype(count_dtype)
    t2 = (cnt // 2 + 1).astype(count_dtype)

    n_buckets = min(_MAX_COARSE_BUCKETS,
                    max(_MIN_COARSE_BUCKETS, int((2 * n_uniq) ** 0.5)))
    bucket_size = -(-n_uniq // n_buckets)
    coarse_of = inv // bucket_size
    n_coarse = -(-n_uniq // bucket_size)
    # cum[b, j] = #{l < j : coarse_of[l] <= b}; window counts differ
    # two columns.
    cum = np.zeros((n_coarse, n + 1), dtype=count_dtype)
    cum[coarse_of, np.arange(n) + 1] = 1
    np.cumsum(cum, axis=1, out=cum)
    # Accumulate across buckets only at the query columns — the window
    # rows are a strict subset of the time axis.
    window_counts = cum[:, i] - cum[:, lo]
    np.cumsum(window_counts, axis=0, out=window_counts)

    def coarse_select(target):
        bucket = (window_counts < target[None, :]).sum(axis=0)
        below = np.where(
            bucket > 0,
            window_counts[np.maximum(bucket - 1, 0), np.arange(n_rows)],
            np.zeros(1, count_dtype))
        return bucket, target - below

    b1, fine_t1 = coarse_select(t1)
    b2, fine_t2 = coarse_select(t2)
    if bucket_size == 1:
        return (uniq[b1] + uniq[b2]) / 2.0

    def members_in(rank_from, rank_to):
        """Element positions whose value rank lies in [rank_from, rank_to),
        straight off the argsort permutation."""
        stop = rank_starts[rank_to] if rank_to < n_uniq else n
        return order[rank_starts[rank_from]:stop]

    # Median trajectories wander slowly, so the two statistics usually
    # span a handful of adjacent coarse buckets: refine the whole rank
    # range in ONE fine histogram instead of a per-bucket loop.
    b_min = int(min(b1.min(), b2.min()))
    b_max = int(max(b1.max(), b2.max()))
    r0 = b_min * bucket_size
    width = min(n_uniq, (b_max + 1) * bucket_size) - r0
    t0 = int(lo.min())
    t_hi = int(i.max())
    if width * max(t_hi - t0 + 1, n_rows) <= _FINE_BUDGET:
        members = members_in(r0, r0 + width)
        inside = members[(members >= t0) & (members < t_hi)]
        fine = np.zeros((width, t_hi - t0 + 1), dtype=count_dtype)
        fine[inv[inside] - r0, inside - t0 + 1] = 1
        np.cumsum(fine, axis=1, out=fine)
        counts = fine[:, i - t0] - fine[:, lo - t0]
        np.cumsum(counts, axis=0, out=counts)
        # Absolute targets rebased to the range: counts below the range
        # are the coarse cumulative of the bucket before it.
        base = window_counts[b_min - 1] if b_min > 0 \
            else np.zeros(n_rows, count_dtype)
        r1 = r0 + (counts < (t1 - base)[None, :]).sum(axis=0)
        r2 = r0 + (counts < (t2 - base)[None, :]).sum(axis=0)
        return (uniq[r1] + uniq[r2]) / 2.0

    r1 = np.empty(n_rows, dtype=np.int64)
    r2 = np.empty(n_rows, dtype=np.int64)
    for b in np.unique(np.concatenate([b1, b2])):
        first_rank = int(b) * bucket_size
        width = min(bucket_size, n_uniq - first_rank)
        sel1 = np.flatnonzero(b1 == b)
        sel2 = np.flatnonzero(b2 == b)
        # Restrict the fine histogram to the time slab these rows'
        # windows cover — median trajectories are temporally local, so
        # the slabs stay narrow.
        t0 = int(min(lo[sel1].min() if len(sel1) else n,
                     lo[sel2].min() if len(sel2) else n))
        t_hi = int(max(i[sel1].max() if len(sel1) else 0,
                       i[sel2].max() if len(sel2) else 0))
        members = members_in(first_rank, first_rank + width)
        inside = members[(members >= t0) & (members < t_hi)]
        fine = np.zeros((width, t_hi - t0 + 1), dtype=count_dtype)
        fine[inv[inside] - first_rank, inside - t0 + 1] = 1
        np.cumsum(fine, axis=1, out=fine)
        for sel, target, ranks in ((sel1, fine_t1, r1), (sel2, fine_t2, r2)):
            if len(sel) == 0:
                continue
            counts = fine[:, i[sel] - t0] - fine[:, lo[sel] - t0]
            np.cumsum(counts, axis=0, out=counts)
            ranks[sel] = first_rank + \
                (counts < target[sel][None, :]).sum(axis=0)
    return (uniq[r1] + uniq[r2]) / 2.0
