"""Sliding-window medians.

IODA's alert engine compares each new bin of a signal against the median of
a trailing history window (24 hours for BGP, 7 days for active probing and
the telescope).  :class:`RollingMedian` maintains that median incrementally
using a sorted window, giving O(log w) updates; :func:`rolling_median` is
the batch convenience over a whole series.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Iterable, List, Optional

from repro.errors import SignalError

__all__ = ["RollingMedian", "rolling_median"]


class RollingMedian:
    """Median over a sliding window of the last ``window`` values.

    Values are pushed one bin at a time; :attr:`median` reflects only the
    values currently inside the window.  The median is the interpolating
    median (mean of central pair for even counts), matching
    :func:`repro.stats.descriptive.median`.
    """

    def __init__(self, window: int):
        if window <= 0:
            raise SignalError(f"window must be positive: {window}")
        self._window = window
        self._queue: deque[float] = deque()
        self._sorted: List[float] = []

    @property
    def window(self) -> int:
        """Capacity of the sliding window, in values."""
        return self._window

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        """Whether the window has reached capacity."""
        return len(self._queue) == self._window

    def push(self, value: float) -> None:
        """Add a value, evicting the oldest if the window is full."""
        if len(self._queue) == self._window:
            oldest = self._queue.popleft()
            index = bisect.bisect_left(self._sorted, oldest)
            del self._sorted[index]
        self._queue.append(value)
        bisect.insort(self._sorted, value)

    @property
    def median(self) -> Optional[float]:
        """Current median, or ``None`` if the window is empty."""
        n = len(self._sorted)
        if n == 0:
            return None
        mid = n // 2
        if n % 2:
            return float(self._sorted[mid])
        return (self._sorted[mid - 1] + self._sorted[mid]) / 2.0


def rolling_median(values: Iterable[float],
                   window: int) -> List[Optional[float]]:
    """For each position, the median of the *preceding* ``window`` values.

    The value at index ``i`` summarizes values ``i-window .. i-1``; it is
    ``None`` while no history exists (index 0).  This trailing convention
    matches the alert engine, which must not let the current (possibly
    anomalous) bin influence its own baseline.
    """
    tracker = RollingMedian(window)
    medians: List[Optional[float]] = []
    for value in values:
        medians.append(tracker.median)
        tracker.push(value)
    return medians
