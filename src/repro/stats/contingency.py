"""Day-level contingency analysis.

Table 4 of the paper reports, over all (country, day) pairs in the study
period, the probability of a shutdown / spontaneous outage starting on days
with and without an election, coup, or protest in that country.  This module
implements the underlying contingency computation generically: a universe of
(country, day) cells, a condition marking some cells, and an outcome marking
some cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Hashable, Iterable, Set, Tuple

from repro.errors import SignalError

__all__ = ["ConditionalRates", "DayLevelContingency"]

Cell = Tuple[Hashable, int]  # (country code, local day index)


@dataclass(frozen=True)
class ConditionalRates:
    """Outcome rates conditioned on a boolean cell condition.

    ``rate_given_condition`` is ``P(outcome | condition)``;
    ``rate_given_not_condition`` is ``P(outcome | ¬condition)``.
    ``risk_ratio`` is their ratio (``inf`` when the baseline is zero but
    the conditioned rate is not).
    """

    condition_cells: int
    other_cells: int
    outcomes_on_condition: int
    outcomes_on_other: int

    @property
    def rate_given_condition(self) -> float:
        if self.condition_cells == 0:
            return 0.0
        return self.outcomes_on_condition / self.condition_cells

    @property
    def rate_given_not_condition(self) -> float:
        if self.other_cells == 0:
            return 0.0
        return self.outcomes_on_other / self.other_cells

    @property
    def risk_ratio(self) -> float:
        """How many times more likely the outcome is on condition days."""
        baseline = self.rate_given_not_condition
        conditioned = self.rate_given_condition
        if baseline == 0.0:
            return float("inf") if conditioned > 0.0 else 0.0
        return conditioned / baseline


class DayLevelContingency:
    """A universe of (country, day) cells with named conditions/outcomes.

    The universe is the cross product of the study countries and study days.
    Conditions (election / coup / protest days) and outcomes (shutdown /
    outage start days) are sparse cell sets.  Both conditions and outcomes
    may be restricted to sub-periods — the paper's protest data only covers
    2018-2019, so the protest rows of Table 4 are computed over that subset
    of days (§5.2 footnote 9).
    """

    def __init__(self, countries: Iterable[Hashable],
                 day_indices: Iterable[int]):
        self._countries = tuple(dict.fromkeys(countries))
        self._days = tuple(dict.fromkeys(day_indices))
        if not self._countries or not self._days:
            raise SignalError("contingency universe must be non-empty")
        self._day_set = frozenset(self._days)
        self._country_set = frozenset(self._countries)

    @property
    def n_cells(self) -> int:
        """Total number of (country, day) cells."""
        return len(self._countries) * len(self._days)

    def _filter(self, cells: Iterable[Cell],
                day_subset: AbstractSet[int] | None) -> Set[Cell]:
        days = self._day_set if day_subset is None \
            else (self._day_set & frozenset(day_subset))
        return {(country, day) for country, day in cells
                if country in self._country_set and day in days}

    def rates(self, condition_cells: Iterable[Cell],
              outcome_cells: Iterable[Cell],
              day_subset: AbstractSet[int] | None = None) -> ConditionalRates:
        """Compute outcome rates conditioned on the condition cells.

        ``day_subset`` optionally restricts the universe (and both cell
        sets) to a subset of the study days.
        """
        condition = self._filter(condition_cells, day_subset)
        outcome = self._filter(outcome_cells, day_subset)
        if day_subset is None:
            n_days = len(self._days)
        else:
            n_days = len(self._day_set & frozenset(day_subset))
        universe = len(self._countries) * n_days
        on_condition = len(outcome & condition)
        return ConditionalRates(
            condition_cells=len(condition),
            other_cells=universe - len(condition),
            outcomes_on_condition=on_condition,
            outcomes_on_other=len(outcome) - on_condition,
        )
