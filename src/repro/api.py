"""repro.api — the stable top-level facade.

Downstream tools and the bundled examples should program against this
module rather than deep-importing :mod:`repro.core.pipeline`,
:mod:`repro.ioda.platform`, and friends; the internals are free to move,
this surface is not.

    import repro.api as api

    result = api.run(seed=2023, workers=4, cache_dir=".cache")
    result.health.grade         # "pass" / "warn" / "fail"
    result.stats.total_seconds  # execution report
    client = api.client(result)
    page = client.get_events(country_iso2="SY", limit=25)

There are two entry points over the same engine.  :func:`run` executes
the pipeline in one shot and returns a :class:`RunResult` carrying
everything a run produces — the event datasets (``result.events``), the
execution report (``result.stats``), the fidelity scorecard
(``result.health``), and the journal path when one was written.
:func:`stream` opens the same run incrementally: it returns a
:class:`~repro.stream.session.StreamSession` whose bins are pushed (or
replayed) under an advancing watermark, emitting live
``open``/``update``/``close`` event lifecycles, and whose
``finalize()`` yields a :class:`RunResult` byte-identical to
:func:`run`'s.

Everything here is re-exported with keyword-only knobs, so adding a
parameter never breaks a caller.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.observability import execution_report, health_report
from repro.core.matching import MatchingConfig
from repro.core.pipeline import PipelineResult, ReproPipeline
from repro.datasets import DatasetSource, default_sources
from repro.exec import ExecStats, ExecutorConfig
from repro.exec.cachestore import fingerprint
from repro.io import dump_records, load_records
from repro.ioda.api import IODAClient
from repro.ioda.curation import CurationConfig
from repro.ioda.platform import IODAPlatform, PlatformConfig
from repro.ioda.records import OutageRecord
from repro.kio.compiler import KIOCompilerConfig
from repro.obs import HealthCheck, HealthPolicy, HealthReport, \
    Observability, PerfBaseline, ProfileConfig, RunJournal, RunRecord, \
    RunRegistry, TelemetryConfig, compare_baselines, default_policy, \
    evaluate_run, list_baselines, load_baseline, read_journal, \
    run_statistics, save_baseline, sorted_capsules, summarize_events, \
    write_chrome_trace
from repro.resilience import BreakerPolicy, FaultPlan, ResilienceConfig, \
    RetryPolicy
from repro.stream.models import SignalBin, StreamEvent
from repro.stream.session import StreamSession
from repro.timeutils.timestamps import TimeRange
from repro.world.scenario import STUDY_PERIOD, ScenarioConfig

__all__ = [
    "BreakerPolicy",
    "DatasetSource",
    "ExecStats",
    "FaultPlan",
    "HealthCheck",
    "HealthPolicy",
    "HealthReport",
    "IODAClient",
    "Observability",
    "PerfBaseline",
    "PipelineResult",
    "ProfileConfig",
    "ResilienceConfig",
    "RetryPolicy",
    "RunJournal",
    "RunRecord",
    "RunRegistry",
    "RunResult",
    "SignalBin",
    "StreamEvent",
    "StreamSession",
    "TelemetryConfig",
    "client",
    "compare_baselines",
    "default_policy",
    "default_sources",
    "dump_records",
    "evaluate_run",
    "execution_report",
    "health_report",
    "list_baselines",
    "load_baseline",
    "load_records",
    "read_journal",
    "run",
    "run_statistics",
    "save_baseline",
    "stream",
    "summarize_events",
    "write_chrome_trace",
]


def _resilience(resilience: Optional[ResilienceConfig],
                faults: Optional[FaultPlan | str],
                retry_policy: Optional[RetryPolicy],
                breaker_policy: Optional[BreakerPolicy],
                fail_fast: bool) -> Optional[ResilienceConfig]:
    """Fold the flat resilience knobs into one config (None = disabled)."""
    if resilience is not None:
        return resilience
    if faults is None and retry_policy is None and breaker_policy is None \
            and not fail_fast:
        return None
    return ResilienceConfig(
        faults=faults,
        retry=retry_policy if retry_policy is not None else RetryPolicy(),
        breaker=(breaker_policy if breaker_policy is not None
                 else BreakerPolicy()),
        fail_fast=fail_fast)


def _pipeline(*, seed: int, workers: int, backend: str,
              shards: Optional[int], signal_cache_size: Optional[int],
              cache_dir: Optional[Path | str],
              scenario_config: Optional[ScenarioConfig],
              platform_config: Optional[PlatformConfig],
              curation_config: Optional[CurationConfig],
              kio_config: Optional[KIOCompilerConfig],
              matching_config: Optional[MatchingConfig],
              study_period: TimeRange,
              observability: Optional[Observability],
              resilience: Optional[ResilienceConfig],
              profile: Optional[ProfileConfig | bool],
              health_policy: Optional[HealthPolicy],
              telemetry: Optional[TelemetryConfig | str | float],
              provenance: bool = False) -> ReproPipeline:
    return ReproPipeline(
        scenario_config=scenario_config or ScenarioConfig(seed=seed),
        platform_config=platform_config,
        curation_config=curation_config,
        kio_config=kio_config,
        matching_config=matching_config,
        study_period=study_period,
        cache_dir=Path(cache_dir) if cache_dir is not None else None,
        executor=ExecutorConfig(
            workers=workers, backend=backend, n_shards=shards,
            signal_cache_size=signal_cache_size),
        observability=observability,
        resilience=resilience,
        profile=profile,
        health_policy=health_policy,
        telemetry=telemetry,
        provenance=provenance)


def _journal_setup(journal: Optional[RunJournal | str | Path],
                   observability: Optional[Observability],
                   runs_dir: Optional[Path | str]
                   ) -> tuple[Optional[Observability], Optional[Path]]:
    """Resolve the ``journal``/``observability``/``runs_dir`` knobs.

    Returns the observability session to run under (None when neither
    knob was passed and no registry is in play) and the pending
    registry journal path, when one was auto-created.
    """
    if journal is not None and observability is not None:
        raise ValueError(
            "pass either journal= or observability= (the journal "
            "shorthand builds its own Observability session)")
    pending: Optional[Path] = None
    if runs_dir is not None and journal is None and observability is None:
        # The registry needs a journal; write one under the runs dir
        # and file it (by content hash) once the run completes.
        root = Path(runs_dir)
        root.mkdir(parents=True, exist_ok=True)
        pending = root / f"pending-{os.getpid()}-{time.time_ns()}.jsonl"
        journal = pending
    if journal is not None:
        observability = Observability(
            journal=journal if isinstance(journal, RunJournal)
            else RunJournal(str(journal)))
    return observability, pending


def _file_run(observability: Optional[Observability], *,
              runs_dir: Optional[Path | str], pending: Optional[Path],
              run_name: Optional[str], active_config: ScenarioConfig,
              workers: int, backend: str, shards: Optional[int]
              ) -> tuple[Optional[Path], Optional[str], Optional[Path]]:
    """The registry tail shared by :func:`run` and a stream finalize.

    Returns ``(journal_path, run_id, run_dir)`` — the latter two only
    when ``runs_dir`` filed the journal into the registry.
    """
    journal_path = None
    if observability is not None and observability.journal is not None:
        journal_path = observability.journal.path
    run_id: Optional[str] = None
    run_dir: Optional[Path] = None
    if runs_dir is not None and journal_path is not None:
        # Journals written directly under the runs dir (ours or a
        # caller's) are moved into their registry slot; journals
        # elsewhere are copied and left in place.
        move = (pending is not None
                or Path(journal_path).resolve().parent
                == Path(runs_dir).resolve())
        record = RunRegistry(Path(runs_dir)).register(
            journal_path, name=run_name,
            config={"seed": active_config.seed, "workers": workers,
                    "backend": backend},
            fingerprint=fingerprint(active_config, workers, backend,
                                    shards),
            move=move)
        run_id, run_dir = record.run_id, record.path
        journal_path = record.journal_path
    return journal_path, run_id, run_dir


@dataclass(frozen=True)
class RunResult:
    """Everything one pipeline run produces, in one return value.

    ``events`` is the :class:`PipelineResult` the analysis layer
    consumes; ``stats`` the :class:`ExecStats` execution report;
    ``health`` the :class:`HealthReport` fidelity scorecard; and
    ``journal_path`` the JSONL run journal, when one was written
    (``None`` otherwise).  The most common event fields are exposed
    directly (``result.curated_records`` etc.) so casual callers never
    reach through ``events``.
    """

    events: PipelineResult
    stats: ExecStats
    health: HealthReport
    #: The run's JSONL journal.  With ``runs_dir=`` configured the
    #: journal is filed into the run registry, so this points *inside*
    #: the registry slot and the run also gets a ``run_id``.
    journal_path: Optional[Path] = None
    #: Content-addressed registry ID (``runs_dir=`` only).
    run_id: Optional[str] = None
    #: The run's registry directory (``runs_dir=`` only).
    run_dir: Optional[Path] = None
    #: The run's lineage capsules (``provenance=True`` only), in a
    #: backend-independent order — one per adjudicated candidate, plus
    #: streaming lifecycle capsules.  Journal-only evidence: the event
    #: datasets are byte-identical with or without them.
    provenance: Tuple[Mapping, ...] = ()

    # -- convenience passthroughs into the event datasets ------------------

    @property
    def scenario(self):
        """The generated world (``events.scenario``)."""
        return self.events.scenario

    @property
    def curated_records(self) -> List[OutageRecord]:
        """The curated outage dataset (``events.curated_records``)."""
        return self.events.curated_records

    @property
    def kio_events(self):
        """Compiled KIO shutdown events (``events.kio_events``)."""
        return self.events.kio_events

    @property
    def merged(self):
        """The merged analysis dataset (``events.merged``)."""
        return self.events.merged

    def serve(self, root: Union[str, Path], **build_options):
        """Precompute this run's servable artifact store under ``root``.

        Convenience front for
        :func:`repro.serve.artifacts.build_store`: event feeds, signal
        tiles, and reports land in a content-addressed store whose
        blake2b addresses double as the HTTP ETags served by ``repro
        serve run``.  Returns the opened
        :class:`~repro.serve.artifacts.ArtifactStore`.
        """
        from repro.serve.artifacts import build_store
        return build_store(self, root, **build_options)


def run(*, seed: int = 2023, workers: int = 1, backend: str = "thread",
        shards: Optional[int] = None,
        signal_cache_size: Optional[int] = None,
        cache_dir: Optional[Path | str] = None,
        scenario_config: Optional[ScenarioConfig] = None,
        platform_config: Optional[PlatformConfig] = None,
        curation_config: Optional[CurationConfig] = None,
        kio_config: Optional[KIOCompilerConfig] = None,
        matching_config: Optional[MatchingConfig] = None,
        study_period: TimeRange = STUDY_PERIOD,
        observability: Optional[Observability] = None,
        journal: Optional[RunJournal | str | Path] = None,
        resilience: Optional[ResilienceConfig] = None,
        faults: Optional[FaultPlan | str] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker_policy: Optional[BreakerPolicy] = None,
        fail_fast: bool = False,
        profile: Optional[ProfileConfig | bool] = None,
        health_policy: Optional[HealthPolicy] = None,
        telemetry: Optional[TelemetryConfig | str | float] = None,
        provenance: bool = False,
        runs_dir: Optional[Path | str] = None,
        run_name: Optional[str] = None) -> RunResult:
    """Run the full reproduction pipeline; return a :class:`RunResult`.

    The single entry point: one execution produces the event datasets,
    the execution report, and the health scorecard together —
    ``result.events``, ``result.stats``, ``result.health`` (plus
    ``result.journal_path``).  There is nothing a second call could
    add, so there are no variant entry points (the historical
    ``run_with_stats``/``run_with_health`` tuple shims are gone; index
    the :class:`RunResult` instead).  For incremental execution of the
    same pipeline, see :func:`stream`.

    ``workers``/``backend`` schedule the observation+curation stage
    through the sharded executor (results are byte-identical at any
    worker count); ``cache_dir`` enables the content-addressed stage
    cache so warm re-runs skip straight to the merge.  ``seed`` is
    shorthand for ``scenario_config=ScenarioConfig(seed=...)`` and is
    ignored when an explicit ``scenario_config`` is given.
    ``signal_cache_size`` bounds the platform's memoized-signal LRU
    (None = default, 0 = off for A/B runs); cached and uncached runs
    are byte-identical, and the process backend additionally keeps the
    generated world resident per worker so each process builds it once
    per run.

    ``journal`` is shorthand for
    ``observability=Observability(journal=...)``: pass a path (or
    :class:`RunJournal`) and the run streams its JSONL journal there,
    with the resolved path returned as ``result.journal_path``.  For
    full control pass an :class:`Observability` session instead
    (optionally constructed with its own journal) — afterwards
    ``observability.tracer.spans()`` feeds :func:`write_chrome_trace`
    and ``observability.metrics_snapshot()`` is the ``--metrics-json``
    payload.  Tracing never perturbs results.  The two knobs are
    mutually exclusive.

    ``faults`` (a :class:`FaultPlan` or CLI-style spec string like
    ``"fail_first=2;seed=5"``) injects deterministic source faults;
    ``retry_policy``/``breaker_policy`` shape how they are absorbed, and
    ``fail_fast`` turns quarantine-and-degrade into abort-on-first
    exhaustion.  Any of these (or an explicit ``resilience`` bundle,
    which wins) enables the resilience layer; a run that fully recovers
    from its faults is byte-identical to a fault-free run.  Note that
    an active fault plan bypasses the shard cache.  Check
    ``result.stats.degraded`` / ``.quarantined`` for what a degraded
    run gave up on.

    ``profile=True`` (or a :class:`ProfileConfig`) turns on per-span
    resource profiling — CPU vs wall seconds, peak-RSS growth, and
    optionally tracemalloc allocation deltas attached to every span;
    the readings never touch the RNG substreams, so a profiled run is
    byte-identical to an unprofiled one.  Every run is also graded
    against a fidelity scorecard (``health_policy``; default: the
    paper-target policy) whose ``result.health.grade`` is ``"pass"``,
    ``"warn"``, or ``"fail"`` and whose ``result.health.rows()``
    renders the scorecard; the same report is streamed into the run
    journal as a ``health`` event, replayable with
    ``repro health RUN.jsonl``.

    ``telemetry`` turns on live heartbeats: pass an interval (``"1s"``,
    ``0.5``) or a :class:`TelemetryConfig` and a background sampler
    appends periodic ``heartbeat`` events to the run journal — shard
    progress with ETA, open span paths, counter deltas, histogram
    tails, process RSS/CPU — while the run executes (process workers
    sample locally and their heartbeats are adopted into the parent's
    journal).  Heartbeats are journal-only: event output stays
    byte-identical with telemetry on or off.

    ``provenance=True`` captures a lineage capsule at every curation
    decision point — the triggering alert, visibility, corroboration
    (with the exact RNG substream coordinate), control-group checks,
    cause attribution — exposed as ``result.provenance`` and journaled
    as ``provenance`` events (plus a ``provenance.manifest`` mapping
    record ids to capsules; ``repro explain RUN RECORD_ID`` renders
    one).  Capsules are journal-only: event output is byte-identical
    with provenance on or off, on every backend.  A provenance run
    bypasses the shard cache (a warm hit would skip the very decisions
    being captured).

    ``runs_dir`` enables the cross-run registry: the journal (an
    auto-created one, unless ``journal=`` names a path) is filed under
    a content-addressed run ID together with the run's health stats and
    config fingerprint, and the result carries ``run_id``/``run_dir``.
    Registered runs power ``repro runs list/show/diff`` and resolve by
    ID anywhere a journal path is accepted (``repro trace summarize``,
    ``repro health``, ``repro trace diff``).  ``run_name`` labels the
    registry entry (default: the ID's first 8 hex chars).
    """
    observability, pending = _journal_setup(journal, observability,
                                            runs_dir)
    pipeline = _pipeline(
        seed=seed, workers=workers, backend=backend, shards=shards,
        signal_cache_size=signal_cache_size,
        cache_dir=cache_dir, scenario_config=scenario_config,
        platform_config=platform_config, curation_config=curation_config,
        kio_config=kio_config, matching_config=matching_config,
        study_period=study_period, observability=observability,
        resilience=_resilience(resilience, faults, retry_policy,
                               breaker_policy, fail_fast),
        profile=profile, health_policy=health_policy,
        telemetry=telemetry, provenance=provenance)
    events = pipeline.run()
    assert pipeline.stats is not None and pipeline.health is not None
    journal_path, run_id, run_dir = _file_run(
        observability, runs_dir=runs_dir, pending=pending,
        run_name=run_name,
        active_config=scenario_config or ScenarioConfig(seed=seed),
        workers=workers, backend=backend, shards=shards)
    run_obs = pipeline.observability
    return RunResult(events=events, stats=pipeline.stats,
                     health=pipeline.health, journal_path=journal_path,
                     run_id=run_id, run_dir=run_dir,
                     provenance=sorted_capsules(
                         run_obs.provenance if run_obs is not None
                         else None))


def stream(*, seed: int = 2023, workers: int = 1,
           backend: str = "serial",
           signal_cache_size: Optional[int] = None,
           scenario_config: Optional[ScenarioConfig] = None,
           platform_config: Optional[PlatformConfig] = None,
           curation_config: Optional[CurationConfig] = None,
           kio_config: Optional[KIOCompilerConfig] = None,
           matching_config: Optional[MatchingConfig] = None,
           study_period: TimeRange = STUDY_PERIOD,
           observability: Optional[Observability] = None,
           journal: Optional[RunJournal | str | Path] = None,
           resilience: Optional[ResilienceConfig] = None,
           faults: Optional[FaultPlan | str] = None,
           retry_policy: Optional[RetryPolicy] = None,
           breaker_policy: Optional[BreakerPolicy] = None,
           fail_fast: bool = False,
           profile: Optional[ProfileConfig | bool] = None,
           health_policy: Optional[HealthPolicy] = None,
           telemetry: Optional[TelemetryConfig | str | float] = None,
           provenance: bool = False,
           runs_dir: Optional[Path | str] = None,
           run_name: Optional[str] = None) -> StreamSession:
    """Open the reproduction as an incremental run; return its session.

    The streaming twin of :func:`run`: the same stages, but the
    observation+curation stage is driven from outside, bin by bin.  The
    returned :class:`~repro.stream.session.StreamSession` accepts
    measurement bins in any order (``session.push``), consumes them as
    the watermark advances (``session.advance_watermark`` — or let
    ``session.replay(step)`` drive both from the scenario's own feed),
    and emits live ``open``/``update``/``close`` event-lifecycle
    records (``session.events()``).  ``session.finalize()`` completes
    the remaining stages and returns a :class:`RunResult`
    **byte-identical** to ``run()`` with the same configuration —
    however the bins were chunked, on every backend.

    ``backend`` schedules window adjudication: ``serial`` (default)
    inline, ``thread``/``process`` fan closed windows out per country
    exactly like the batch executor (``process`` keeps the generated
    world resident per worker).  ``journal=``/``observability=``/
    ``telemetry=`` work as in :func:`run`; a journaled stream
    additionally records every lifecycle event as a ``stream.event``
    line, and heartbeats carry a ``stream`` block with the live
    watermark, lag, and open-event count.  ``runs_dir`` files the
    finalized journal into the cross-run registry, so a streamed run
    diffs against a batch run with ``repro runs diff``.

    ``faults=`` (with ``retry_policy``/``breaker_policy``) injects
    deterministic faults into the session's *bin source* (site
    ``stream.source``): fetches fail, back off, and retry without
    perturbing the streamed bytes, so a recovered stream finalizes
    byte-identical to a calm one.

    ``provenance=True`` works as in :func:`run`, with one streaming
    extra: every lifecycle event carries the ``capsule_id`` of the
    lineage capsule behind it (the adjudication capsule on a decided
    ``close``; a lifecycle capsule on provisional states and merges),
    and the finalized ``RunResult.provenance`` holds them all.  The
    record payloads — and the finalized datasets — stay byte-identical
    with provenance on or off, however the bins were chunked.

    The batch executor's knobs that stream curation cannot use
    (``cache_dir``, ``shards``) are absent: a stream is incremental by
    construction and never consults the shard cache.
    """
    observability, pending = _journal_setup(journal, observability,
                                            runs_dir)
    active_config = scenario_config or ScenarioConfig(seed=seed)
    resilience_config = _resilience(resilience, faults, retry_policy,
                                    breaker_policy, fail_fast)
    pipeline = _pipeline(
        seed=seed, workers=workers, backend=backend, shards=None,
        signal_cache_size=signal_cache_size, cache_dir=None,
        scenario_config=scenario_config,
        platform_config=platform_config, curation_config=curation_config,
        kio_config=kio_config, matching_config=matching_config,
        study_period=study_period, observability=observability,
        resilience=resilience_config, profile=profile,
        health_policy=health_policy, telemetry=telemetry,
        provenance=provenance)

    def package(pipeline: ReproPipeline, obs: Observability,
                events: PipelineResult) -> RunResult:
        assert pipeline.stats is not None and pipeline.health is not None
        journal_path, run_id, run_dir = _file_run(
            obs if obs.enabled else None, runs_dir=runs_dir,
            pending=pending, run_name=run_name,
            active_config=active_config, workers=workers,
            backend=backend, shards=None)
        return RunResult(events=events, stats=pipeline.stats,
                         health=pipeline.health,
                         journal_path=journal_path,
                         run_id=run_id, run_dir=run_dir,
                         provenance=sorted_capsules(obs.provenance))

    return StreamSession(
        pipeline, seed=active_config.seed, period=study_period,
        platform_config=platform_config,
        curation_config=curation_config, backend=backend,
        workers=workers, signal_cache_size=signal_cache_size,
        resilience=resilience_config, package=package)


def client(result: Union[RunResult, PipelineResult],
           records: Optional[Sequence[OutageRecord]] = None) -> IODAClient:
    """An :class:`IODAClient` over a run's events.

    Accepts the :class:`RunResult` of :func:`run` (or a bare
    :class:`PipelineResult`) and serves its curated records (or an
    explicit ``records`` override) through the IODA-style query API —
    signals, alerts, and the cursor-paginated event feed.
    """
    events = result.events if isinstance(result, RunResult) else result
    platform = IODAPlatform(events.scenario)
    curated: Sequence[OutageRecord] = (
        events.curated_records if records is None else records)
    return IODAClient(platform, curated)
