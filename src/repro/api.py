"""repro.api — the stable top-level facade.

Downstream tools and the bundled examples should program against this
module rather than deep-importing :mod:`repro.core.pipeline`,
:mod:`repro.ioda.platform`, and friends; the internals are free to move,
this surface is not.

    import repro.api as api

    result = api.run(seed=2023, workers=4, cache_dir=".cache")
    client = api.client(result)
    page = client.get_events(country_iso2="SY", limit=25)

Everything here is re-exported with keyword-only knobs, so adding a
parameter never breaks a caller.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.analysis.observability import execution_report, health_report
from repro.core.matching import MatchingConfig
from repro.core.pipeline import PipelineResult, ReproPipeline
from repro.datasets import DatasetSource, default_sources
from repro.exec import ExecStats, ExecutorConfig
from repro.io import dump_records, load_records
from repro.ioda.api import IODAClient
from repro.ioda.curation import CurationConfig
from repro.ioda.platform import IODAPlatform, PlatformConfig
from repro.ioda.records import OutageRecord
from repro.kio.compiler import KIOCompilerConfig
from repro.obs import HealthCheck, HealthPolicy, HealthReport, \
    Observability, PerfBaseline, ProfileConfig, RunJournal, \
    compare_baselines, default_policy, evaluate_run, list_baselines, \
    load_baseline, read_journal, run_statistics, save_baseline, \
    summarize_events, write_chrome_trace
from repro.resilience import BreakerPolicy, FaultPlan, ResilienceConfig, \
    RetryPolicy
from repro.timeutils.timestamps import TimeRange
from repro.world.scenario import STUDY_PERIOD, ScenarioConfig

__all__ = [
    "BreakerPolicy",
    "DatasetSource",
    "ExecStats",
    "FaultPlan",
    "HealthCheck",
    "HealthPolicy",
    "HealthReport",
    "IODAClient",
    "Observability",
    "PerfBaseline",
    "PipelineResult",
    "ProfileConfig",
    "ResilienceConfig",
    "RetryPolicy",
    "RunJournal",
    "client",
    "compare_baselines",
    "default_policy",
    "default_sources",
    "dump_records",
    "evaluate_run",
    "execution_report",
    "health_report",
    "list_baselines",
    "load_baseline",
    "load_records",
    "read_journal",
    "run",
    "run_statistics",
    "run_with_health",
    "run_with_stats",
    "save_baseline",
    "summarize_events",
    "write_chrome_trace",
]


def _resilience(resilience: Optional[ResilienceConfig],
                faults: Optional[FaultPlan | str],
                retry_policy: Optional[RetryPolicy],
                breaker_policy: Optional[BreakerPolicy],
                fail_fast: bool) -> Optional[ResilienceConfig]:
    """Fold the flat resilience knobs into one config (None = disabled)."""
    if resilience is not None:
        return resilience
    if faults is None and retry_policy is None and breaker_policy is None \
            and not fail_fast:
        return None
    return ResilienceConfig(
        faults=faults,
        retry=retry_policy if retry_policy is not None else RetryPolicy(),
        breaker=(breaker_policy if breaker_policy is not None
                 else BreakerPolicy()),
        fail_fast=fail_fast)


def _pipeline(*, seed: int, workers: int, backend: str,
              shards: Optional[int], signal_cache_size: Optional[int],
              cache_dir: Optional[Path | str],
              scenario_config: Optional[ScenarioConfig],
              platform_config: Optional[PlatformConfig],
              curation_config: Optional[CurationConfig],
              kio_config: Optional[KIOCompilerConfig],
              matching_config: Optional[MatchingConfig],
              study_period: TimeRange,
              observability: Optional[Observability],
              resilience: Optional[ResilienceConfig],
              profile: Optional[ProfileConfig | bool],
              health_policy: Optional[HealthPolicy]) -> ReproPipeline:
    return ReproPipeline(
        scenario_config=scenario_config or ScenarioConfig(seed=seed),
        platform_config=platform_config,
        curation_config=curation_config,
        kio_config=kio_config,
        matching_config=matching_config,
        study_period=study_period,
        cache_dir=Path(cache_dir) if cache_dir is not None else None,
        executor=ExecutorConfig(
            workers=workers, backend=backend, n_shards=shards,
            signal_cache_size=signal_cache_size),
        observability=observability,
        resilience=resilience,
        profile=profile,
        health_policy=health_policy)


def run(*, seed: int = 2023, workers: int = 1, backend: str = "thread",
        shards: Optional[int] = None,
        signal_cache_size: Optional[int] = None,
        cache_dir: Optional[Path | str] = None,
        scenario_config: Optional[ScenarioConfig] = None,
        platform_config: Optional[PlatformConfig] = None,
        curation_config: Optional[CurationConfig] = None,
        kio_config: Optional[KIOCompilerConfig] = None,
        matching_config: Optional[MatchingConfig] = None,
        study_period: TimeRange = STUDY_PERIOD,
        observability: Optional[Observability] = None,
        resilience: Optional[ResilienceConfig] = None,
        faults: Optional[FaultPlan | str] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker_policy: Optional[BreakerPolicy] = None,
        fail_fast: bool = False,
        profile: Optional[ProfileConfig | bool] = None,
        health_policy: Optional[HealthPolicy] = None) -> PipelineResult:
    """Run the full reproduction pipeline and return its result.

    ``workers``/``backend`` schedule the observation+curation stage
    through the sharded executor (results are byte-identical at any
    worker count); ``cache_dir`` enables the content-addressed stage
    cache so warm re-runs skip straight to the merge.  ``seed`` is
    shorthand for ``scenario_config=ScenarioConfig(seed=...)`` and is
    ignored when an explicit ``scenario_config`` is given.
    ``signal_cache_size`` bounds the platform's memoized-signal LRU
    (None = default, 0 = off for A/B runs); cached and uncached runs
    are byte-identical, and the process backend additionally keeps the
    generated world resident per worker so each process builds it once
    per run.

    Pass an :class:`Observability` session (optionally constructed with
    a JSONL journal path) to capture the run's span tree and metrics —
    afterwards ``observability.tracer.spans()`` feeds
    :func:`write_chrome_trace` and ``observability.metrics_snapshot()``
    is the ``--metrics-json`` payload.  Tracing never perturbs results.

    ``faults`` (a :class:`FaultPlan` or CLI-style spec string like
    ``"fail_first=2;seed=5"``) injects deterministic source faults;
    ``retry_policy``/``breaker_policy`` shape how they are absorbed, and
    ``fail_fast`` turns quarantine-and-degrade into abort-on-first
    exhaustion.  Any of these (or an explicit ``resilience`` bundle,
    which wins) enables the resilience layer; a run that fully recovers
    from its faults is byte-identical to a fault-free run.  Note that
    an active fault plan bypasses the shard cache.  Check
    ``run_with_stats(...)[1].degraded`` / ``.quarantined`` for what a
    degraded run gave up on.

    ``profile=True`` (or a :class:`ProfileConfig`) turns on per-span
    resource profiling — CPU vs wall seconds, peak-RSS growth, and
    optionally tracemalloc allocation deltas attached to every span;
    the readings never touch the RNG substreams, so a profiled run is
    byte-identical to an unprofiled one.  Every run is also graded
    against a fidelity scorecard (``health_policy``; default: the
    paper-target policy) — see :func:`run_with_health`.
    """
    result, _ = run_with_stats(
        seed=seed, workers=workers, backend=backend, shards=shards,
        signal_cache_size=signal_cache_size,
        cache_dir=cache_dir, scenario_config=scenario_config,
        platform_config=platform_config, curation_config=curation_config,
        kio_config=kio_config, matching_config=matching_config,
        study_period=study_period, observability=observability,
        resilience=resilience, faults=faults, retry_policy=retry_policy,
        breaker_policy=breaker_policy, fail_fast=fail_fast,
        profile=profile, health_policy=health_policy)
    return result


def run_with_stats(
        *, seed: int = 2023, workers: int = 1, backend: str = "thread",
        shards: Optional[int] = None,
        signal_cache_size: Optional[int] = None,
        cache_dir: Optional[Path | str] = None,
        scenario_config: Optional[ScenarioConfig] = None,
        platform_config: Optional[PlatformConfig] = None,
        curation_config: Optional[CurationConfig] = None,
        kio_config: Optional[KIOCompilerConfig] = None,
        matching_config: Optional[MatchingConfig] = None,
        study_period: TimeRange = STUDY_PERIOD,
        observability: Optional[Observability] = None,
        resilience: Optional[ResilienceConfig] = None,
        faults: Optional[FaultPlan | str] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker_policy: Optional[BreakerPolicy] = None,
        fail_fast: bool = False,
        profile: Optional[ProfileConfig | bool] = None,
        health_policy: Optional[HealthPolicy] = None
) -> Tuple[PipelineResult, ExecStats]:
    """Like :func:`run`, but also return the :class:`ExecStats` report.

    The report is the derived view over the run's span tree
    (:meth:`ExecStats.from_obs`); render it with
    :func:`execution_report`.  On a degraded run it carries
    ``degraded=True`` and the ``quarantined`` country codes.
    """
    result, stats, _ = run_with_health(
        seed=seed, workers=workers, backend=backend, shards=shards,
        signal_cache_size=signal_cache_size,
        cache_dir=cache_dir, scenario_config=scenario_config,
        platform_config=platform_config, curation_config=curation_config,
        kio_config=kio_config, matching_config=matching_config,
        study_period=study_period, observability=observability,
        resilience=resilience, faults=faults, retry_policy=retry_policy,
        breaker_policy=breaker_policy, fail_fast=fail_fast,
        profile=profile, health_policy=health_policy)
    return result, stats


def run_with_health(
        *, seed: int = 2023, workers: int = 1, backend: str = "thread",
        shards: Optional[int] = None,
        signal_cache_size: Optional[int] = None,
        cache_dir: Optional[Path | str] = None,
        scenario_config: Optional[ScenarioConfig] = None,
        platform_config: Optional[PlatformConfig] = None,
        curation_config: Optional[CurationConfig] = None,
        kio_config: Optional[KIOCompilerConfig] = None,
        matching_config: Optional[MatchingConfig] = None,
        study_period: TimeRange = STUDY_PERIOD,
        observability: Optional[Observability] = None,
        resilience: Optional[ResilienceConfig] = None,
        faults: Optional[FaultPlan | str] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker_policy: Optional[BreakerPolicy] = None,
        fail_fast: bool = False,
        profile: Optional[ProfileConfig | bool] = None,
        health_policy: Optional[HealthPolicy] = None
) -> Tuple[PipelineResult, ExecStats, HealthReport]:
    """Like :func:`run_with_stats`, plus the run's health scorecard.

    The :class:`HealthReport` grades the run's statistics — headline
    event populations, match fractions, quarantine count, cache hit
    rate, stage wall time — against the declared targets of
    ``health_policy`` (default: the paper-fidelity policy of
    :func:`repro.obs.health.default_policy`).  ``report.grade`` is
    ``"pass"``, ``"warn"``, or ``"fail"`` (the worst check wins);
    ``report.rows()`` renders the scorecard.  The same report is
    streamed into the run journal as a ``health`` event, replayable
    with ``repro health RUN.jsonl``.
    """
    pipeline = _pipeline(
        seed=seed, workers=workers, backend=backend, shards=shards,
        signal_cache_size=signal_cache_size,
        cache_dir=cache_dir, scenario_config=scenario_config,
        platform_config=platform_config, curation_config=curation_config,
        kio_config=kio_config, matching_config=matching_config,
        study_period=study_period, observability=observability,
        resilience=_resilience(resilience, faults, retry_policy,
                               breaker_policy, fail_fast),
        profile=profile, health_policy=health_policy)
    result = pipeline.run()
    assert pipeline.stats is not None and pipeline.health is not None
    return result, pipeline.stats, pipeline.health


def client(result: PipelineResult,
           records: Optional[Sequence[OutageRecord]] = None) -> IODAClient:
    """An :class:`IODAClient` over a pipeline result.

    Serves the result's curated records (or an explicit ``records``
    override) through the IODA-style query API — signals, alerts, and
    the cursor-paginated event feed.
    """
    platform = IODAPlatform(result.scenario)
    curated: Sequence[OutageRecord] = (
        result.curated_records if records is None else records)
    return IODAClient(platform, curated)
