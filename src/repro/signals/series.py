"""Fixed-width binned time series.

All IODA signals are regular time series: BGP and Telescope in 5-minute
bins, Active Probing in 10-minute rounds.  :class:`TimeSeries` wraps a numpy
array with the bin arithmetic, so signal producers append raw counts and the
alert engine and plots consume aligned values.

The blessed high-throughput accessors are the columnar pair
:meth:`TimeSeries.arrays` / :meth:`TimeSeries.from_arrays`: whole
``(bin_starts, values)`` arrays in, whole arrays out, which is how the
detection and curation hot paths consume series.  The per-bin accessors
(:meth:`~TimeSeries.__iter__`, :meth:`~TimeSeries.at`,
:meth:`~TimeSeries.set_at`, :meth:`~TimeSeries.add_at`) remain as
convenience paths for tests, examples, and incremental producers — they
are O(1)-per-bin Python calls and must not appear in per-bin loops over
fleet-scale signals.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.errors import SignalError, TimeRangeError
from repro.timeutils.timestamps import TimeRange, bin_floor

__all__ = ["TimeSeries"]


class TimeSeries:
    """A regularly binned series of float values.

    The series covers ``[start, start + len * width)``; ``values[i]`` is the
    measurement for the bin starting at ``start + i * width``.
    """

    def __init__(self, start: int, width: int,
                 values: Sequence[float] | np.ndarray):
        if width <= 0:
            raise TimeRangeError(f"bin width must be positive: {width}")
        if start % width:
            raise TimeRangeError(
                f"series start {start} is not aligned to width {width}")
        self._start = start
        self._width = width
        self._values = np.asarray(values, dtype=np.float64)
        if self._values.ndim != 1:
            raise SignalError("TimeSeries values must be one-dimensional")

    # -- construction -------------------------------------------------------

    @classmethod
    def zeros(cls, span: TimeRange, width: int) -> "TimeSeries":
        """An all-zero series covering ``span`` (start floored to a bin)."""
        start = bin_floor(span.start, width)
        n_bins = -(-(span.end - start) // width)
        return cls(start, width, np.zeros(n_bins))

    @classmethod
    def constant(cls, span: TimeRange, width: int,
                 value: float) -> "TimeSeries":
        """A constant series covering ``span``."""
        series = cls.zeros(span, width)
        series._values[:] = value
        return series

    @classmethod
    def from_arrays(cls, bin_starts: np.ndarray,
                    values: Sequence[float] | np.ndarray) -> "TimeSeries":
        """Build a series from a ``(bin_starts, values)`` column pair.

        The columnar inverse of :meth:`arrays`: ``bin_starts`` must be
        the contiguous, evenly spaced bin-start timestamps of the
        series (at least two bins, so the width is derivable).
        """
        starts = np.asarray(bin_starts)
        if starts.ndim != 1 or len(starts) < 2:
            raise SignalError(
                "from_arrays needs at least two bin starts to derive "
                f"the bin width (got shape {starts.shape})")
        width = int(starts[1]) - int(starts[0])
        if width <= 0 or not np.array_equal(
                starts, int(starts[0]) + width * np.arange(len(starts))):
            raise SignalError(
                "from_arrays needs contiguous, evenly spaced bin starts")
        if len(starts) != len(values):
            raise SignalError(
                f"bin_starts and values disagree on length: "
                f"{len(starts)} != {len(values)}")
        return cls(int(starts[0]), width, values)

    # -- basic accessors -----------------------------------------------------

    @property
    def start(self) -> int:
        """Timestamp of the first bin."""
        return self._start

    @property
    def width(self) -> int:
        """Bin width in seconds."""
        return self._width

    @property
    def end(self) -> int:
        """Timestamp one past the last bin."""
        return self._start + len(self._values) * self._width

    @property
    def values(self) -> np.ndarray:
        """The underlying value array (mutable view)."""
        return self._values

    @property
    def bin_starts(self) -> np.ndarray:
        """Start timestamp of every bin, as an int64 array."""
        return self._start + self._width * np.arange(
            len(self._values), dtype=np.int64)

    @property
    def span(self) -> TimeRange:
        """The covered time range."""
        return TimeRange(self.start, self.end)

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The series as a ``(bin_starts, values)`` column pair.

        This is the blessed bulk accessor: both columns come back as
        whole numpy arrays (``values`` is the live array, not a copy —
        the same view :attr:`values` exposes), so detection and
        curation scan signals without any per-bin Python iteration.
        """
        return self.bin_starts, self._values

    def __len__(self) -> int:
        return len(self._values)

    # -- indexing ------------------------------------------------------------

    def index_of(self, ts: int) -> int:
        """Index of the bin containing ``ts``."""
        if not self.start <= ts < self.end:
            raise TimeRangeError(
                f"timestamp {ts} outside series [{self.start}, {self.end})")
        return (ts - self.start) // self.width

    def timestamp_of(self, index: int) -> int:
        """Start timestamp of the bin at ``index`` (negatives allowed,
        Python-style)."""
        n = len(self._values)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise TimeRangeError(f"bin index out of range: {index}")
        return self.start + index * self.width

    def at(self, ts: int) -> float:
        """Value of the bin containing ``ts`` (per-bin convenience;
        bulk readers use :meth:`arrays`)."""
        return float(self._values[self.index_of(ts)])

    def set_at(self, ts: int, value: float) -> None:
        """Set the value of the bin containing ``ts`` (per-bin
        convenience; bulk writers mutate :attr:`values` directly)."""
        self._values[self.index_of(ts)] = value

    def add_at(self, ts: int, delta: float) -> None:
        """Add ``delta`` to the bin containing ``ts``."""
        self._values[self.index_of(ts)] += delta

    def __iter__(self) -> Iterator[Tuple[int, float]]:
        """Yield ``(bin_start_timestamp, value)`` pairs.

        A per-bin convenience for tests and small consumers; hot paths
        take the whole columns from :meth:`arrays` instead.
        """
        for i, value in enumerate(self._values):
            yield self.start + i * self.width, float(value)

    # -- transforms ----------------------------------------------------------

    def slice(self, span: TimeRange) -> "TimeSeries":
        """The sub-series of whole bins overlapping ``span``."""
        clipped = span.intersect(self.span)
        if clipped is None:
            raise TimeRangeError(f"slice {span} disjoint from {self.span}")
        first = (clipped.start - self.start) // self.width
        last = -(-(clipped.end - self.start) // self.width)
        return TimeSeries(
            self.start + first * self.width, self.width,
            self._values[first:last].copy())

    def scale(self, factor: float) -> "TimeSeries":
        """A copy with every value multiplied by ``factor``."""
        return TimeSeries(self.start, self.width, self._values * factor)

    def __add__(self, other: "TimeSeries") -> "TimeSeries":
        """Bin-wise sum of two aligned series."""
        if (other.start, other.width, len(other)) != (
                self.start, self.width, len(self)):
            raise SignalError("cannot add misaligned time series")
        return TimeSeries(
            self.start, self.width, self._values + other._values)

    def min_over(self, span: TimeRange) -> float:
        """Minimum value across bins overlapping ``span``."""
        return float(self.slice(span).values.min())

    def mean_over(self, span: TimeRange) -> float:
        """Mean value across bins overlapping ``span``."""
        return float(self.slice(span).values.mean())
