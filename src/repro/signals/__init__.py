"""Time-series signal infrastructure shared by IODA's three signals.

- :mod:`repro.signals.series` — fixed-width binned time series.
- :mod:`repro.signals.entities` — the country/region/AS entity keys that
  IODA aggregates each signal over.
- :mod:`repro.signals.alerts` — the median-of-trailing-window drop detector
  that produces IODA's automated alerts, plus episode grouping.
"""

from repro.signals.series import TimeSeries
from repro.signals.entities import Entity, EntityScope
from repro.signals.kinds import SignalKind
from repro.signals.alerts import (
    Alert,
    AlertDetector,
    AlertEpisode,
    DetectorConfig,
    group_alerts,
)

__all__ = [
    "TimeSeries",
    "Entity",
    "EntityScope",
    "SignalKind",
    "Alert",
    "AlertDetector",
    "AlertEpisode",
    "DetectorConfig",
    "group_alerts",
]
