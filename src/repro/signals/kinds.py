"""The three IODA signal kinds and their bin widths."""

from __future__ import annotations

import enum

from repro.timeutils.timestamps import FIVE_MINUTES, TEN_MINUTES

__all__ = ["SignalKind"]


class SignalKind(enum.Enum):
    """IODA's connectivity signals (§3.1.1)."""

    BGP = "bgp"
    ACTIVE_PROBING = "active-probing"
    TELESCOPE = "telescope"

    @property
    def bin_width(self) -> int:
        """Native bin width in seconds: 5 minutes for BGP and Telescope,
        10-minute rounds for Active Probing."""
        if self is SignalKind.ACTIVE_PROBING:
            return TEN_MINUTES
        return FIVE_MINUTES

    @property
    def label(self) -> str:
        return {
            SignalKind.BGP: "BGP",
            SignalKind.ACTIVE_PROBING: "Active Probing",
            SignalKind.TELESCOPE: "Telescope",
        }[self]
