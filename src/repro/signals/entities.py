"""Entities that IODA aggregates signals over.

IODA publishes each signal at three aggregation levels: country,
sub-national region, and autonomous system (§3.1).  An :class:`Entity` is
the (scope, identifier) pair keying those aggregate series, and the outage
record's *scope* field (Table 1) is the highest level at which an outage is
visible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["EntityScope", "Entity"]


class EntityScope(enum.Enum):
    """Aggregation level of a signal or visibility scope of an outage.

    Order matters: ``COUNTRY`` is the highest (widest) scope, ``AS`` the
    lowest; comparisons use that ordering.
    """

    COUNTRY = "Country"
    REGION = "Region"
    AS = "AS"

    @property
    def rank(self) -> int:
        """Width rank — higher is wider."""
        return {"Country": 2, "Region": 1, "AS": 0}[self.value]

    def wider_than(self, other: "EntityScope") -> bool:
        return self.rank > other.rank


@dataclass(frozen=True, slots=True)
class Entity:
    """A (scope, identifier) aggregation key.

    Identifiers are ISO codes for countries, ``CC-RegionName`` strings for
    regions, and decimal ASN strings for ASes.
    """

    scope: EntityScope
    identifier: str

    @classmethod
    def country(cls, iso2: str) -> "Entity":
        return cls(EntityScope.COUNTRY, iso2.upper())

    @classmethod
    def region(cls, iso2: str, region_name: str) -> "Entity":
        return cls(EntityScope.REGION, f"{iso2.upper()}-{region_name}")

    @classmethod
    def asn(cls, asn: int) -> "Entity":
        return cls(EntityScope.AS, str(asn))

    @property
    def country_iso2(self) -> str | None:
        """The ISO country code for country/region entities, else None."""
        if self.scope is EntityScope.COUNTRY:
            return self.identifier
        if self.scope is EntityScope.REGION:
            return self.identifier.split("-", 1)[0]
        return None

    def __str__(self) -> str:
        return f"{self.scope.value}:{self.identifier}"
