"""IODA's automated alert detection.

For each signal, IODA raises an alert whenever the current bin drops below a
signal-specific fraction of the median of a trailing history window (§3.1.1):

====================  ==========  =================
Signal                Threshold   History window
====================  ==========  =================
BGP                   99%         24 hours
Active Probing        80%         7 days
Telescope             25%         7 days
====================  ==========  =================

:class:`AlertDetector` implements the generic mechanism; the per-signal
configurations live with the IODA platform in
:mod:`repro.ioda.platform`.  :func:`group_alerts` merges runs of consecutive
alerting bins into :class:`AlertEpisode` spans — the unit the curation
pipeline reasons about ("a prolonged ... drop", §3.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import SignalError
from repro.signals.series import TimeSeries
from repro.stats.rolling import RollingMedian
from repro.timeutils.timestamps import TimeRange

__all__ = ["DetectorConfig", "Alert", "AlertEpisode", "AlertDetector",
           "group_alerts"]


@dataclass(frozen=True)
class DetectorConfig:
    """Parameters of a drop detector.

    ``threshold`` is the fraction of the historical median below which a bin
    alerts (0.99 for BGP).  ``history_seconds`` is the length of the
    trailing window the median is computed over.  ``min_history_fraction``
    guards cold starts: no alerts are produced until at least that fraction
    of the window has been observed.
    """

    threshold: float
    history_seconds: int
    min_history_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise SignalError(
                f"alert threshold must be in (0, 1]: {self.threshold}")
        if self.history_seconds <= 0:
            raise SignalError(
                f"history window must be positive: {self.history_seconds}")
        if not 0.0 < self.min_history_fraction <= 1.0:
            raise SignalError(
                f"min history fraction must be in (0, 1]: "
                f"{self.min_history_fraction}")


@dataclass(frozen=True)
class Alert:
    """One alerting bin: its start time, observed value and the baseline
    median it was compared against."""

    time: int
    value: float
    baseline: float


@dataclass(frozen=True)
class AlertEpisode:
    """A maximal run of consecutive alerting bins."""

    span: TimeRange
    min_value: float
    baseline: float
    n_bins: int

    @property
    def depth(self) -> float:
        """Relative depth of the drop: 1 - min/baseline (0 = no drop)."""
        if self.baseline <= 0:
            return 0.0
        return max(0.0, 1.0 - self.min_value / self.baseline)


class AlertDetector:
    """Median-of-trailing-window drop detector.

    Stateless across calls: :meth:`detect` scans a whole series and returns
    the alerting bins.  The current bin never contributes to its own
    baseline (the window is strictly trailing), so a sharp total outage
    alerts immediately rather than dragging its own baseline down.
    """

    def __init__(self, config: DetectorConfig):
        self._config = config

    @property
    def config(self) -> DetectorConfig:
        return self._config

    def window_bins(self, series_width: int) -> int:
        """Number of bins of ``series_width`` the history window spans."""
        bins = self._config.history_seconds // series_width
        if bins <= 0:
            raise SignalError(
                f"history window {self._config.history_seconds}s shorter "
                f"than one bin ({series_width}s)")
        return bins

    def detect(self, series: TimeSeries) -> List[Alert]:
        """Return an :class:`Alert` for every bin below threshold."""
        window = self.window_bins(series.width)
        min_history = max(1, int(window * self._config.min_history_fraction))
        tracker = RollingMedian(window)
        alerts: List[Alert] = []
        for ts, value in series:
            baseline = tracker.median
            if (baseline is not None and len(tracker) >= min_history
                    and value < self._config.threshold * baseline):
                alerts.append(Alert(time=ts, value=value, baseline=baseline))
            tracker.push(value)
        return alerts


def group_alerts(alerts: Sequence[Alert], bin_width: int,
                 max_gap_bins: int = 1) -> List[AlertEpisode]:
    """Merge alerting bins into maximal episodes.

    Bins whose start times are within ``max_gap_bins * bin_width`` of the
    previous alerting bin extend the current episode; larger gaps start a
    new one.  A gap tolerance of one bin absorbs single-bin flickers at the
    edge of the threshold.
    """
    if bin_width <= 0:
        raise SignalError(f"bin width must be positive: {bin_width}")
    if not alerts:
        return []
    episodes: List[AlertEpisode] = []
    run: List[Alert] = [alerts[0]]
    for alert in alerts[1:]:
        if alert.time <= run[-1].time + (max_gap_bins + 1) * bin_width:
            run.append(alert)
        else:
            episodes.append(_episode_from_run(run, bin_width))
            run = [alert]
    episodes.append(_episode_from_run(run, bin_width))
    return episodes


def _episode_from_run(run: Sequence[Alert], bin_width: int) -> AlertEpisode:
    return AlertEpisode(
        span=TimeRange(run[0].time, run[-1].time + bin_width),
        min_value=min(alert.value for alert in run),
        baseline=run[0].baseline,
        n_bins=len(run),
    )
