"""IODA's automated alert detection.

For each signal, IODA raises an alert whenever the current bin drops below a
signal-specific fraction of the median of a trailing history window (§3.1.1):

====================  ==========  =================
Signal                Threshold   History window
====================  ==========  =================
BGP                   99%         24 hours
Active Probing        80%         7 days
Telescope             25%         7 days
====================  ==========  =================

:class:`AlertDetector` implements the generic mechanism; the per-signal
configurations live with the IODA platform in
:mod:`repro.ioda.platform`.  :func:`group_alerts` merges runs of consecutive
alerting bins into :class:`AlertEpisode` spans — the unit the curation
pipeline reasons about ("a prolonged ... drop", §3.1.2).

Detection is columnar: the whole series is pulled as ``(bin_starts,
values)`` arrays, every trailing-window baseline is computed at once by
:func:`repro.stats.rolling.trailing_median`, and the threshold
comparison and episode grouping are array operations.  The per-bin
scalar implementations (:meth:`AlertDetector.detect_scalar`,
:func:`group_alerts_scalar`) remain the executable specification; both
paths produce bitwise-identical alerts, and ``REPRO_SCALAR_DETECT=1``
(:mod:`repro.flags`) selects the scalar path end to end.

The incremental counterpart lives in :mod:`repro.stream.detect`:
:class:`~repro.stream.detect.StreamingAlertDetector` absorbs the same
series chunk by chunk at O(window) state and emits the same alerts
bit for bit — which is what lets :func:`repro.api.stream` finalize
byte-identical to a batch run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import SignalError
from repro.flags import scalar_detect
from repro.signals.series import TimeSeries
from repro.stats.rolling import RollingMedian, trailing_median_at
from repro.timeutils.timestamps import TimeRange

__all__ = ["DetectorConfig", "Alert", "AlertEpisode", "AlertDetector",
           "group_alerts", "group_alerts_scalar"]


@dataclass(frozen=True)
class DetectorConfig:
    """Parameters of a drop detector.

    ``threshold`` is the fraction of the historical median below which a bin
    alerts (0.99 for BGP).  ``history_seconds`` is the length of the
    trailing window the median is computed over.  ``min_history_fraction``
    guards cold starts: no alerts are produced until at least that fraction
    of the window has been observed.
    """

    threshold: float
    history_seconds: int
    min_history_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise SignalError(
                f"alert threshold must be in (0, 1]: {self.threshold}")
        if self.history_seconds <= 0:
            raise SignalError(
                f"history window must be positive: {self.history_seconds}")
        if not 0.0 < self.min_history_fraction <= 1.0:
            raise SignalError(
                f"min history fraction must be in (0, 1]: "
                f"{self.min_history_fraction}")


@dataclass(frozen=True)
class Alert:
    """One alerting bin: its start time, observed value and the baseline
    median it was compared against."""

    time: int
    value: float
    baseline: float


@dataclass(frozen=True)
class AlertEpisode:
    """A maximal run of consecutive alerting bins."""

    span: TimeRange
    min_value: float
    baseline: float
    n_bins: int

    @property
    def depth(self) -> float:
        """Relative depth of the drop: 1 - min/baseline (0 = no drop)."""
        if self.baseline <= 0:
            return 0.0
        return max(0.0, 1.0 - self.min_value / self.baseline)


class AlertDetector:
    """Median-of-trailing-window drop detector.

    Stateless across calls: :meth:`detect` scans a whole series and returns
    the alerting bins.  The current bin never contributes to its own
    baseline (the window is strictly trailing), so a sharp total outage
    alerts immediately rather than dragging its own baseline down.
    """

    def __init__(self, config: DetectorConfig):
        self._config = config

    @property
    def config(self) -> DetectorConfig:
        return self._config

    def window_bins(self, series_width: int) -> int:
        """Number of bins of ``series_width`` the history window spans."""
        bins = self._config.history_seconds // series_width
        if bins <= 0:
            raise SignalError(
                f"history window {self._config.history_seconds}s shorter "
                f"than one bin ({series_width}s)")
        return bins

    def detect(self, series: TimeSeries) -> List[Alert]:
        """Return an :class:`Alert` for every bin below threshold.

        Columnar: a running-max prefilter first proves which bins could
        possibly alert — the baseline median never exceeds the largest
        value seen before a bin, so anything at or above ``threshold *
        running_max`` is out, and the quiet series that dominate the
        curators' scope descent exit here without computing a single
        median.  Exact baselines are then computed only at the surviving
        candidates (:func:`~repro.stats.rolling.trailing_median_at`).
        Bitwise-identical to :meth:`detect_scalar` (asserted by tests);
        ``REPRO_SCALAR_DETECT=1`` routes through the scalar path.
        """
        if scalar_detect():
            return self.detect_scalar(series)
        window = self.window_bins(series.width)
        min_history = max(1, int(window * self._config.min_history_fraction))
        bin_starts, values = series.arrays()
        if values.shape[0] <= min_history:
            return []
        # median(window) <= max(values[:i]), and x <= y implies
        # fl(t*x) <= fl(t*y) (rounding is monotone), so the candidate
        # set is a strict superset of the alerting bins.
        running_max = np.maximum.accumulate(values)
        candidates = min_history + np.flatnonzero(
            values[min_history:]
            < self._config.threshold * running_max[min_history - 1:-1])
        if candidates.size == 0:
            return []
        baselines = trailing_median_at(values, window, candidates)
        keep = values[candidates] < self._config.threshold * baselines
        return [Alert(time=int(bin_starts[i]), value=float(values[i]),
                      baseline=float(baselines[k]))
                for k, i in zip(np.flatnonzero(keep), candidates[keep])]

    def detect_scalar(self, series: TimeSeries) -> List[Alert]:
        """The per-bin reference implementation of :meth:`detect`.

        Scans the series one bin at a time against a
        :class:`~repro.stats.rolling.RollingMedian` tracker — the
        executable specification the columnar path must match bit for
        bit.
        """
        window = self.window_bins(series.width)
        min_history = max(1, int(window * self._config.min_history_fraction))
        tracker = RollingMedian(window)
        alerts: List[Alert] = []
        for ts, value in series:
            baseline = tracker.median
            if (baseline is not None and len(tracker) >= min_history
                    and value < self._config.threshold * baseline):
                alerts.append(Alert(time=ts, value=value, baseline=baseline))
            tracker.push(value)
        return alerts


def group_alerts(alerts: Sequence[Alert], bin_width: int,
                 max_gap_bins: int = 1) -> List[AlertEpisode]:
    """Merge alerting bins into maximal episodes.

    Bins whose start times are within ``max_gap_bins * bin_width`` of the
    previous alerting bin extend the current episode; larger gaps start a
    new one.  A gap tolerance of one bin absorbs single-bin flickers at the
    edge of the threshold.

    Columnar: episode boundaries fall out of one array diff over the
    alert times and the per-episode aggregates are ``reduceat`` calls.
    Identical to :func:`group_alerts_scalar` (the reference);
    ``REPRO_SCALAR_DETECT=1`` selects the scalar path.
    """
    _check_grouping_args(bin_width, max_gap_bins)
    if scalar_detect():
        return group_alerts_scalar(alerts, bin_width,
                                   max_gap_bins=max_gap_bins)
    if not alerts:
        return []
    times = np.fromiter((a.time for a in alerts), dtype=np.int64,
                        count=len(alerts))
    values = np.fromiter((a.value for a in alerts), dtype=np.float64,
                         count=len(alerts))
    starts = np.concatenate([
        [0],
        np.flatnonzero(np.diff(times) > (max_gap_bins + 1) * bin_width) + 1])
    ends = np.concatenate([starts[1:], [len(alerts)]])
    min_values = np.minimum.reduceat(values, starts)
    return [
        AlertEpisode(
            span=TimeRange(int(times[first]),
                           int(times[last - 1]) + bin_width),
            min_value=float(min_values[k]),
            baseline=alerts[first].baseline,
            n_bins=int(last - first),
        )
        for k, (first, last) in enumerate(zip(starts, ends))]


def group_alerts_scalar(alerts: Sequence[Alert], bin_width: int,
                        max_gap_bins: int = 1) -> List[AlertEpisode]:
    """The per-alert reference implementation of :func:`group_alerts`."""
    _check_grouping_args(bin_width, max_gap_bins)
    if not alerts:
        return []
    episodes: List[AlertEpisode] = []
    run: List[Alert] = [alerts[0]]
    for alert in alerts[1:]:
        if alert.time <= run[-1].time + (max_gap_bins + 1) * bin_width:
            run.append(alert)
        else:
            episodes.append(_episode_from_run(run, bin_width))
            run = [alert]
    episodes.append(_episode_from_run(run, bin_width))
    return episodes


def _check_grouping_args(bin_width: int, max_gap_bins: int) -> None:
    if bin_width <= 0:
        raise SignalError(f"bin width must be positive: {bin_width}")
    if max_gap_bins < 0:
        raise SignalError(
            f"max gap must be >= 0 bins: {max_gap_bins}")


def _episode_from_run(run: Sequence[Alert], bin_width: int) -> AlertEpisode:
    return AlertEpisode(
        span=TimeRange(run[0].time, run[-1].time + bin_width),
        min_value=min(alert.value for alert in run),
        baseline=run[0].baseline,
        n_bins=len(run),
    )
