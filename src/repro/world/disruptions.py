"""Ground-truth disruption records.

A :class:`GroundTruthDisruption` is what *actually happened* in the
synthetic world: the authoritative span, scope, severity and cause of a
connectivity disruption.  The observation pipeline (IODA simulation, KIO
reporting) only ever sees noisy projections of these records; the analysis
validation tests compare pipeline output against them.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.signals.entities import EntityScope
from repro.timeutils.timestamps import TimeRange

__all__ = ["Cause", "GroundTruthDisruption", "RestrictionEpisode",
           "new_disruption_id"]

_id_counter = itertools.count(1)


def new_disruption_id() -> int:
    """Process-unique disruption identifier."""
    return next(_id_counter)


class Cause(enum.Enum):
    """Why a disruption happened.

    ``GOVERNMENT_ORDERED`` and ``EXAM`` are the two causes the paper's
    curation labels as shutdowns (§4 "Shutdown and Outage Dataset"); all
    others are spontaneous.  ``INFRASTRUCTURE_ARTIFACT`` is not a real
    disruption at all — it models IODA measurement-infrastructure issues
    that produce correlated signal dips across unrelated countries, which
    the curation pipeline must reject via its control-group check (§3.1.2).
    """

    GOVERNMENT_ORDERED = "government-ordered"
    EXAM = "exam-related"
    CABLE_CUT = "cable-cut"
    POWER_OUTAGE = "power-outage"
    NATURAL_DISASTER = "natural-disaster"
    MISCONFIGURATION = "misconfiguration"
    DDOS = "ddos"
    INFRASTRUCTURE_ARTIFACT = "infrastructure-artifact"

    @property
    def is_shutdown_cause(self) -> bool:
        """Whether the paper's labeling counts this cause as a shutdown."""
        return self in (Cause.GOVERNMENT_ORDERED, Cause.EXAM)


@dataclass(frozen=True)
class GroundTruthDisruption:
    """One disruption as it actually occurred.

    ``severity`` is the fraction of the affected entity's network that went
    down (1.0 = total blackout).  ``mobile_only`` marks disruptions limited
    to mobile networks, which IODA's active probing largely cannot see
    (§4).  ``series_id`` groups disruptions belonging to one overarching
    episode (e.g. nightly shutdowns after a coup, or an exam season) — the
    KIO compiler collapses a series into a single dataset entry, as Access
    Now does.  ``trigger_event_id`` links a shutdown to the mobilization
    event that motivated it, if any.
    """

    disruption_id: int
    country_iso2: str
    span: TimeRange
    scope: EntityScope
    cause: Cause
    severity: float = 1.0
    region_name: Optional[str] = None
    asn: Optional[int] = None
    mobile_only: bool = False
    series_id: Optional[str] = None
    trigger_event_id: Optional[int] = None
    restrictions: Tuple[str, ...] = ("full-network",)

    def __post_init__(self) -> None:
        if not 0.0 < self.severity <= 1.0:
            raise ConfigurationError(
                f"severity must be in (0, 1]: {self.severity}")
        if self.scope is EntityScope.REGION and self.region_name is None:
            raise ConfigurationError("region-scope disruption needs a region")
        if self.scope is EntityScope.AS and self.asn is None:
            raise ConfigurationError("AS-scope disruption needs an ASN")

    @property
    def intentional(self) -> bool:
        """Whether the disruption was ordered (a true shutdown)."""
        return self.cause.is_shutdown_cause

    @property
    def duration_hours(self) -> float:
        """Duration in hours."""
        return self.span.duration / 3600.0

    def __str__(self) -> str:
        where = self.country_iso2
        if self.region_name:
            where += f"/{self.region_name}"
        if self.asn is not None:
            where += f"/AS{self.asn}"
        return (f"Disruption#{self.disruption_id} {where} {self.cause.value} "
                f"{self.span} sev={self.severity:.2f}")


@dataclass(frozen=True)
class RestrictionEpisode:
    """An intentional restriction that is *not* a full-network shutdown.

    Throttling and service-based bans appear in the KIO dataset (and drive
    Figure 2's category counts) but do not disconnect users, so they are
    invisible to IODA's connectivity signals and are excluded from the
    paper's merged shutdown set.  ``restrictions`` is the non-empty list of
    techniques applied (categories are not mutually exclusive, §3.2).
    """

    episode_id: int
    country_iso2: str
    span: TimeRange
    restrictions: Tuple[str, ...]
    trigger_event_id: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.restrictions:
            raise ConfigurationError("restriction episode needs techniques")
        if "full-network" in self.restrictions:
            raise ConfigurationError(
                "full-network restrictions are GroundTruthDisruptions")
