"""The synthetic world: ground truth the measurement pipeline observes.

The paper studies real events through two imperfect lenses (IODA's signals
and Access Now's reporting).  Our reproduction replaces the real world with
a seeded generative model whose *ground truth* is retained, so every stage
of the pipeline can be validated against what actually happened:

- :mod:`repro.world.disruptions` — the ground-truth disruption record:
  span, scope, severity, cause, intentionality.
- :mod:`repro.world.profiles` — per-country-year political and economic
  profiles (the latent variables the V-Dem/World-Bank emitters observe).
- :mod:`repro.world.events` — mobilization events: elections, coups,
  protest days.
- :mod:`repro.world.policy` — government shutdown behaviour per archetype:
  exam-season series, coup blackouts, election and protest responses, with
  the human fingerprints §5.3 documents (on-the-hour starts, round
  durations, 1-4 day recurrence, workday bias).
- :mod:`repro.world.outages` — spontaneous outage processes (cable cuts,
  power failures, misconfigurations) with none of those fingerprints.
- :mod:`repro.world.scenario` — the orchestrator assembling everything
  into a :class:`WorldScenario`.
"""

from repro.world.disruptions import Cause, GroundTruthDisruption
from repro.world.profiles import CountryYearProfile, ProfileGenerator
from repro.world.events import EventKind, MobilizationEvent, EventGenerator
from repro.world.policy import ShutdownPolicyEngine
from repro.world.outages import SpontaneousOutageGenerator
from repro.world.scenario import (
    KIO_PERIOD,
    STUDY_PERIOD,
    ScenarioConfig,
    ScenarioGenerator,
    WorldScenario,
)
from repro.world.validation import AuditFinding, ScenarioAuditor

__all__ = [
    "Cause",
    "GroundTruthDisruption",
    "CountryYearProfile",
    "ProfileGenerator",
    "EventKind",
    "MobilizationEvent",
    "EventGenerator",
    "ShutdownPolicyEngine",
    "SpontaneousOutageGenerator",
    "KIO_PERIOD",
    "STUDY_PERIOD",
    "ScenarioConfig",
    "ScenarioGenerator",
    "WorldScenario",
    "AuditFinding",
    "ScenarioAuditor",
]
