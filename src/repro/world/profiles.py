"""Per-country-year political and economic profiles.

These are the latent variables that the V-Dem and World-Bank dataset
emitters (:mod:`repro.datasets`) observe.  Profiles are drawn per country
from archetype-anchored distributions and evolve slowly across years via a
bounded random walk, matching the paper's observation that institutional
indices are typically stable year to year (§7).

The generated correlations implement the political-economy structure the
paper leans on (§5.1): autocracy ⇢ lower GDP, less broadband, more media
bias, more politically powerful militaries, and more state ownership of the
access market.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple

import numpy as np

from repro.countries.registry import Archetype, Country, CountryRegistry
from repro.rng import substream

__all__ = ["CountryYearProfile", "ProfileGenerator"]


@dataclass(frozen=True)
class CountryYearProfile:
    """The latent institutional and economic state of one country-year.

    Index conventions follow V-Dem where applicable:

    - ``liberal_democracy`` in [0, 1]; lower = more autocratic (Fig 4).
    - ``military_power`` in [0, 1]; higher = military more capable of
      removing the regime (Fig 5).
    - ``media_bias`` and ``freedom_discussion_men`` are centred near 0
      with lower values indicating more authoritarianism (Fig 6).
    - ``gdp_per_capita`` in PPP dollars (Fig 7, log-scaled there).
    - ``broadband_fraction`` in [0, 1]: share of population with fixed
      broadband access (Fig 7).
    - ``internet_users_millions``: DataReportal-style estimate.
    """

    country_iso2: str
    year: int
    liberal_democracy: float
    military_power: float
    media_bias: float
    freedom_discussion_men: float
    gdp_per_capita: float
    broadband_fraction: float
    internet_users_millions: float


class ProfileGenerator:
    """Draws :class:`CountryYearProfile` series for every country."""

    #: Extra military-power mass for coup-prone archetypes.
    _MILITARY_BOOST: Mapping[Archetype, float] = {
        Archetype.COUP: 0.35,
        Archetype.FRAGILE: 0.12,
        Archetype.EXAM: 0.10,
    }

    def __init__(self, seed: int, registry: CountryRegistry):
        self._seed = seed
        self._registry = registry

    def generate(self, years: Iterable[int]
                 ) -> Dict[Tuple[str, int], CountryYearProfile]:
        """Profiles for every (country, year) pair."""
        year_list = sorted(set(years))
        profiles: Dict[Tuple[str, int], CountryYearProfile] = {}
        for country in self._registry:
            for profile in self._country_series(country, year_list):
                profiles[(country.iso2, profile.year)] = profile
        return profiles

    # -- internals -----------------------------------------------------------

    def _country_series(self, country: Country,
                        years: list[int]) -> Iterable[CountryYearProfile]:
        rng = substream(self._seed, "profiles", country.iso2)
        autocracy = float(np.clip(
            rng.normal(country.autocracy_hint, 0.07), 0.02, 0.98))
        income = float(np.clip(
            rng.normal(country.income_hint, 0.08), 0.02, 0.98))
        libdem = 1.0 - autocracy
        military = float(np.clip(
            rng.normal(
                0.15 + 0.45 * autocracy
                + self._MILITARY_BOOST.get(country.archetype, 0.0),
                0.12),
            0.0, 1.0))
        # Low-military democracies cluster at exactly zero, as in V-Dem
        # (over half of "Neither" country-years score 0 in Fig 5).
        if libdem > 0.5 and military < 0.28:
            military = 0.0
        for year in years:
            libdem = float(np.clip(
                libdem + rng.normal(0.0, 0.015), 0.01, 0.95))
            income = float(np.clip(
                income + rng.normal(0.004, 0.01), 0.02, 0.98))
            military = float(np.clip(
                military + rng.normal(0.0, 0.02), 0.0, 1.0))
            # Once at zero, a democracy's military power stays pinned
            # there (V-Dem's floor effect) unless institutions shift.
            if libdem > 0.5 and military < 0.1:
                military = 0.0
            yield self._profile(country, year, libdem, military, income, rng)

    @staticmethod
    def _profile(country: Country, year: int, libdem: float,
                 military: float, income: float,
                 rng: np.random.Generator) -> CountryYearProfile:
        media_bias = float((libdem - 0.45) * 3.2 + rng.normal(0.0, 0.45))
        freedom_men = float((libdem - 0.42) * 3.0 + rng.normal(0.0, 0.5))
        gdp = float(np.exp(
            5.6 + 4.4 * income + rng.normal(0.0, 0.25)))
        broadband = float(np.clip(
            income * 0.72 + rng.normal(0.0, 0.05), 0.001, 0.85))
        penetration = float(np.clip(
            0.15 + 0.75 * income + rng.normal(0.0, 0.05), 0.02, 0.97))
        users = country.population_millions * penetration
        return CountryYearProfile(
            country_iso2=country.iso2,
            year=year,
            liberal_democracy=libdem,
            military_power=military,
            media_bias=media_bias,
            freedom_discussion_men=freedom_men,
            gdp_per_capita=gdp,
            broadband_fraction=broadband,
            internet_users_millions=users,
        )
