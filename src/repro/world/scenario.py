"""Scenario orchestration: assembling the whole synthetic world.

A :class:`WorldScenario` bundles everything the observation and analysis
pipelines consume: the country registry, the AS topologies, per-country-year
profiles, mobilization events, and the ground-truth disruption lists
(intentional shutdowns, soft restrictions, spontaneous outages, and
measurement-infrastructure artifacts).

Two canonical periods mirror the paper:

- :data:`KIO_PERIOD` (2016-01-01 .. 2022-01-01): the span of the Access Now
  annual snapshots (Fig 2).
- :data:`STUDY_PERIOD` (2018-01-01 .. 2021-08-01): the IODA/KIO overlap the
  merged analysis is restricted to (§3.1.2, §4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.countries.registry import Country, CountryRegistry, \
    default_registry
from repro.errors import ConfigurationError
from repro.rng import substream
from repro.signals.kinds import SignalKind
from repro.timeutils.timestamps import HOUR, TimeRange, utc
from repro.topology.generator import TopologyGenerator, WorldTopology
from repro.world.disruptions import GroundTruthDisruption, RestrictionEpisode
from repro.world.events import EventGenerator, MobilizationEvent
from repro.world.outages import OutageRates, SpontaneousOutageGenerator
from repro.world.policy import ShutdownPolicyEngine
from repro.world.profiles import CountryYearProfile, ProfileGenerator

__all__ = [
    "KIO_PERIOD",
    "STUDY_PERIOD",
    "MeasurementArtifact",
    "ScenarioConfig",
    "WorldScenario",
    "ScenarioGenerator",
]

#: The span covered by KIO annual snapshots in the paper (2016-2021).
KIO_PERIOD = TimeRange(utc(2016, 1, 1), utc(2022, 1, 1))

#: The paper's merged study period (§4).
STUDY_PERIOD = TimeRange(utc(2018, 1, 1), utc(2021, 8, 1))


@dataclass(frozen=True)
class MeasurementArtifact:
    """A measurement-infrastructure issue, not a real outage.

    Artifacts depress one signal *globally* (a failing probing server, a
    faulty BGP collector, telescope packet loss).  The curation pipeline's
    control-group check exists precisely to reject these (§3.1.2).
    """

    span: TimeRange
    signal: SignalKind
    depth: float  # fractional drop applied to the signal, in (0, 1]

    def __post_init__(self) -> None:
        if not 0.0 < self.depth <= 1.0:
            raise ConfigurationError(
                f"artifact depth must be in (0, 1]: {self.depth}")


@dataclass(frozen=True, kw_only=True)
class ScenarioConfig:
    """Knobs for scenario generation.

    Keyword-only: part of the stable :mod:`repro.api` constructor
    surface, so fields may be added or reordered freely.
    """

    seed: int = 2023
    years: Tuple[int, ...] = (2016, 2017, 2018, 2019, 2020, 2021)
    n_artifacts: int = 4
    address_scale: float = 1.0
    outage_rates: OutageRates = field(default_factory=OutageRates)


@dataclass
class WorldScenario:
    """The fully generated synthetic world."""

    config: ScenarioConfig
    registry: CountryRegistry
    topology: WorldTopology
    profiles: Dict[Tuple[str, int], CountryYearProfile]
    events: Tuple[MobilizationEvent, ...]
    shutdowns: Tuple[GroundTruthDisruption, ...]
    outages: Tuple[GroundTruthDisruption, ...]
    restrictions: Tuple[RestrictionEpisode, ...]
    artifacts: Tuple[MeasurementArtifact, ...]

    # -- convenience accessors ------------------------------------------------

    @property
    def seed(self) -> int:
        return self.config.seed

    def country(self, iso2: str) -> Country:
        return self.registry.get(iso2)

    def profile(self, iso2: str, year: int) -> Optional[CountryYearProfile]:
        return self.profiles.get((iso2.upper(), year))

    def all_disruptions(self) -> Iterator[GroundTruthDisruption]:
        """Shutdowns and outages interleaved in time order.

        The merged sort is memoized — the disruption tuples never change
        after generation, and the curation hot path asks thousands of
        times per run.
        """
        return iter(self._merged_disruptions())

    def _merged_disruptions(self) -> List[GroundTruthDisruption]:
        cached = self.__dict__.get("_disruptions_sorted")
        if cached is None:
            cached = sorted(
                itertools.chain(self.shutdowns, self.outages),
                key=lambda d: d.span.start)
            self._disruptions_sorted = cached
        return cached

    def country_disruptions(self, iso2: str
                            ) -> List[GroundTruthDisruption]:
        """One country's disruptions in time order (memoized index)."""
        index = self.__dict__.get("_disruptions_by_country")
        if index is None:
            index = {}
            for d in self._merged_disruptions():
                index.setdefault(d.country_iso2, []).append(d)
            self._disruptions_by_country = index
        return index.get(iso2.upper(), [])

    def disruptions_in(self, period: TimeRange,
                       country_iso2: str | None = None
                       ) -> List[GroundTruthDisruption]:
        """Disruptions whose *start* falls inside ``period``."""
        pool = (self._merged_disruptions() if country_iso2 is None
                else self.country_disruptions(country_iso2))
        return [d for d in pool if period.contains(d.span.start)]

    def country_level_disruptions(
            self, period: TimeRange) -> List[GroundTruthDisruption]:
        """Country-scope disruptions starting inside ``period``."""
        from repro.signals.entities import EntityScope
        return [d for d in self.disruptions_in(period)
                if d.scope is EntityScope.COUNTRY]

    def ground_truth_label(self, disruption: GroundTruthDisruption) -> str:
        """'shutdown' or 'outage' per the disruption's true cause."""
        return "shutdown" if disruption.intentional else "outage"


class ScenarioGenerator:
    """Deterministically builds a :class:`WorldScenario` from a config."""

    def __init__(self, config: ScenarioConfig | None = None,
                 registry: CountryRegistry | None = None):
        self._config = config or ScenarioConfig()
        self._registry = registry or default_registry()

    def generate(self) -> WorldScenario:
        """Generate the full world."""
        config = self._config
        topology = TopologyGenerator(
            config.seed, self._registry,
            address_scale=config.address_scale).generate()
        profiles = ProfileGenerator(
            config.seed, self._registry).generate(config.years)
        events = tuple(EventGenerator(
            config.seed, self._registry).generate(config.years))
        policy = ShutdownPolicyEngine(
            config.seed, self._registry, topology, profiles)
        policy_output = policy.generate(config.years, events)
        generation_period = TimeRange(
            utc(min(config.years), 1, 1), utc(max(config.years) + 1, 1, 1))
        outages = SpontaneousOutageGenerator(
            config.seed, self._registry, topology,
            rates=config.outage_rates).generate(generation_period)
        artifacts = self._artifacts(config)
        return WorldScenario(
            config=config,
            registry=self._registry,
            topology=topology,
            profiles=profiles,
            events=events,
            shutdowns=policy_output.shutdowns,
            outages=tuple(outages),
            restrictions=policy_output.restrictions,
            artifacts=artifacts,
        )

    def _artifacts(self,
                   config: ScenarioConfig) -> Tuple[MeasurementArtifact, ...]:
        rng = substream(config.seed, "artifacts")
        artifacts = []
        signals = list(SignalKind)
        for i in range(config.n_artifacts):
            start = int(STUDY_PERIOD.start + rng.integers(
                0, STUDY_PERIOD.duration - 12 * HOUR))
            # Align to a bin boundary for tidy simulation.
            start -= start % 300
            duration = int(rng.integers(1, 7)) * HOUR
            artifacts.append(MeasurementArtifact(
                span=TimeRange(start, start + duration),
                signal=signals[int(rng.integers(0, len(signals)))],
                depth=float(rng.uniform(0.3, 0.9)),
            ))
        return tuple(sorted(artifacts, key=lambda a: a.span.start))
