"""Scenario auditing: is the synthetic world in the paper's regime?

:class:`ScenarioAuditor` runs a battery of calibration checks against the
populations the paper documents, returning structured findings instead of
asserting — so a user tuning :class:`~repro.world.scenario.ScenarioConfig`
can see exactly which regime properties their configuration preserves and
which it breaks.  The canonical seed must pass every check (enforced in
the test suite); exotic configurations may legitimately fail some.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.signals.entities import EntityScope
from repro.timeutils.timezones import local_minute_of_hour
from repro.world.scenario import STUDY_PERIOD, WorldScenario

__all__ = ["AuditFinding", "ScenarioAuditor"]


@dataclass(frozen=True)
class AuditFinding:
    """One calibration check's outcome."""

    check: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.check}: {self.detail}"


class ScenarioAuditor:
    """Runs every calibration check against a scenario."""

    def __init__(self, scenario: WorldScenario):
        self._scenario = scenario
        self._shutdowns = [
            d for d in scenario.shutdowns
            if d.scope is EntityScope.COUNTRY
            and STUDY_PERIOD.contains(d.span.start)]
        self._outages = [
            d for d in scenario.outages
            if STUDY_PERIOD.contains(d.span.start)]

    def audit(self) -> List[AuditFinding]:
        """Run all checks."""
        checks: Tuple[Tuple[str, Callable[[], Tuple[bool, str]]], ...] = (
            ("shutdown volume", self._check_shutdown_volume),
            ("outage volume", self._check_outage_volume),
            ("shutdown concentration", self._check_concentration),
            ("outage breadth", self._check_outage_breadth),
            ("on-the-hour starts", self._check_on_hour),
            ("outage/shutdown duration gap", self._check_durations),
            ("subnational concentration", self._check_subnational),
            ("artifact coverage", self._check_artifacts),
        )
        return [AuditFinding(check=name, passed=ok, detail=detail)
                for name, check in checks
                for ok, detail in [check()]]

    def passed(self) -> bool:
        """Whether every check passed."""
        return all(finding.passed for finding in self.audit())

    # -- individual checks ------------------------------------------------------

    def _check_shutdown_volume(self) -> Tuple[bool, str]:
        n = len(self._shutdowns)
        return 100 <= n <= 450, (
            f"{n} country-level shutdowns in the study period "
            f"(paper regime ~180-220)")

    def _check_outage_volume(self) -> Tuple[bool, str]:
        n = len(self._outages)
        return 400 <= n <= 1200, (
            f"{n} spontaneous outages in the study period (paper ~714)")

    def _check_concentration(self) -> Tuple[bool, str]:
        counts = Counter(d.country_iso2 for d in self._shutdowns)
        if not counts:
            return False, "no shutdowns at all"
        top5 = sum(c for _, c in counts.most_common(5))
        share = top5 / len(self._shutdowns)
        return share > 0.5, (
            f"top-5 countries hold {share:.0%} of shutdowns "
            f"(paper: heavily concentrated)")

    def _check_outage_breadth(self) -> Tuple[bool, str]:
        n_countries = len({d.country_iso2 for d in self._outages})
        return n_countries >= 100, (
            f"outages span {n_countries} countries (paper: 150)")

    def _check_on_hour(self) -> Tuple[bool, str]:
        if not self._shutdowns:
            return False, "no shutdowns"
        registry = self._scenario.registry
        on_hour = sum(
            1 for d in self._shutdowns
            if local_minute_of_hour(
                d.span.start,
                registry.get(d.country_iso2).utc_offset) == 0)
        share = on_hour / len(self._shutdowns)
        return share > 0.6, (
            f"{share:.0%} of shutdowns start on the local hour "
            f"(paper: 74%)")

    def _check_durations(self) -> Tuple[bool, str]:
        if not self._shutdowns or not self._outages:
            return False, "missing an event class"
        sd = sorted(d.span.duration for d in self._shutdowns)
        out = sorted(d.span.duration for d in self._outages)
        sd_median = sd[len(sd) // 2] / 3600
        out_median = out[len(out) // 2] / 3600
        return sd_median > 1.5 * out_median, (
            f"median durations {sd_median:.1f} h vs {out_median:.1f} h "
            f"(paper: 5.5 vs 2)")

    def _check_subnational(self) -> Tuple[bool, str]:
        regional = [d for d in self._scenario.shutdowns
                    if d.scope is EntityScope.REGION]
        if not regional:
            return False, "no subnational shutdowns generated"
        india = sum(1 for d in regional if d.country_iso2 == "IN")
        share = india / len(regional)
        return share > 0.7, (
            f"{share:.0%} of subnational shutdowns in India (paper: 85%)")

    def _check_artifacts(self) -> Tuple[bool, str]:
        n = len(self._scenario.artifacts)
        return n >= 1, f"{n} measurement artifacts for control-group tests"
