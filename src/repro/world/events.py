"""Mobilization events: elections, coups, protest days.

These are the real-world events §5.2 correlates with shutdowns.  The
generator draws them per country-year:

- **Elections** follow multi-year cycles with jitter, so each country has
  an election roughly every 2-5 years.
- **Coups** are rare, concentrated in coup-prone archetypes; the paper's
  dataset has only seven in the study period, and the generator is
  calibrated to land in that regime.
- **Protest days** follow an overdispersed count distribution: most
  country-years have none or a few, autocracies under stress have bursts.

Events are ground truth; the dataset emitters (:mod:`repro.datasets`)
re-publish them with each source's quirks (e.g. the protest dataset ends in
2019).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.countries.registry import Archetype, Country, CountryRegistry
from repro.rng import substream
from repro.timeutils.timestamps import DAY, utc

__all__ = ["EventKind", "MobilizationEvent", "EventGenerator"]


class EventKind(enum.Enum):
    """The three mobilization event classes of Table 4."""

    ELECTION = "election"
    COUP = "coup"
    PROTEST = "protest"


@dataclass(frozen=True)
class MobilizationEvent:
    """One event: a kind, a country, and the UTC midnight of its (local)
    day.

    ``day_start_utc`` is the UTC timestamp of the *local* midnight starting
    the event day, so that co-occurrence with disruptions can be evaluated
    in the country's local calendar, as the paper does.
    """

    event_id: int
    kind: EventKind
    country_iso2: str
    day_start_utc: int

    @property
    def day_end_utc(self) -> int:
        return self.day_start_utc + DAY


class EventGenerator:
    """Draws mobilization events for every country over a span of years."""

    #: Annual coup probability by archetype.
    _COUP_RATE = {
        Archetype.COUP: 0.22,
        Archetype.FRAGILE: 0.008,
        Archetype.ELECTION: 0.006,
    }
    _COUP_RATE_DEFAULT = 0.001

    #: Mean protest days per year by regime stress.
    _PROTEST_MEAN = {
        Archetype.PROTEST: 14.0,
        Archetype.ELECTION: 7.0,
        Archetype.COUP: 8.0,
        Archetype.EXAM: 6.0,
        Archetype.AUTOCRACY: 4.0,
        Archetype.FRAGILE: 5.0,
        Archetype.SUBNATIONAL: 9.0,
        Archetype.STABLE: 2.5,
    }

    def __init__(self, seed: int, registry: CountryRegistry):
        self._seed = seed
        self._registry = registry
        self._ids = itertools.count(1)

    def generate(self, years: Iterable[int]) -> List[MobilizationEvent]:
        """All events for all countries across ``years``, ordered by
        (country, time)."""
        year_list = sorted(set(years))
        events: List[MobilizationEvent] = []
        for country in self._registry:
            events.extend(self._country_events(country, year_list))
        return events

    # -- internals -----------------------------------------------------------

    def _country_events(self, country: Country,
                        years: list[int]) -> Iterable[MobilizationEvent]:
        rng = substream(self._seed, "events", country.iso2)
        cycle = int(rng.integers(2, 6))
        phase = int(rng.integers(0, cycle))
        for year in years:
            if (year + phase) % cycle == 0:
                yield self._event(EventKind.ELECTION, country, year, rng)
            coup_rate = self._COUP_RATE.get(
                country.archetype, self._COUP_RATE_DEFAULT)
            if rng.random() < coup_rate:
                yield self._event(EventKind.COUP, country, year, rng)
            mean = self._PROTEST_MEAN[country.archetype]
            n_protests = int(rng.negative_binomial(n=1.2, p=1.2 / (1.2 + mean)))
            for _ in range(n_protests):
                yield self._event(EventKind.PROTEST, country, year, rng)

    def _event(self, kind: EventKind, country: Country, year: int,
               rng: np.random.Generator) -> MobilizationEvent:
        day_of_year = int(rng.integers(0, 365))
        local_midnight = utc(year, 1, 1) + day_of_year * DAY
        # Shift so the timestamp is the UTC instant of the local midnight.
        day_start = local_midnight - country.utc_offset.seconds
        return MobilizationEvent(
            event_id=next(self._ids),
            kind=kind,
            country_iso2=country.iso2,
            day_start_utc=day_start,
        )

    @staticmethod
    def index_by_country(events: Iterable[MobilizationEvent]
                         ) -> Dict[Tuple[str, EventKind],
                                   List[MobilizationEvent]]:
        """Group events by (country, kind) for policy and analysis code."""
        index: Dict[Tuple[str, EventKind], List[MobilizationEvent]] = {}
        for event in events:
            index.setdefault(
                (event.country_iso2, event.kind), []).append(event)
        for bucket in index.values():
            bucket.sort(key=lambda e: e.day_start_utc)
        return index
