"""Government shutdown behaviour.

This module decides, per country and year, which intentional disruptions a
government orders.  It encodes the behavioural regularities the paper
attributes to human intervention (§5.3) — the regularities the analysis
layer must later *rediscover* from the observed data:

- **Exam seasons** (Iraq, Syria, Algeria, Ethiopia style): a yearly series
  of early-morning nationwide blackouts on exam days, starting exactly on a
  local hour, lasting a round number of hours (4.5/5.5/8/10), recurring at
  1-4 day intervals, and skipping the local weekend.
- **Coup blackouts** (Myanmar, Sudan style): a total blackout on or right
  after the coup day, optionally followed by a long nightly-curfew series
  starting at local midnight with exactly 24-hour recurrence.
- **Election blackouts**: a blackout starting at local midnight of election
  day in autocracies with the means to order one.
- **Protest responses**: same-day shutdowns on some protest days, starting
  on the hour during waking hours.

Capability gating follows §5.1.1: governments that control the majority of
the domestic address space (ground-truth state share from the topology) are
far more likely to order shutdowns, and more autocratic regimes more likely
still.  Shutdowns may carry additional restriction techniques (service bans
during a blackout), and autocracies additionally produce throttling /
service-ban episodes with no connectivity impact (for KIO's category mix,
Fig 2).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.countries.registry import Archetype, Country, CountryRegistry
from repro.rng import substream
from repro.signals.entities import EntityScope
from repro.timeutils.timestamps import DAY, HOUR, TimeRange, utc
from repro.timeutils.timezones import local_weekday
from repro.topology.generator import WorldTopology
from repro.world.disruptions import (
    Cause,
    GroundTruthDisruption,
    RestrictionEpisode,
)
from repro.world.events import EventGenerator, EventKind, MobilizationEvent
from repro.world.profiles import CountryYearProfile

__all__ = ["PolicyOutput", "ShutdownPolicyEngine"]

_HALF_HOUR = 30 * 60

#: Round shutdown durations observed disproportionately in the paper
#: ("a particularly high fraction of shutdowns last precisely 4.5, 5.5,
#: 8, or 10 hours").
_EXAM_DURATIONS_H = (4.5, 5.5, 8.0, 10.0)


@dataclass(frozen=True)
class PolicyOutput:
    """Everything the policy engine produced."""

    shutdowns: Tuple[GroundTruthDisruption, ...]
    restrictions: Tuple[RestrictionEpisode, ...]


class ShutdownPolicyEngine:
    """Generates intentional disruptions for every country."""

    def __init__(self, seed: int, registry: CountryRegistry,
                 topology: WorldTopology,
                 profiles: Dict[Tuple[str, int], CountryYearProfile]):
        self._seed = seed
        self._registry = registry
        self._topology = topology
        self._profiles = profiles
        self._ids = itertools.count(1)
        self._restriction_ids = itertools.count(1)

    def generate(self, years: Sequence[int],
                 events: Iterable[MobilizationEvent]) -> PolicyOutput:
        """Run the policy for all countries across ``years``."""
        index = EventGenerator.index_by_country(events)
        shutdowns: List[GroundTruthDisruption] = []
        restrictions: List[RestrictionEpisode] = []
        for country in self._registry:
            rng = substream(self._seed, "policy", country.iso2)
            capability = self._capability(country)
            for year in sorted(set(years)):
                profile = self._profiles.get((country.iso2, year))
                if profile is None:
                    continue
                context = _YearContext(country, year, profile, capability)
                shutdowns.extend(self._exam_series(context, rng))
                shutdowns.extend(self._coup_response(context, index, rng))
                shutdowns.extend(self._election_blackouts(
                    context, index, rng))
                shutdowns.extend(self._protest_responses(
                    context, index, rng))
                shutdowns.extend(self._subnational_shutdowns(context, rng))
                restrictions.extend(self._soft_restrictions(context, rng))
        shutdowns.sort(key=lambda d: (d.country_iso2, d.span.start))
        restrictions.sort(key=lambda r: (r.country_iso2, r.span.start))
        return PolicyOutput(tuple(shutdowns), tuple(restrictions))

    # -- capability -----------------------------------------------------------

    def _capability(self, country: Country) -> float:
        """How able the state is to order a shutdown, in [0, 1].

        Majority state control of the address space is the dominant factor
        (§5.1.1); without it a government must coerce private operators,
        which happens but less readily.
        """
        if country.iso2 in self._topology:
            state_share = self._topology.get(
                country.iso2).state_owned_slash24_fraction()
        else:
            state_share = country.state_isp_hint
        return 0.25 + 0.75 * state_share

    # -- exam seasons ---------------------------------------------------------

    def _exam_series(self, ctx: "_YearContext",
                     rng: np.random.Generator
                     ) -> Iterable[GroundTruthDisruption]:
        if ctx.country.archetype is not Archetype.EXAM:
            return
        autocracy = 1.0 - ctx.profile.liberal_democracy
        if rng.random() > 0.92 * autocracy * ctx.capability:
            return
        series_id = f"{ctx.country.iso2}-{ctx.year}-exams"
        # Exam season starts late May - early July.
        season_day = int(rng.integers(145, 185))
        start_hour = int(rng.choice([2, 4, 5, 6], p=[0.3, 0.35, 0.2, 0.15]))
        duration_h = float(rng.choice(
            _EXAM_DURATIONS_H, p=[0.35, 0.35, 0.2, 0.1]))
        n_days = int(rng.integers(7, 15))
        yield from self._exam_wave(
            ctx, rng, series_id, season_day, start_hour, duration_h, n_days)
        # Makeup-exam wave roughly two months later, reported as its own
        # KIO entry (Iraq and Syria appear in KIO several times per year).
        if rng.random() < 0.6:
            yield from self._exam_wave(
                ctx, rng, series_id + "-makeup",
                season_day + int(rng.integers(50, 75)),
                start_hour, duration_h, int(rng.integers(3, 7)))
        return

    def _exam_wave(self, ctx: "_YearContext", rng: np.random.Generator,
                   series_id: str, season_day: int, start_hour: int,
                   duration_h: float, n_days: int
                   ) -> Iterable[GroundTruthDisruption]:
        day_cursor = utc(ctx.year, 1, 1) + season_day * DAY
        produced = 0
        while produced < n_days:
            start = (day_cursor + start_hour * HOUR
                     - ctx.country.utc_offset.seconds)
            weekday = local_weekday(start, ctx.country.utc_offset)
            if ctx.country.workweek.is_workday(weekday):
                duration = duration_h
                if rng.random() < 0.15:
                    # Occasional half-hour extension for a longer exam.
                    duration += 0.5
                yield self._shutdown(
                    ctx, TimeRange(start, start + int(duration * 3600)),
                    Cause.EXAM, series_id=series_id,
                    extra_restrictions=())
                produced += 1
            # Exams on consecutive days, sometimes a 2-day gap.
            day_cursor += DAY * int(rng.choice([1, 1, 1, 2]))

    # -- coups ---------------------------------------------------------------

    def _coup_response(self, ctx: "_YearContext",
                       index: Dict[Tuple[str, EventKind],
                                   List[MobilizationEvent]],
                       rng: np.random.Generator
                       ) -> Iterable[GroundTruthDisruption]:
        coups = [e for e in index.get((ctx.country.iso2, EventKind.COUP), [])
                 if _year_of(e.day_start_utc, ctx) == ctx.year]
        nightly_done = False
        for coup in coups:
            blackout_p = (0.8 if ctx.country.archetype is Archetype.COUP
                          else 0.3 * ctx.capability)
            if rng.random() > blackout_p:
                continue
            series_id = f"{ctx.country.iso2}-coup-{coup.event_id}"
            # Immediate blackout, starting on the hour of the coup day.
            blackout_start = (coup.day_start_utc
                              + int(rng.integers(3, 15)) * HOUR)
            blackout_hours = int(rng.integers(24, 73))
            yield self._shutdown(
                ctx, TimeRange(blackout_start,
                               blackout_start + blackout_hours * HOUR),
                Cause.GOVERNMENT_ORDERED, series_id=series_id,
                trigger=coup.event_id,
                extra_restrictions=("service-based",))
            # Myanmar-style nightly curfew series afterwards: only
            # entrenched coup regimes sustain one, at most once.
            if (ctx.country.archetype is Archetype.COUP
                    and not nightly_done and rng.random() < 0.7):
                nightly_done = True
                n_nights = int(rng.integers(25, 50))
                first_night = (coup.day_start_utc
                               + int(rng.integers(7, 15)) * DAY)
                night_hours = float(rng.choice([6.5, 8.0, 9.0]))
                for night in range(n_nights):
                    start = first_night + night * DAY
                    yield self._shutdown(
                        ctx, TimeRange(
                            start, start + int(night_hours * 3600)),
                        Cause.GOVERNMENT_ORDERED, series_id=series_id,
                        trigger=coup.event_id,
                        extra_restrictions=())

    # -- elections -------------------------------------------------------------

    def _election_blackouts(self, ctx: "_YearContext",
                            index: Dict[Tuple[str, EventKind],
                                        List[MobilizationEvent]],
                            rng: np.random.Generator
                            ) -> Iterable[GroundTruthDisruption]:
        elections = [
            e for e in index.get((ctx.country.iso2, EventKind.ELECTION), [])
            if _year_of(e.day_start_utc, ctx) == ctx.year]
        autocracy = 1.0 - ctx.profile.liberal_democracy
        base = 0.35 if ctx.country.archetype is Archetype.ELECTION else 0.03
        for election in elections:
            if rng.random() > base * autocracy * ctx.capability:
                continue
            start = election.day_start_utc  # local midnight of election day
            duration_h = float(rng.choice([24.0, 36.0, 48.0, 72.0],
                                          p=[0.4, 0.2, 0.25, 0.15]))
            yield self._shutdown(
                ctx, TimeRange(start, start + int(duration_h * 3600)),
                Cause.GOVERNMENT_ORDERED,
                series_id=f"{ctx.country.iso2}-election-{election.event_id}",
                trigger=election.event_id,
                extra_restrictions=("service-based",),
                mobile_only=bool(rng.random() < 0.3))

    # -- protests ----------------------------------------------------------------

    def _protest_responses(self, ctx: "_YearContext",
                           index: Dict[Tuple[str, EventKind],
                                       List[MobilizationEvent]],
                           rng: np.random.Generator
                           ) -> Iterable[GroundTruthDisruption]:
        protests = [
            e for e in index.get((ctx.country.iso2, EventKind.PROTEST), [])
            if _year_of(e.day_start_utc, ctx) == ctx.year]
        autocracy = 1.0 - ctx.profile.liberal_democracy
        base = (0.11 if ctx.country.archetype is Archetype.PROTEST
                else 0.005)
        respond_p = base * autocracy ** 1.5 * ctx.capability
        for protest in protests:
            if rng.random() > respond_p:
                continue
            # Order comes down during waking hours, executed on the hour.
            hour = int(rng.integers(8, 23))
            start = protest.day_start_utc + hour * HOUR
            if rng.random() < 0.15:
                start += _HALF_HOUR
            duration_h = float(rng.choice(
                [6.0, 12.0, 24.0, 48.0], p=[0.3, 0.3, 0.25, 0.15]))
            if rng.random() < 0.2:
                duration_h += 0.5
            yield self._shutdown(
                ctx, TimeRange(start, start + int(duration_h * 3600)),
                Cause.GOVERNMENT_ORDERED,
                series_id=f"{ctx.country.iso2}-protest-{protest.event_id}",
                trigger=protest.event_id,
                extra_restrictions=("service-based",) if rng.random() < 0.4
                else (),
                # Mobile networks carry the protest coordination traffic,
                # so many orders target mobile only — events civil society
                # reports but IODA's probing largely cannot see (§4).
                mobile_only=bool(rng.random() < 0.55))

    # -- subnational (India-style) ----------------------------------------------

    def _subnational_shutdowns(self, ctx: "_YearContext",
                               rng: np.random.Generator
                               ) -> Iterable[GroundTruthDisruption]:
        """Region-scoped, mostly mobile-only shutdowns.

        The paper reports 85% of subnational full-network shutdowns occur
        in India and 72% of those affect only mobile networks (§4); they
        are excluded from the country-level analysis but must exist so the
        filtering stage has something to filter.
        """
        if ctx.country.archetype is not Archetype.SUBNATIONAL:
            return
        network = self._topology.get(ctx.country.iso2)
        # Subnational shutdown use grew sharply over the period (the paper's
        # KIO totals, Fig 2, are dominated by India's regional shutdowns).
        yearly_mean = {2016: 15.0, 2017: 25.0, 2018: 45.0,
                       2019: 60.0, 2020: 45.0, 2021: 50.0}
        n_events = int(rng.poisson(yearly_mean.get(ctx.year, 40.0)))
        for _ in range(n_events):
            region = network.regions[int(rng.integers(0, len(network.regions)))]
            day = utc(ctx.year, 1, 1) + int(rng.integers(0, 365)) * DAY
            hour = int(rng.integers(0, 24))
            start = day + hour * HOUR - ctx.country.utc_offset.seconds
            duration_h = float(rng.choice([12.0, 24.0, 48.0, 96.0]))
            yield GroundTruthDisruption(
                disruption_id=next(self._ids),
                country_iso2=ctx.country.iso2,
                span=TimeRange(start, start + int(duration_h * 3600)),
                scope=EntityScope.REGION,
                cause=Cause.GOVERNMENT_ORDERED,
                severity=1.0,
                region_name=region.name,
                mobile_only=bool(rng.random() < 0.72),
                series_id=None,
                trigger_event_id=None,
            )

    # -- soft restrictions --------------------------------------------------------

    def _soft_restrictions(self, ctx: "_YearContext",
                           rng: np.random.Generator
                           ) -> Iterable[RestrictionEpisode]:
        """Throttling / service-ban episodes without full disconnection."""
        autocracy = 1.0 - ctx.profile.liberal_democracy
        mean = 0.8 * autocracy * (0.5 + 0.5 * ctx.capability)
        for _ in range(int(rng.poisson(mean))):
            day = utc(ctx.year, 1, 1) + int(rng.integers(0, 365)) * DAY
            duration_days = int(rng.integers(1, 30))
            techniques: Tuple[str, ...]
            roll = rng.random()
            if roll < 0.55:
                techniques = ("service-based",)
            elif roll < 0.8:
                techniques = ("throttling",)
            else:
                techniques = ("service-based", "throttling")
            yield RestrictionEpisode(
                episode_id=next(self._restriction_ids),
                country_iso2=ctx.country.iso2,
                span=TimeRange(day, day + duration_days * DAY),
                restrictions=techniques,
            )

    # -- helpers ---------------------------------------------------------------

    def _shutdown(self, ctx: "_YearContext", span: TimeRange, cause: Cause,
                  series_id: Optional[str],
                  extra_restrictions: Tuple[str, ...],
                  trigger: Optional[int] = None,
                  mobile_only: bool = False) -> GroundTruthDisruption:
        return GroundTruthDisruption(
            disruption_id=next(self._ids),
            country_iso2=ctx.country.iso2,
            span=span,
            scope=EntityScope.COUNTRY,
            cause=cause,
            severity=1.0,
            mobile_only=mobile_only,
            series_id=series_id,
            trigger_event_id=trigger,
            restrictions=("full-network", *extra_restrictions),
        )


@dataclass(frozen=True)
class _YearContext:
    country: Country
    year: int
    profile: CountryYearProfile
    capability: float


def _year_of(day_start_utc: int, ctx: _YearContext) -> int:
    """Calendar year (local) an event day belongs to."""
    local = day_start_utc + ctx.country.utc_offset.seconds
    return time.gmtime(local).tm_year
