"""Spontaneous outage processes.

Spontaneous (non-ordered) outages are generated per country as a Poisson
process whose rate scales with the country's infrastructure fragility — the
paper finds outages concentrate in low-GDP, under-invested countries (§5.1)
but occur nearly everywhere (150 of 155 countries saw at least one).

Unlike shutdowns, spontaneous outages have *no human fingerprints*: start
times are uniform over the day and week, durations are log-normal with a
~2-hour median (Fig 10) and are not round numbers, and recurrences follow
the memoryless exponential-gap law (median ~39 days in the paper, Fig 11).
Severity is partial more often than total — a cable cut or grid failure
rarely takes down every AS — which is what makes outages less visible in
all three IODA signals simultaneously (Fig 16).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, List, Tuple

import numpy as np

from repro.countries.registry import Country, CountryRegistry
from repro.rng import substream
from repro.signals.entities import EntityScope
from repro.timeutils.timestamps import TimeRange
from repro.topology.generator import WorldTopology
from repro.world.disruptions import Cause, GroundTruthDisruption

__all__ = ["SpontaneousOutageGenerator"]

#: Relative frequency of spontaneous causes.
_CAUSES: Tuple[Tuple[Cause, float], ...] = (
    (Cause.POWER_OUTAGE, 0.34),
    (Cause.CABLE_CUT, 0.26),
    (Cause.MISCONFIGURATION, 0.22),
    (Cause.NATURAL_DISASTER, 0.10),
    (Cause.DDOS, 0.08),
)


@dataclass(frozen=True)
class OutageRates:
    """Tunable rate parameters (events per country per year)."""

    base_rate: float = 0.30
    fragility_rate: float = 2.8
    rate_sigma: float = 0.80
    duration_median_hours: float = 2.0
    duration_sigma: float = 1.1


class SpontaneousOutageGenerator:
    """Draws spontaneous country-level outages for every country."""

    def __init__(self, seed: int, registry: CountryRegistry,
                 topology: WorldTopology,
                 rates: OutageRates | None = None):
        self._seed = seed
        self._registry = registry
        self._topology = topology
        self._rates = rates or OutageRates()
        self._ids = itertools.count(500_000)

    def generate(self, period: TimeRange) -> List[GroundTruthDisruption]:
        """All spontaneous outages within ``period``."""
        outages: List[GroundTruthDisruption] = []
        for country in self._registry:
            outages.extend(self._country_outages(country, period))
        outages.sort(key=lambda d: (d.country_iso2, d.span.start))
        return outages

    # -- internals ------------------------------------------------------------

    def _country_outages(self, country: Country, period: TimeRange
                         ) -> Iterable[GroundTruthDisruption]:
        rng = substream(self._seed, "outages", country.iso2)
        years = period.duration / (365.25 * 24 * 3600)
        rate = (self._rates.base_rate
                + self._rates.fragility_rate * country.fragility_hint ** 1.6)
        rate *= float(rng.lognormal(0.0, self._rates.rate_sigma))
        n_events = int(rng.poisson(rate * years))
        for _ in range(n_events):
            start = int(period.start + rng.integers(0, period.duration))
            duration_s = int(rng.lognormal(
                np.log(self._rates.duration_median_hours * 3600),
                self._rates.duration_sigma))
            duration_s = max(600, duration_s)
            severity = self._severity(country, rng)
            cause = self._cause(rng)
            yield GroundTruthDisruption(
                disruption_id=next(self._ids),
                country_iso2=country.iso2,
                span=TimeRange(start, start + duration_s),
                scope=EntityScope.COUNTRY,
                cause=cause,
                severity=severity,
                mobile_only=False,
                series_id=None,
                trigger_event_id=None,
                restrictions=(),
            )

    @staticmethod
    def _severity(country: Country, rng: np.random.Generator) -> float:
        """Partial failures dominate; total blackouts are the minority.

        More centralized (fragile, state-dominated) networks fail harder:
        a single grid or incumbent failure can take the whole country down.
        """
        centralization = 0.3 + 0.5 * country.fragility_hint
        if rng.random() < 0.2 * centralization + 0.08:
            return 1.0
        return float(np.clip(rng.beta(2.2, 2.4), 0.30, 0.99))

    @staticmethod
    def _cause(rng: np.random.Generator) -> Cause:
        roll = rng.random()
        cumulative = 0.0
        for cause, weight in _CAUSES:
            cumulative += weight
            if roll < cumulative:
                return cause
        return _CAUSES[-1][0]
