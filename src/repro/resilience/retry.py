"""Retry with exponential backoff and seeded jitter.

:class:`RetryPolicy` describes the budget and the backoff curve; the
schedule of delays for a given operation key is **deterministic** —
jitter is drawn from the repro RNG substreams
(:func:`repro.rng.substream` over ``(policy seed, key, attempt)``), so
the same policy produces the same schedule on every backend and every
run.  That determinism is load-bearing: retry timing must never become
a hidden source of nondeterminism in a pipeline whose headline guarantee
is byte-identical output.

Use the imperative form around a closure::

    records = call_with_retry(
        lambda: pipeline.investigate_country(iso2, windows, period),
        policy=policy, key=iso2, site="curate.country", breaker=breaker)

or the decorator form for a stable call site::

    @retry(policy=RetryPolicy(max_retries=4), site="kio.fetch")
    def fetch_snapshot(year): ...

Each attempt runs under a :func:`repro.resilience.faults.fault_scope`,
which is how the fault injector keys its deterministic decisions; only
:class:`~repro.errors.TransientSourceError` (and subclasses) are
retried — programming errors propagate immediately.  Attempt counts,
exhaustions, and backoff seconds are recorded into the active
observability session's metrics registry.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple, TypeVar

from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    RetriesExhaustedError,
    TransientSourceError,
)
from repro.obs.metrics import ATTEMPT_BUCKETS
from repro.obs.runtime import current
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import fault_scope
from repro.rng import substream

__all__ = ["RetryPolicy", "call_with_retry", "retry"]

T = TypeVar("T")


@dataclass(frozen=True, kw_only=True)
class RetryPolicy:
    """Budget and backoff shape for retried source operations."""

    #: Retries after the first attempt (total attempts = max_retries + 1).
    max_retries: int = 3
    #: First backoff delay, seconds.
    base_delay: float = 0.01
    #: Exponential growth factor between attempts.
    multiplier: float = 2.0
    #: Ceiling on any single delay, seconds.
    max_delay: float = 1.0
    #: Multiplicative jitter span: each delay is scaled by a factor drawn
    #: uniformly from [1, 1 + jitter] out of the policy's RNG substream.
    jitter: float = 0.5
    #: Seed of the jitter substream (independent of the scenario seed).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0: {self.max_retries}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1: {self.multiplier}")
        if self.jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0: {self.jitter}")

    def delays(self, key: str) -> Tuple[float, ...]:
        """The full backoff schedule for operation ``key``, seconds.

        Deterministic: same (policy, key) -> same schedule, any backend.

        >>> policy = RetryPolicy(seed=7)
        >>> policy.delays("SY") == policy.delays("SY")
        True
        >>> policy.delays("SY") != policy.delays("IR")
        True
        """
        schedule = []
        for attempt in range(self.max_retries):
            base = min(self.max_delay,
                       self.base_delay * self.multiplier ** attempt)
            rng = substream(self.seed, "retry-backoff", key, attempt)
            schedule.append(base * (1.0 + self.jitter * float(rng.random())))
        return tuple(schedule)


def call_with_retry(fn: Callable[[], T], *, policy: RetryPolicy,
                    key: str, site: str,
                    breaker: Optional[CircuitBreaker] = None,
                    sleeper: Callable[[float], None] = time.sleep) -> T:
    """Run ``fn`` under the retry policy, faults scoped per attempt.

    Raises :class:`CircuitOpenError` without calling ``fn`` when the
    breaker rejects the source, and :class:`RetriesExhaustedError` (from
    the last transient failure) when the budget runs out.
    """
    metrics = current().metrics
    delays = policy.delays(key)
    attempt = 0
    while True:
        if breaker is not None and not breaker.allow():
            raise CircuitOpenError(
                f"circuit for {key!r} is open at {site}; skipping call")
        try:
            with fault_scope(key, attempt):
                result = fn()
        except TransientSourceError as exc:
            if breaker is not None:
                breaker.record_failure()
            metrics.counter("resilience.retry.failures", site=site).inc()
            if attempt >= policy.max_retries:
                metrics.counter("resilience.retry.exhausted",
                                site=site).inc()
                raise RetriesExhaustedError(
                    f"{site} failed for {key!r} after {attempt + 1} "
                    f"attempts: {exc}") from exc
            delay = delays[attempt]
            metrics.histogram("resilience.retry.backoff_seconds",
                              site=site).observe(delay)
            sleeper(delay)
            attempt += 1
            continue
        if breaker is not None:
            breaker.record_success()
        metrics.histogram("resilience.retry.attempts",
                          buckets=ATTEMPT_BUCKETS,
                          site=site).observe(attempt + 1)
        return result


def retry(*, policy: Optional[RetryPolicy] = None, site: Optional[str] = None,
          key: Optional[Callable[..., str] | str] = None,
          breaker: Optional[CircuitBreaker] = None,
          sleeper: Callable[[float], None] = time.sleep
          ) -> Callable[[Callable[..., T]], Callable[..., T]]:
    """Decorator form of :func:`call_with_retry`.

    ``key`` may be a static string or a callable over the wrapped
    function's arguments (e.g. ``key=lambda iso2, *a, **k: iso2``); it
    defaults to the function's qualified name, as does ``site``.
    """
    applied_policy = policy if policy is not None else RetryPolicy()

    def decorate(fn: Callable[..., T]) -> Callable[..., T]:
        fn_site = site if site is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> T:
            if callable(key):
                fn_key = str(key(*args, **kwargs))
            else:
                fn_key = key if key is not None else fn.__qualname__
            return call_with_retry(
                lambda: fn(*args, **kwargs), policy=applied_policy,
                key=fn_key, site=fn_site, breaker=breaker, sleeper=sleeper)

        return wrapper

    return decorate
