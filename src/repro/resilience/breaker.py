"""Per-source circuit breakers.

A :class:`CircuitBreaker` guards one data source (one country's platform
feed, one dataset loader) with the classic three-state machine:

- **closed** — calls flow; consecutive transient failures are counted.
- **open** — after ``failure_threshold`` consecutive failures the
  breaker trips and :meth:`allow` rejects calls outright, so a dead
  source stops burning retry budget for everyone behind it.
- **half-open** — after ``cooldown_calls`` rejected calls the breaker
  lets probes through again; ``half_open_successes`` consecutive
  successes close it, any failure re-opens it.

Cooldown is counted in *rejected calls* rather than wall-clock seconds:
the pipeline is a deterministic simulation, and a time-based cooldown
would make breaker trajectories (and therefore quarantine decisions)
depend on host speed.  Call-count cooldown keeps the whole resilience
layer a pure function of the fault plan.

State transitions are counted into the active observability session
(``resilience.breaker.opened`` / ``.half_open`` / ``.closed`` /
``.rejected``, labelled by source), so a run journal shows exactly when
each source tripped and recovered.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError
from repro.obs.runtime import current

__all__ = ["BreakerPolicy", "BreakerState", "CircuitBreaker",
           "BreakerBoard"]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True, kw_only=True)
class BreakerPolicy:
    """Thresholds for every breaker of one run."""

    #: Consecutive transient failures that trip the breaker.
    failure_threshold: int = 3
    #: Rejected calls an open breaker absorbs before going half-open.
    cooldown_calls: int = 2
    #: Consecutive half-open successes that close the breaker again.
    half_open_successes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1: {self.failure_threshold}")
        if self.cooldown_calls < 1:
            raise ConfigurationError(
                f"cooldown_calls must be >= 1: {self.cooldown_calls}")
        if self.half_open_successes < 1:
            raise ConfigurationError(
                f"half_open_successes must be >= 1: "
                f"{self.half_open_successes}")


class CircuitBreaker:
    """The state machine guarding one source; thread-safe."""

    def __init__(self, policy: BreakerPolicy | None = None, *,
                 source: str = ""):
        self._policy = policy or BreakerPolicy()
        self._source = source
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._rejections = 0
        self._probe_successes = 0

    @property
    def state(self) -> BreakerState:
        return self._state

    @property
    def source(self) -> str:
        return self._source

    def allow(self) -> bool:
        """Whether the next call may proceed (open breakers reject)."""
        with self._lock:
            if self._state is not BreakerState.OPEN:
                return True
            self._rejections += 1
            if self._rejections >= self._policy.cooldown_calls:
                self._transition(BreakerState.HALF_OPEN)
                return True
            current().metrics.counter("resilience.breaker.rejected",
                                      source=self._source).inc()
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state is BreakerState.HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= \
                        self._policy.half_open_successes:
                    self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state is BreakerState.HALF_OPEN:
                self._transition(BreakerState.OPEN)
            elif (self._state is BreakerState.CLOSED
                    and self._consecutive_failures
                    >= self._policy.failure_threshold):
                self._transition(BreakerState.OPEN)

    def _transition(self, state: BreakerState) -> None:
        # Lock held by the caller.
        self._state = state
        self._rejections = 0
        self._probe_successes = 0
        if state is BreakerState.OPEN:
            self._consecutive_failures = 0
        name = {BreakerState.OPEN: "resilience.breaker.opened",
                BreakerState.HALF_OPEN: "resilience.breaker.half_open",
                BreakerState.CLOSED: "resilience.breaker.closed"}[state]
        current().metrics.counter(name, source=self._source).inc()


class BreakerBoard:
    """Creates and holds one breaker per source name."""

    def __init__(self, policy: BreakerPolicy | None = None):
        self._policy = policy or BreakerPolicy()
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}

    def get(self, source: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(source)
            if breaker is None:
                breaker = self._breakers[source] = CircuitBreaker(
                    self._policy, source=source)
            return breaker

    def open_sources(self) -> list[str]:
        """Sources currently tripped (open), sorted."""
        with self._lock:
            return sorted(name for name, b in self._breakers.items()
                          if b.state is BreakerState.OPEN)
