"""Deterministic fault injection for the pipeline's data sources.

Real feeds fail: IODA API queries time out, KIO snapshot downloads come
back truncated, dataset exports 500 mid-page — and measurement platforms
degrade exactly when the events of interest happen.  A
:class:`FaultPlan` makes those failures *reproducible*: instrumented
sites (:func:`maybe_fault` calls inside
:meth:`repro.ioda.platform.IODAPlatform.signal`,
:meth:`repro.ioda.api.IODAClient.get_events`, and the
:mod:`repro.datasets` source loaders) consult the active plan and raise
a typed :class:`~repro.errors.TransientSourceError` when the plan says
so.

Determinism is the whole point.  Whether a given call faults is a *pure
function* of ``(plan seed, site, operation key, attempt, call index)``:

- the **operation key** and **attempt** come from the ambient
  :func:`fault_scope` the retry machinery opens around each attempt of a
  unit of work (one country's curation, one dataset load);
- the **call index** counts ``maybe_fault`` calls within that scope —
  a deterministic sequence, because each attempt runs serial code.

Nothing depends on wall clocks, thread scheduling, or global counters
shared across units of work, so the same plan injects the same faults
on the serial, thread, and process backends — which is what lets the
test suite assert that a fully recovered fault-injected run is
byte-identical to a fault-free one.

Plans parse from a compact CLI spec (``repro run --inject-faults SPEC``)
of ``key=value`` clauses joined by ``;``::

    rate=0.2;seed=99;kinds=error+timeout   # 20% of calls fault
    fail_first=2                           # first 2 attempts always fault
    permanent=SY+IR                        # these keys never succeed

``fail_first`` faults are guaranteed recoverable by any retry budget of
at least that many retries; ``permanent`` keys exhaust every budget and
exercise the breaker/quarantine path.
"""

from __future__ import annotations

import contextlib
import enum
import threading
from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import (
    ConfigurationError,
    CorruptPageError,
    SourceTimeoutError,
    TransientSourceError,
)
from repro.obs.runtime import current
from repro.rng import derive_seed

__all__ = [
    "FaultKind",
    "FaultPlan",
    "FaultScope",
    "active_plan",
    "fault_scope",
    "inject",
    "maybe_fault",
]


class FaultKind(enum.Enum):
    """What kind of failure an injected fault simulates."""

    ERROR = "error"        # generic transient 5xx-style failure
    TIMEOUT = "timeout"    # deadline exceeded
    CORRUPT = "corrupt"    # response received but failed validation

    @property
    def exception(self) -> type:
        return _KIND_EXCEPTIONS[self]


_KIND_EXCEPTIONS = {
    FaultKind.ERROR: TransientSourceError,
    FaultKind.TIMEOUT: SourceTimeoutError,
    FaultKind.CORRUPT: CorruptPageError,
}

_ALL_KINDS: Tuple[FaultKind, ...] = tuple(FaultKind)


@dataclass(frozen=True, kw_only=True)
class FaultPlan:
    """A seeded, declarative description of which calls fail and how.

    Frozen and built from primitives only, so it pickles across process
    workers and fingerprints canonically.  The plan holds no mutable
    state; all call accounting lives in the ambient :class:`FaultScope`.
    """

    #: Probability any eligible call faults (drawn per call, seeded).
    rate: float = 0.0
    #: The first N attempts of every operation fault deterministically —
    #: recoverable by any retry budget >= N, which is what the
    #: byte-identity chaos tests rely on.
    fail_first: int = 0
    #: Operation keys (country ISO codes, dataset source names) whose
    #: every attempt faults — the quarantine/breaker exercise.
    permanent: Tuple[str, ...] = ()
    #: Fault kinds drawn from (round-robin for deterministic modes).
    kinds: Tuple[FaultKind, ...] = _ALL_KINDS
    #: Seed of the fault decision stream (independent of the scenario
    #: seed, so injection never perturbs world generation).
    seed: int = 0
    #: Restrict injection to these sites (empty = all sites).
    sites: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(
                f"fault rate must be in [0, 1]: {self.rate}")
        if self.fail_first < 0:
            raise ConfigurationError(
                f"fail_first must be >= 0: {self.fail_first}")
        if not self.kinds:
            raise ConfigurationError("a FaultPlan needs at least one kind")

    @property
    def empty(self) -> bool:
        """Whether the plan can never inject anything."""
        return (self.rate <= 0.0 and self.fail_first == 0
                and not self.permanent)

    # -- parsing -----------------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from the CLI's ``--inject-faults`` spec string.

        Clauses are ``key=value`` pairs joined by ``;``; list values use
        ``+`` as the separator.  Recognized keys: ``rate``,
        ``fail_first``, ``permanent``, ``kinds``, ``seed``, ``sites``.

        >>> FaultPlan.parse("fail_first=2;seed=7").fail_first
        2
        >>> FaultPlan.parse("permanent=SY+IR").permanent
        ('IR', 'SY')
        """
        kwargs: dict = {}
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            key, sep, value = clause.partition("=")
            key = key.strip()
            value = value.strip()
            if not sep or not value:
                raise ConfigurationError(
                    f"malformed fault clause {clause!r}; expected key=value")
            if key == "rate":
                kwargs["rate"] = float(value)
            elif key == "fail_first":
                kwargs["fail_first"] = int(value)
            elif key == "seed":
                kwargs["seed"] = int(value)
            elif key == "permanent":
                kwargs["permanent"] = tuple(sorted(
                    part.strip().upper()
                    for part in value.split("+") if part.strip()))
            elif key == "sites":
                kwargs["sites"] = tuple(sorted(
                    part.strip() for part in value.split("+")
                    if part.strip()))
            elif key == "kinds":
                try:
                    kwargs["kinds"] = tuple(
                        FaultKind(part.strip())
                        for part in value.split("+") if part.strip())
                except ValueError as exc:
                    raise ConfigurationError(
                        f"unknown fault kind in {value!r}; expected "
                        f"{'/'.join(k.value for k in FaultKind)}") from exc
            else:
                raise ConfigurationError(
                    f"unknown fault clause key {key!r}")
        return cls(**kwargs)

    # -- the decision function ----------------------------------------------------

    def decide(self, site: str, key: str, attempt: int,
               call_index: int) -> Optional[FaultKind]:
        """Whether call ``call_index`` of ``attempt`` of ``(site, key)``
        faults, and with what kind.  Pure: no state, no clock.
        """
        if self.sites and site not in self.sites:
            return None
        if key.upper() in self.permanent:
            return self.kinds[attempt % len(self.kinds)]
        if attempt < self.fail_first and call_index == 0:
            return self.kinds[attempt % len(self.kinds)]
        if self.rate > 0.0:
            rng = np.random.Generator(np.random.PCG64(derive_seed(
                self.seed, "fault", site, key, attempt, call_index)))
            if rng.random() < self.rate:
                return self.kinds[int(rng.integers(len(self.kinds)))]
        return None


@dataclass
class FaultScope:
    """One attempt of one unit of work, as seen by the injector."""

    key: str
    attempt: int
    calls: int = field(default=0)

    def next_index(self) -> int:
        index = self.calls
        self.calls += 1
        return index


# The active plan is process-global (mirroring repro.obs: pool threads
# must see the run's plan without inheriting context variables); the
# scope is thread-local because concurrent units of work each get their
# own attempt accounting.
_active_plan: Optional[FaultPlan] = None
_scopes = threading.local()


def active_plan() -> Optional[FaultPlan]:
    """The installed fault plan, or None outside any injection context."""
    return _active_plan


@contextlib.contextmanager
def inject(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Install ``plan`` for the ``with`` block (None/empty = no-op).

    Process workers re-install the plan locally; thread workers see the
    process-global automatically.
    """
    global _active_plan
    previous = _active_plan
    _active_plan = plan if plan is not None and not plan.empty else None
    try:
        yield _active_plan
    finally:
        _active_plan = previous


@contextlib.contextmanager
def fault_scope(key: str, attempt: int = 0) -> Iterator[FaultScope]:
    """Open the ambient scope one attempt of a unit of work runs under.

    Everything :func:`maybe_fault` needs — the operation key, the retry
    attempt, and the per-attempt call counter — lives here, so the
    decision sequence is identical however the work is scheduled.
    Scopes nest; the innermost wins.
    """
    scope = FaultScope(key=key, attempt=attempt)
    stack = getattr(_scopes, "stack", None)
    if stack is None:
        stack = _scopes.stack = []
    stack.append(scope)
    try:
        yield scope
    finally:
        stack.pop()


def current_scope() -> Optional[FaultScope]:
    """The innermost open fault scope on this thread (or None)."""
    stack = getattr(_scopes, "stack", None)
    return stack[-1] if stack else None


def maybe_fault(site: str, key: Optional[str] = None) -> None:
    """The injection site hook: raise if the active plan faults this call.

    With no plan installed this is one global read — instrumented hot
    paths pay nothing in normal runs.  ``key`` is a fallback operation
    key for call sites used outside any retry loop (e.g. a bare
    :meth:`IODAClient.get_events` call); when a :func:`fault_scope` is
    open it takes precedence, keeping pipeline injection deterministic
    across backends.
    """
    plan = _active_plan
    if plan is None:
        return
    scope = current_scope()
    if scope is None:
        if key is None:
            return
        scope = FaultScope(key=key, attempt=0)
    kind = plan.decide(site, scope.key, scope.attempt, scope.next_index())
    if kind is None:
        return
    metrics = current().metrics
    metrics.counter("resilience.faults", site=site, kind=kind.value).inc()
    raise kind.exception(
        f"injected {kind.value} fault at {site} "
        f"(key={scope.key}, attempt={scope.attempt})")
