"""repro.resilience — surviving the pipeline's own data sources.

The paper's pipeline is only as good as its feeds, and real feeds fail —
often exactly when the events of interest happen.  This package makes
failure a first-class, *deterministic* part of the system:

- :mod:`repro.resilience.faults` — a seeded :class:`FaultPlan` injects
  transient errors, timeouts, and corrupt pages into the instrumented
  sites (IODA platform/client queries, dataset loaders) as a pure
  function of the plan, so chaos runs reproduce exactly on every
  backend.
- :mod:`repro.resilience.retry` — :class:`RetryPolicy` /
  :func:`call_with_retry` / the :func:`retry` decorator: exponential
  backoff whose jitter comes from the repro RNG substreams.
- :mod:`repro.resilience.breaker` — per-source :class:`CircuitBreaker`
  with call-count cooldown (closed → open → half-open → closed).
- :mod:`repro.resilience.config` — :class:`ResilienceConfig`, the knob
  bundle `repro.api.run(..., faults=..., retry_policy=...)` and the CLI
  (`run --inject-faults/--max-retries/--fail-fast/--degrade`) build.

The headline invariants, enforced by tests/test_resilience_exec.py:
a fault-injected run whose every fault is retriable within policy is
**byte-identical** to a fault-free run on the serial, thread, and
process backends; a permanently failing country is **quarantined** —
the merge proceeds with the survivors and the run reports
``degraded=True`` plus the quarantined countries in
:class:`~repro.exec.ExecStats` and the obs journal.
"""

from repro.resilience.breaker import (
    BreakerBoard,
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
)
from repro.resilience.config import ResilienceConfig
from repro.resilience.faults import (
    FaultKind,
    FaultPlan,
    fault_scope,
    inject,
    maybe_fault,
)
from repro.resilience.retry import RetryPolicy, call_with_retry, retry

__all__ = [
    "BreakerBoard",
    "BreakerPolicy",
    "BreakerState",
    "CircuitBreaker",
    "FaultKind",
    "FaultPlan",
    "ResilienceConfig",
    "RetryPolicy",
    "call_with_retry",
    "fault_scope",
    "inject",
    "maybe_fault",
    "retry",
]
