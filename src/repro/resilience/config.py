"""The one knob bundle the pipeline layers thread through.

:class:`ResilienceConfig` carries everything the executor and the
dataset stage need to absorb source faults: the (optional) fault plan,
the retry policy, the breaker policy, and the failure mode.  It is a
frozen dataclass of primitives so it pickles across process workers and
fingerprints canonically — though note the executor deliberately
*bypasses* the shard cache whenever faults are injected, so chaos runs
can never plant (or be served) shard payloads that would mask the very
failures being exercised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import ConfigurationError
from repro.resilience.breaker import BreakerPolicy
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import RetryPolicy

__all__ = ["ResilienceConfig"]


@dataclass(frozen=True, kw_only=True)
class ResilienceConfig:
    """How a run injects, absorbs, and reports data-source faults."""

    #: Fault plan (or CLI spec string) to inject; None = no injection,
    #: but retry/breaker still guard real (non-injected) transient
    #: failures.
    faults: Optional[Union[FaultPlan, str]] = None
    retry: RetryPolicy = RetryPolicy()
    breaker: BreakerPolicy = BreakerPolicy()
    #: True: the first exhausted source aborts the run.  False (the
    #: default): exhausted countries are quarantined, the merge proceeds
    #: with the survivors, and the run reports ``degraded=True``.
    fail_fast: bool = False

    def __post_init__(self) -> None:
        if isinstance(self.faults, str):
            object.__setattr__(self, "faults",
                               FaultPlan.parse(self.faults))
        if self.faults is not None and not isinstance(self.faults,
                                                      FaultPlan):
            raise ConfigurationError(
                f"faults must be a FaultPlan or spec string: "
                f"{self.faults!r}")

    @property
    def fault_plan(self) -> Optional[FaultPlan]:
        """The parsed plan, or None when nothing would ever inject."""
        plan = self.faults
        if isinstance(plan, FaultPlan) and not plan.empty:
            return plan
        return None
