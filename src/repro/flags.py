"""Runtime escape hatches.

The detection/curation hot path is columnar: exact vectorized
sliding-window medians (:func:`repro.stats.rolling.trailing_median`),
array-based alert grouping, and the table-driven Active Probing round
simulation.  The per-bin scalar implementations remain in the tree as
the executable specification, and setting ``REPRO_SCALAR_DETECT=1``
routes every detector back through them.

The two paths are bitwise-identical by construction and by test
(:mod:`tests.test_columnar_detect`), so the flag never changes results
— it exists to *prove* that, to debug the vectorized code against its
reference, and to measure the speedup honestly
(``benchmarks/test_bench_detect.py``).

The flag is read at call time, not import time, so tests can flip it
with ``monkeypatch.setenv``; worker processes inherit the parent's
environment, so a sharded run is uniformly scalar or uniformly
vectorized across every backend.
"""

from __future__ import annotations

import os

__all__ = ["SCALAR_DETECT_ENV", "scalar_detect"]

#: Environment variable selecting the scalar reference detectors.
SCALAR_DETECT_ENV = "REPRO_SCALAR_DETECT"


def scalar_detect() -> bool:
    """Whether the scalar reference detection path is selected."""
    return os.environ.get(SCALAR_DETECT_ENV, "") not in ("", "0")
