"""Unique-source counting: the Telescope signal.

Two paths produce the per-bin unique-source-IP series:

- :func:`unique_sources_from_packets` — the reference path: bin filtered
  packets and count distinct sources per 5-minute bin.
- :func:`unique_source_series` — the fleet-scale statistical path: draws
  per-bin counts from the same compound distribution the packet path
  converges to (Poisson arrivals with diurnal modulation and gamma
  overdispersion, scaled by the ground-truth up fraction).  Tests assert
  both paths agree in distribution on identical ground truth.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import SignalError
from repro.signals.series import TimeSeries
from repro.telescope.packets import TelescopePacket, diurnal_factors
from repro.timeutils.timestamps import FIVE_MINUTES, TimeRange, bin_floor

__all__ = ["unique_sources_from_packets", "unique_source_series"]


def unique_sources_from_packets(
        packets: Iterable[TelescopePacket], window: TimeRange,
        bin_width: int = FIVE_MINUTES) -> TimeSeries:
    """Count distinct source IPs per bin over ``window``."""
    start = bin_floor(window.start, bin_width)
    n_bins = -(-(window.end - start) // bin_width)
    sources = [set() for _ in range(n_bins)]
    for packet in packets:
        if not window.start <= packet.time < window.end:
            continue
        sources[(packet.time - start) // bin_width].add(packet.source.value)
    values = np.array([len(s) for s in sources], dtype=np.float64)
    return TimeSeries(start, bin_width, values)


def unique_source_series(
        window: TimeRange,
        intensity_per_bin: float,
        up_fraction: np.ndarray,
        utc_offset_seconds: int,
        rng: np.random.Generator,
        overdispersion: float = 4.0,
        residual_noise: float = 0.6,
        bin_width: int = FIVE_MINUTES) -> TimeSeries:
    """Vectorized telescope series.

    Per bin, the unique-source count is ``Poisson(G * lambda)`` where
    ``lambda = intensity * diurnal * up_fraction`` and ``G ~ Gamma(k, 1/k)``
    injects the bursty overdispersion real telescope data shows.  A small
    ``residual_noise`` floor models spoofed/mislocated packets that survive
    filtering even during a total blackout — the telescope signal of a shut
    country does not go to exactly zero.
    """
    start = bin_floor(window.start, bin_width)
    n_bins = -(-(window.end - start) // bin_width)
    up = np.asarray(up_fraction, dtype=np.float64)
    if up.shape != (n_bins,):
        raise SignalError(
            f"up_fraction has shape {up.shape}, expected ({n_bins},)")
    if intensity_per_bin <= 0:
        raise SignalError(
            f"intensity must be positive: {intensity_per_bin}")

    bin_starts = start + bin_width * np.arange(n_bins)
    diurnal = diurnal_factors(bin_starts, utc_offset_seconds)
    lam = intensity_per_bin * diurnal * np.clip(up, 0.0, 1.0)
    lam = lam + residual_noise
    gamma = rng.gamma(shape=overdispersion, scale=1.0 / overdispersion,
                      size=n_bins)
    values = rng.poisson(lam * gamma).astype(np.float64)
    return TimeSeries(start, bin_width, values)
