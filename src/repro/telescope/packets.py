"""Telescope packets and the detailed IBR generator.

The detailed path generates individual unsolicited packets (scans, backscatter,
misconfiguration traffic) from a country's address space, including a share
of spoofed and bogon traffic the filters must remove.  It is used at small
scale — unit tests, examples, and the single-event Figure 1 bench — while
fleet-scale simulation uses the statistical counter in
:mod:`repro.telescope.counter`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.net.ipv4 import IPv4Address, Prefix
from repro.timeutils.timestamps import DAY, HOUR, TimeRange

__all__ = ["PacketKind", "TelescopePacket", "IBRGenerator",
           "diurnal_factor", "diurnal_factors"]


class PacketKind(enum.Enum):
    """Coarse class of unsolicited traffic."""

    SCAN = "scan"
    BACKSCATTER = "backscatter"
    MISCONFIGURATION = "misconfiguration"
    SPOOFED = "spoofed"


@dataclass(frozen=True, slots=True)
class TelescopePacket:
    """One packet as captured by the telescope."""

    time: int
    source: IPv4Address
    ttl: int
    kind: PacketKind

    @property
    def likely_spoofed(self) -> bool:
        """Ground-truth spoofing flag (filters must *infer* this)."""
        return self.kind is PacketKind.SPOOFED


def diurnal_factor(ts: int, utc_offset_seconds: int,
                   amplitude: float = 0.35) -> float:
    """Relative IBR intensity at a local time of day.

    IBR peaks in the local afternoon (machines on) and troughs pre-dawn.
    """
    local_seconds = (ts + utc_offset_seconds) % DAY
    phase = 2.0 * np.pi * (local_seconds - 15 * HOUR) / DAY
    return 1.0 + amplitude * float(np.cos(phase))


def diurnal_factors(bin_starts: np.ndarray, utc_offset_seconds: int,
                    amplitude: float = 0.35) -> np.ndarray:
    """:func:`diurnal_factor` over an array of timestamps, vectorized.

    Bit-identical to the scalar path element by element: the integer
    modulo is exact, the float expression applies the same operations
    in the same order, and numpy's cos ufunc produces the same values
    through its array and scalar loops (tests assert exact equality).
    """
    local_seconds = (np.asarray(bin_starts, dtype=np.int64)
                     + utc_offset_seconds) % DAY
    phase = 2.0 * np.pi * (local_seconds - 15 * HOUR) / DAY
    return 1.0 + amplitude * np.cos(phase)


class IBRGenerator:
    """Generates packet-level IBR from a set of source prefixes."""

    def __init__(self, prefixes: Sequence[Prefix], intensity_per_bin: float,
                 utc_offset_seconds: int, rng: np.random.Generator,
                 spoofed_fraction: float = 0.08):
        self._prefixes = list(prefixes)
        self._intensity = intensity_per_bin
        self._offset = utc_offset_seconds
        self._rng = rng
        self._spoofed_fraction = spoofed_fraction
        self._total24 = sum(p.num_slash24s for p in self._prefixes)

    def packets(self, window: TimeRange, up_fraction: np.ndarray,
                bin_width: int = 300) -> Iterator[TelescopePacket]:
        """Yield packets for each bin of ``window``.

        ``up_fraction[i]`` scales the emitting address population for bin
        ``i``; spoofed packets are injected independently of the country's
        state (a spoofer elsewhere can use any source address — precisely
        why the filters matter).
        """
        n_bins = -(-(window.end - window.start) // bin_width)
        up = np.asarray(up_fraction, dtype=np.float64)
        factors = diurnal_factors(
            window.start + bin_width * np.arange(n_bins), self._offset)
        for index in range(n_bins):
            bin_start = window.start + index * bin_width
            lam = self._intensity * factors[index] \
                * max(0.0, min(1.0, up[index]))
            n_genuine = int(self._rng.poisson(lam))
            n_spoofed = int(self._rng.poisson(
                self._intensity * self._spoofed_fraction))
            yield from self._genuine(bin_start, bin_width, n_genuine,
                                     up[index])
            yield from self._spoofed(bin_start, bin_width, n_spoofed)

    # -- internals -------------------------------------------------------------

    def _genuine(self, bin_start: int, bin_width: int, count: int,
                 up_fraction: float) -> Iterator[TelescopePacket]:
        kinds = [PacketKind.SCAN, PacketKind.BACKSCATTER,
                 PacketKind.MISCONFIGURATION]
        for _ in range(count):
            source = self._random_source(up_fraction)
            if source is None:
                continue
            yield TelescopePacket(
                time=bin_start + int(self._rng.integers(0, bin_width)),
                source=source,
                ttl=int(self._rng.integers(32, 120)),
                kind=kinds[int(self._rng.integers(0, len(kinds)))],
            )

    def _spoofed(self, bin_start: int, bin_width: int,
                 count: int) -> Iterator[TelescopePacket]:
        for _ in range(count):
            yield TelescopePacket(
                time=bin_start + int(self._rng.integers(0, bin_width)),
                source=IPv4Address(int(self._rng.integers(0, 2 ** 32))),
                # Spoofing tools overwhelmingly leave pathological TTLs.
                ttl=int(self._rng.choice([255, 254, 1, 2])),
                kind=PacketKind.SPOOFED,
            )

    def _random_source(self, up_fraction: float) -> IPv4Address | None:
        """An address from the reachable (address-ordered) share of the
        prefixes, or None if nothing is up."""
        reachable24 = int(self._total24 * max(0.0, min(1.0, up_fraction)))
        if reachable24 == 0:
            return None
        pick = int(self._rng.integers(0, reachable24))
        for prefix in self._prefixes:
            if pick < prefix.num_slash24s:
                base = prefix.network + pick * 256
                return IPv4Address(base + int(self._rng.integers(1, 255)))
            pick -= prefix.num_slash24s
        return None
