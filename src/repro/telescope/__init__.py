"""Network telescope substrate.

IODA's Telescope signal counts unique source IPs per 5-minute bin in the
traffic arriving at an unsolicited-traffic telescope (UCSD, later Merit),
after anti-spoofing and noise filtering (§3.1.1).  Internet background
radiation (IBR) from a country tracks how much of that country is up, with
a strong diurnal cycle and high variance — hence the telescope's unusually
low 25% alert threshold.

- :mod:`repro.telescope.packets` — packet records and the detailed IBR
  generator used in tests, examples and the Figure 1 bench.
- :mod:`repro.telescope.filters` — anti-spoofing heuristics and noise
  filters.
- :mod:`repro.telescope.counter` — unique-source counting: the reference
  packet path and the statistically equivalent vectorized path.
"""

from repro.telescope.packets import IBRGenerator, TelescopePacket
from repro.telescope.filters import FilterPipeline, default_filters
from repro.telescope.counter import (
    unique_sources_from_packets,
    unique_source_series,
)
from repro.telescope.campaigns import (
    Campaign,
    CampaignSchedule,
    apply_campaigns,
    campaign_suppression_mask,
)

__all__ = [
    "IBRGenerator",
    "TelescopePacket",
    "FilterPipeline",
    "default_filters",
    "unique_sources_from_packets",
    "unique_source_series",
    "Campaign",
    "CampaignSchedule",
    "apply_campaigns",
    "campaign_suppression_mask",
]
