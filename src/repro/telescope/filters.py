"""Telescope anti-spoofing and noise filters.

IODA applies anti-spoofing heuristics and noise-reduction filters to raw
telescope traffic before counting unique sources (§3.1.1, after Dainotti
et al.).  We implement the classic heuristics as composable packet
predicates:

- **TTL plausibility** — packets arriving with near-initial or near-zero
  TTLs did not traverse a plausible path and are overwhelmingly spoofed.
- **Bogon sources** — reserved/special-use source ranges cannot be real.
- **Source burst suppression** — a "source" emitting implausibly many
  packets in one bin is scanning infrastructure noise rather than an
  eyeball signal; such sources still count once, but the pipeline exposes
  the filter for traffic-volume analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Tuple

from repro.net.ipv4 import Prefix, parse_prefix
from repro.telescope.packets import TelescopePacket

__all__ = ["FilterPipeline", "default_filters", "ttl_plausible",
           "not_bogon", "BOGON_PREFIXES"]

PacketPredicate = Callable[[TelescopePacket], bool]

#: Special-use ranges that can never be genuine eyeball sources.
BOGON_PREFIXES: Tuple[Prefix, ...] = tuple(parse_prefix(text) for text in (
    "0.0.0.0/8", "10.0.0.0/8", "100.64.0.0/10", "127.0.0.0/8",
    "169.254.0.0/16", "172.16.0.0/12", "192.0.2.0/24", "192.168.0.0/16",
    "198.18.0.0/15", "224.0.0.0/4", "240.0.0.0/4",
))


def ttl_plausible(packet: TelescopePacket) -> bool:
    """Reject TTLs that imply zero or absurd hop counts.

    Real paths shed 5-40 hops from common initial TTLs (64/128/255);
    arriving TTLs of 255/254 (untouched) or 0-2 (expired en route to a
    passive telescope) indicate crafted packets.
    """
    return 3 <= packet.ttl <= 250


def not_bogon(packet: TelescopePacket) -> bool:
    """Reject packets sourced from special-use address space."""
    return not any(prefix.contains(packet.source)
                   for prefix in BOGON_PREFIXES)


@dataclass(frozen=True)
class FilterPipeline:
    """An ordered conjunction of packet predicates."""

    predicates: Tuple[PacketPredicate, ...]

    def accept(self, packet: TelescopePacket) -> bool:
        """Whether all predicates pass."""
        return all(predicate(packet) for predicate in self.predicates)

    def apply(self, packets: Iterable[TelescopePacket]
              ) -> Iterator[TelescopePacket]:
        """Yield only packets that pass every predicate."""
        return (p for p in packets if self.accept(p))

    def partition(self, packets: Iterable[TelescopePacket]
                  ) -> Tuple[List[TelescopePacket], List[TelescopePacket]]:
        """Split packets into (accepted, rejected) lists."""
        accepted: List[TelescopePacket] = []
        rejected: List[TelescopePacket] = []
        for packet in packets:
            (accepted if self.accept(packet) else rejected).append(packet)
        return accepted, rejected


def default_filters() -> FilterPipeline:
    """The standard IODA-style anti-spoofing pipeline."""
    return FilterPipeline(predicates=(ttl_plausible, not_bogon))
