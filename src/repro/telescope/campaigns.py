"""Scanning campaigns: the telescope's positive-spike artifact.

Real telescope traffic is punctuated by global scanning campaigns — a
botnet or research scanner sweeps the IPv4 space and the unique-source
count jumps for hours.  Campaigns matter to outage work for a subtle
reason: a campaign *ending* looks like a drop.  If the baseline window of
the alert detector was inflated by a campaign, the return to normal can
cross the 25% threshold and masquerade as an outage.

:class:`CampaignSchedule` generates campaign intervals;
:func:`apply_campaigns` inflates a telescope series accordingly; and
:func:`campaign_suppression_mask` implements the standard mitigation —
flagging bins whose level is implausibly *above* the trailing median so
they can be excluded from baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import substream
from repro.signals.series import TimeSeries
from repro.stats.rolling import RollingMedian
from repro.timeutils.timestamps import HOUR, TimeRange

__all__ = ["Campaign", "CampaignSchedule", "apply_campaigns",
           "campaign_suppression_mask"]


@dataclass(frozen=True)
class Campaign:
    """One scanning campaign: a span and an intensity multiplier."""

    span: TimeRange
    multiplier: float

    def __post_init__(self) -> None:
        if self.multiplier <= 1.0:
            raise ConfigurationError(
                f"campaign multiplier must exceed 1: {self.multiplier}")


class CampaignSchedule:
    """Poisson-arriving campaigns over an observation period."""

    def __init__(self, seed: int, rate_per_week: float = 0.5,
                 mean_duration_hours: float = 8.0):
        if rate_per_week < 0:
            raise ConfigurationError(
                f"rate must be non-negative: {rate_per_week}")
        self._seed = seed
        self._rate = rate_per_week
        self._mean_hours = mean_duration_hours

    def campaigns(self, period: TimeRange) -> List[Campaign]:
        """All campaigns within ``period`` (deterministic per seed)."""
        rng = substream(self._seed, "campaigns", period.start)
        weeks = period.duration / (7 * 24 * 3600)
        n = int(rng.poisson(self._rate * weeks))
        campaigns = []
        for _ in range(n):
            start = int(period.start
                        + rng.integers(0, max(1, period.duration)))
            duration = max(HOUR, int(rng.exponential(
                self._mean_hours * 3600)))
            end = min(start + duration, period.end)
            if end <= start:
                continue
            campaigns.append(Campaign(
                span=TimeRange(start, end),
                multiplier=float(rng.uniform(1.5, 4.0))))
        campaigns.sort(key=lambda c: c.span.start)
        return campaigns


def apply_campaigns(series: TimeSeries,
                    campaigns: List[Campaign]) -> TimeSeries:
    """A copy of ``series`` with campaign inflation applied."""
    values = series.values.copy()
    for campaign in campaigns:
        clipped = campaign.span.intersect(series.span)
        if clipped is None:
            continue
        first = (clipped.start - series.start) // series.width
        last = -(-(clipped.end - series.start) // series.width)
        values[first:last] = np.round(
            values[first:last] * campaign.multiplier)
    return TimeSeries(series.start, series.width, values)


def campaign_suppression_mask(series: TimeSeries,
                              window_bins: int = 288,
                              spike_factor: float = 1.6) -> np.ndarray:
    """Boolean mask of bins that look campaign-inflated.

    A bin is flagged when it exceeds ``spike_factor`` times the trailing
    median — the mirror image of the drop detector.  Alert baselines
    computed with flagged bins excluded do not get dragged up by
    campaigns, so campaign *endings* stop looking like outages.
    """
    if window_bins <= 0:
        raise ConfigurationError(
            f"window_bins must be positive: {window_bins}")
    tracker = RollingMedian(window_bins)
    mask = np.zeros(len(series), dtype=bool)
    for index, (_, value) in enumerate(series):
        baseline = tracker.median
        flagged = (baseline is not None and baseline > 0
                   and value > spike_factor * baseline)
        mask[index] = flagged
        # Flagged bins do not enter the baseline themselves.
        if not flagged:
            tracker.push(value)
    return mask
