"""Terminal visualization helpers.

Text renderings used by the CLI, the examples, and the benches: a
sparkline for time series, a step plot for CDFs, and a bar row for
categorical PDFs.  They exist so signal shapes can be inspected without a
plotting stack; the plot-ready numeric series live in
:mod:`repro.analysis.figures`.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import SignalError
from repro.signals.series import TimeSeries
from repro.stats.ecdf import ECDF

__all__ = ["sparkline", "cdf_plot", "bar_row"]

_GLYPHS = " .:-=+*#%@"


def sparkline(series: TimeSeries | Sequence[float],
              width: int = 64) -> str:
    """One-line ASCII rendering of a series, normalized to its max.

    >>> sparkline([0.0, 5.0, 10.0], width=3)
    ' =@'
    """
    if width <= 0:
        raise SignalError(f"width must be positive: {width}")
    values = np.asarray(
        series.values if isinstance(series, TimeSeries) else series,
        dtype=np.float64)
    if values.size == 0:
        raise SignalError("cannot render an empty series")
    if len(values) > width:
        chunk = len(values) / width
        values = np.array([
            values[int(i * chunk):int((i + 1) * chunk)].mean()
            for i in range(width)])
    top = values.max()
    if top <= 0:
        return " " * len(values)
    return "".join(
        _GLYPHS[min(len(_GLYPHS) - 1,
                    int(v / top * (len(_GLYPHS) - 1)))]
        for v in values)


def cdf_plot(cdf: ECDF, width: int = 60, height: int = 12,
             label: str = "") -> List[str]:
    """A small ASCII step plot of an empirical CDF.

    Returns one string per output row, top first; the x-axis spans the
    sample range, the y-axis [0, 1].
    """
    if width <= 2 or height <= 2:
        raise SignalError("cdf_plot needs width > 2 and height > 2")
    lo = cdf.sorted_samples[0]
    hi = cdf.sorted_samples[-1]
    span = hi - lo or 1.0
    xs = [lo + span * i / (width - 1) for i in range(width)]
    ys = [cdf(x) for x in xs]
    grid = [[" "] * width for _ in range(height)]
    for column, y in enumerate(ys):
        row = height - 1 - min(height - 1, int(y * (height - 1)))
        grid[row][column] = "*"
    lines = ["".join(row).rstrip() or "" for row in grid]
    header = f"{label} (x: {lo:.3g} .. {hi:.3g}, y: 0 .. 1)".strip()
    return [header] + [f"|{line:<{width}}|" for line in lines]


def bar_row(labels: Sequence[str], values: Sequence[float],
            width: int = 24) -> List[str]:
    """Horizontal bars, one per (label, value) pair, scaled to the max."""
    if len(labels) != len(values):
        raise SignalError("labels and values must align")
    if not labels:
        raise SignalError("nothing to render")
    top = max(values) or 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = int(round(value / top * width))
        lines.append(f"{label:<{label_width}} "
                     f"{'#' * filled:<{width}} {value:.3f}")
    return lines
