"""JSON serialization for pipeline artifacts.

The curated IODA record list is expensive to simulate (it replays every
observation window through the three substrates), so the pipeline supports
caching it to disk.  The serializers here are also the public export
format for the dataset deliverable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Sequence

from repro.errors import SchemaError
from repro.ioda.records import ConfirmationStatus, OutageRecord
from repro.kio.schema import KIOCategory, KIOEvent, NetworkType
from repro.signals.entities import EntityScope
from repro.signals.kinds import SignalKind
from repro.timeutils.timestamps import TimeRange

__all__ = [
    "record_to_dict", "record_from_dict",
    "kio_event_to_dict", "kio_event_from_dict",
    "dump_records", "load_records",
    "dump_kio_events", "load_kio_events",
    "dump_records_csv",
]

_FORMAT_VERSION = 1


def record_to_dict(record: OutageRecord) -> Dict[str, Any]:
    """Serialize one curated outage record."""
    return {
        "record_id": record.record_id,
        "country": record.country_iso2,
        "start": record.span.start,
        "end": record.span.end,
        "scope": record.scope.value,
        "auto_alerts": {k.value: v for k, v in record.auto_alerts.items()},
        "human_visible": {
            k.value: v for k, v in record.human_visible.items()},
        "ioda_url": record.ioda_url,
        "cause": record.cause,
        "confirmation": record.confirmation.value,
        "more_info": list(record.more_info),
        "region_names": list(record.region_names),
        "asns": list(record.asns),
    }


def record_from_dict(data: Dict[str, Any]) -> OutageRecord:
    """Deserialize one curated outage record."""
    try:
        return OutageRecord(
            record_id=int(data["record_id"]),
            country_iso2=str(data["country"]),
            span=TimeRange(int(data["start"]), int(data["end"])),
            scope=EntityScope(data["scope"]),
            auto_alerts={SignalKind(k): bool(v)
                         for k, v in data["auto_alerts"].items()},
            human_visible={SignalKind(k): bool(v)
                           for k, v in data["human_visible"].items()},
            ioda_url=str(data["ioda_url"]),
            cause=data.get("cause"),
            confirmation=ConfirmationStatus(data["confirmation"]),
            more_info=tuple(data.get("more_info", ())),
            region_names=tuple(data.get("region_names", ())),
            asns=tuple(int(a) for a in data.get("asns", ())),
        )
    except (KeyError, ValueError) as exc:
        raise SchemaError(f"malformed outage record: {exc}") from exc


def kio_event_to_dict(event: KIOEvent) -> Dict[str, Any]:
    """Serialize one harmonized KIO event."""
    return {
        "event_id": event.event_id,
        "year": event.year,
        "country_name": event.country_name,
        "start_day": event.start_day,
        "end_day": event.end_day,
        "categories": [c.value for c in event.categories],
        "networks": event.networks.value,
        "nationwide": event.nationwide,
        "regions": list(event.regions),
        "description": event.description,
    }


def kio_event_from_dict(data: Dict[str, Any]) -> KIOEvent:
    """Deserialize one harmonized KIO event."""
    try:
        return KIOEvent(
            event_id=int(data["event_id"]),
            year=int(data["year"]),
            country_name=str(data["country_name"]),
            start_day=int(data["start_day"]),
            end_day=int(data["end_day"]),
            categories=tuple(KIOCategory(c) for c in data["categories"]),
            networks=NetworkType(data["networks"]),
            nationwide=bool(data["nationwide"]),
            regions=tuple(data.get("regions", ())),
            description=str(data.get("description", "")),
        )
    except (KeyError, ValueError) as exc:
        raise SchemaError(f"malformed KIO event: {exc}") from exc


def _dump(path: Path, kind: str, items: List[Dict[str, Any]]) -> None:
    payload = {"format": _FORMAT_VERSION, "kind": kind, "items": items}
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload), encoding="utf-8")


def _load(path: Path, kind: str) -> List[Dict[str, Any]]:
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("format") != _FORMAT_VERSION:
        raise SchemaError(f"unsupported format in {path}")
    if payload.get("kind") != kind:
        raise SchemaError(
            f"{path} holds {payload.get('kind')!r}, expected {kind!r}")
    return payload["items"]


def dump_records(records: Sequence[OutageRecord], path: Path) -> None:
    """Write curated records to a JSON file."""
    _dump(path, "outage-records", [record_to_dict(r) for r in records])


def load_records(path: Path) -> List[OutageRecord]:
    """Read curated records from a JSON file."""
    return [record_from_dict(d) for d in _load(path, "outage-records")]


def dump_kio_events(events: Sequence[KIOEvent], path: Path) -> None:
    """Write harmonized KIO events to a JSON file."""
    _dump(path, "kio-events", [kio_event_to_dict(e) for e in events])


def dump_records_csv(records: Sequence[OutageRecord], path: Path) -> None:
    """Write curated records as a CSV in the paper's Table 1 layout.

    The paper's released dataset is a spreadsheet with exactly these
    columns; :meth:`OutageRecord.as_row` supplies each row.
    """
    import csv

    if not records:
        raise SchemaError("refusing to write an empty records CSV")
    path.parent.mkdir(parents=True, exist_ok=True)
    fieldnames = list(records[0].as_row().keys())
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for record in records:
            writer.writerow(dict(record.as_row()))


def load_kio_events(path: Path) -> List[KIOEvent]:
    """Read harmonized KIO events from a JSON file."""
    return [kio_event_from_dict(d) for d in _load(path, "kio-events")]
