"""Mass-Mobilization-style protest days.

The Mass Mobilization in Autocracies data the paper uses only extends
through 2019 (§5.2 footnote 9), so the emitter truncates there; Table 4's
protest rows must be computed on the 2018-2019 subset.  Protest coverage
is also less complete than coups or elections — smaller protests go
unrecorded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List

from repro.countries.registry import CountryRegistry
from repro.datasets.base import name_variant
from repro.rng import substream
from repro.timeutils.timestamps import DAY, utc
from repro.world.events import EventKind, MobilizationEvent

__all__ = ["ProtestRecord", "ProtestDataset", "PROTEST_DATA_END"]

#: First day *not* covered by the protest dataset (coverage ends 2019).
PROTEST_DATA_END = utc(2020, 1, 1) // DAY


@dataclass(frozen=True)
class ProtestRecord:
    """One recorded protest day."""

    country_name: str
    day: int  # local days-since-epoch


class ProtestDataset:
    """The emitted protest-day list."""

    def __init__(self, records: List[ProtestRecord]):
        self._records = records

    @classmethod
    def from_events(cls, seed: int, registry: CountryRegistry,
                    events: Iterable[MobilizationEvent],
                    coverage: float = 0.9) -> "ProtestDataset":
        records: List[ProtestRecord] = []
        for event in events:
            if event.kind is not EventKind.PROTEST:
                continue
            country = registry.get(event.country_iso2)
            local_day = (event.day_start_utc
                         + country.utc_offset.seconds) // DAY
            if local_day >= PROTEST_DATA_END:
                continue
            rng = substream(seed, "protests", event.event_id)
            if rng.random() >= coverage:
                continue
            records.append(ProtestRecord(
                country_name=name_variant(
                    country, substream(seed, "protests-name",
                                       country.iso2)),
                day=local_day,
            ))
        records.sort(key=lambda r: r.day)
        return cls(records)

    def __iter__(self) -> Iterator[ProtestRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)
