"""Powell/Thyne-style global coup list.

One row per coup or attempted coup with the country name and the (local)
day it occurred.  Coverage of such headline events is effectively complete,
so the emitter reproduces ground truth exactly apart from name variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List

from repro.countries.registry import CountryRegistry
from repro.datasets.base import name_variant
from repro.rng import substream
from repro.timeutils.timestamps import DAY
from repro.world.events import EventKind, MobilizationEvent

__all__ = ["CoupRecord", "CoupDataset"]


@dataclass(frozen=True)
class CoupRecord:
    """One coup event."""

    country_name: str
    day: int  # local days-since-epoch
    successful: bool


class CoupDataset:
    """The emitted coup list."""

    def __init__(self, records: List[CoupRecord]):
        self._records = records

    @classmethod
    def from_events(cls, seed: int, registry: CountryRegistry,
                    events: Iterable[MobilizationEvent]) -> "CoupDataset":
        records: List[CoupRecord] = []
        for event in events:
            if event.kind is not EventKind.COUP:
                continue
            country = registry.get(event.country_iso2)
            rng = substream(seed, "coups", event.event_id)
            local_day = (event.day_start_utc
                         + country.utc_offset.seconds) // DAY
            records.append(CoupRecord(
                country_name=name_variant(
                    country, substream(seed, "coups-name",
                                       country.iso2)),
                day=local_day,
                successful=bool(rng.random() < 0.5),
            ))
        records.sort(key=lambda r: r.day)
        return cls(records)

    def __iter__(self) -> Iterator[CoupRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)
