"""Shared helpers for dataset emitters."""

from __future__ import annotations

import numpy as np

from repro.countries.registry import Country

__all__ = ["name_variant"]


def name_variant(country: Country, rng: np.random.Generator,
                 p_alias: float = 0.4) -> str:
    """The name a dataset publisher might use for ``country``.

    Each source tends to pick one convention and stick with it; emitters
    therefore derive the rng per (dataset, country) so a country's name is
    stable within a dataset but differs across datasets — exactly the
    inconsistency the merge pipeline standardizes away (§4).
    """
    if country.aliases and rng.random() < p_alias:
        return str(rng.choice(list(country.aliases)))
    return country.name
