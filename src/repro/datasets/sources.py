"""The unified :class:`DatasetSource` protocol and the seven sources.

Before this module, every auxiliary dataset arrived through a bespoke
classmethod (``VDemDataset.from_profiles(seed, registry, profiles)``,
``CoupDataset.from_events(seed, registry, events)``, ...), which meant
resilience wrapping, observability, and cache keying each had to know
seven shapes.  A :class:`DatasetSource` normalizes them to one surface:

- ``name`` — the stable source identifier (``"vdem"``, ``"coups"``, …);
  also the operation key fault plans and circuit breakers target.
- ``load(*, world, rng)`` — produce the source's records from the world
  scenario; ``rng`` is the source-level substream for any draws the
  source makes beyond its internal per-record substreams.
- ``fingerprint()`` — a canonical digest of the source identity and its
  parameters, suitable as cache-key material
  (:func:`repro.exec.cachestore.fingerprint` underneath).

The seven adapters cover every auxiliary product of the pipeline's
dataset stage: V-Dem, World Bank, coups, elections, protests,
DataReportal, and the topology-derived state-ownership shares.  The
pipeline loads them uniformly (see
:meth:`repro.core.pipeline.ReproPipeline._assemble`), wrapping each load
in the run's retry/breaker machinery when resilience is configured.
Sources are frozen dataclasses: picklable, hashable, and canonical
fingerprint material.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Protocol, Tuple, runtime_checkable

import numpy as np

from repro.datasets.coups import CoupDataset
from repro.datasets.datareportal import DataReportalDataset
from repro.datasets.elections import ElectionDataset
from repro.datasets.protests import ProtestDataset
from repro.datasets.vdem import VDemDataset
from repro.datasets.worldbank import WorldBankDataset
from repro.exec.cachestore import fingerprint
from repro.topology.eyeballs import EyeballEstimates
from repro.topology.geolocation import GeoDatabase
from repro.topology.metrics import compute_state_shares
from repro.topology.prefix2as import Prefix2ASSnapshot
from repro.topology.state_owned import StateOwnedASList
from repro.world.scenario import WorldScenario

__all__ = [
    "DatasetSource",
    "VDemSource",
    "WorldBankSource",
    "CoupSource",
    "ElectionSource",
    "ProtestSource",
    "DataReportalSource",
    "StateSharesSource",
    "default_sources",
]


@runtime_checkable
class DatasetSource(Protocol):
    """One feed of the pipeline's dataset stage, behind a uniform API."""

    name: str

    def load(self, *, world: WorldScenario,
             rng: np.random.Generator) -> Any:
        """Produce the source's records from world ground truth."""
        ...

    def fingerprint(self) -> str:
        """Canonical digest of the source identity and parameters."""
        ...


class _SourceBase:
    """Shared fingerprinting for the concrete (dataclass) sources."""

    name: ClassVar[str]

    def fingerprint(self) -> str:
        return fingerprint(type(self).__name__, self.name, self)


@dataclass(frozen=True)
class VDemSource(_SourceBase):
    """V-Dem-style political indices (:mod:`repro.datasets.vdem`)."""

    name: ClassVar[str] = "vdem"
    noise_sigma: float = 0.01

    def load(self, *, world: WorldScenario,
             rng: np.random.Generator) -> VDemDataset:
        return VDemDataset.from_profiles(
            world.seed, world.registry, world.profiles,
            noise_sigma=self.noise_sigma)


@dataclass(frozen=True)
class WorldBankSource(_SourceBase):
    """World-Bank-style macro indicators
    (:mod:`repro.datasets.worldbank`)."""

    name: ClassVar[str] = "worldbank"
    missing_rate: float = 0.02

    def load(self, *, world: WorldScenario,
             rng: np.random.Generator) -> WorldBankDataset:
        return WorldBankDataset.from_profiles(
            world.seed, world.registry, world.profiles,
            missing_rate=self.missing_rate)


@dataclass(frozen=True)
class CoupSource(_SourceBase):
    """Powell/Thyne-style coup list (:mod:`repro.datasets.coups`)."""

    name: ClassVar[str] = "coups"

    def load(self, *, world: WorldScenario,
             rng: np.random.Generator) -> CoupDataset:
        return CoupDataset.from_events(
            world.seed, world.registry, world.events)


@dataclass(frozen=True)
class ElectionSource(_SourceBase):
    """ElectionGuide-style election dates
    (:mod:`repro.datasets.elections`)."""

    name: ClassVar[str] = "elections"

    def load(self, *, world: WorldScenario,
             rng: np.random.Generator) -> ElectionDataset:
        return ElectionDataset.from_events(
            world.seed, world.registry, world.events)


@dataclass(frozen=True)
class ProtestSource(_SourceBase):
    """Mass-Mobilization-style protest days
    (:mod:`repro.datasets.protests`)."""

    name: ClassVar[str] = "protests"
    coverage: float = 0.9

    def load(self, *, world: WorldScenario,
             rng: np.random.Generator) -> ProtestDataset:
        return ProtestDataset.from_events(
            world.seed, world.registry, world.events,
            coverage=self.coverage)


@dataclass(frozen=True)
class DataReportalSource(_SourceBase):
    """DataReportal-style Internet user estimates
    (:mod:`repro.datasets.datareportal`)."""

    name: ClassVar[str] = "datareportal"

    def load(self, *, world: WorldScenario,
             rng: np.random.Generator) -> DataReportalDataset:
        return DataReportalDataset.from_profiles(
            world.seed, world.registry, world.profiles)


@dataclass(frozen=True)
class StateSharesSource(_SourceBase):
    """State-ownership address/eyeball shares derived from the
    CAIDA/MaxMind/APNIC-style topology emitters
    (:mod:`repro.topology.metrics`)."""

    name: ClassVar[str] = "state_shares"

    def load(self, *, world: WorldScenario,
             rng: np.random.Generator) -> dict:
        seed = world.seed
        prefix2as = Prefix2ASSnapshot.from_topology(world.topology, seed)
        geo = GeoDatabase.from_topology(world.topology, seed)
        eyeballs = EyeballEstimates.from_topology(world.topology, seed)
        state_owned = StateOwnedASList.from_topology(world.topology, seed)
        return compute_state_shares(prefix2as, geo, state_owned, eyeballs)


def default_sources() -> Tuple[DatasetSource, ...]:
    """The seven sources of the dataset stage, in load order."""
    return (
        VDemSource(),
        WorldBankSource(),
        CoupSource(),
        ElectionSource(),
        ProtestSource(),
        DataReportalSource(),
        StateSharesSource(),
    )
