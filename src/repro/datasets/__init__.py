"""Auxiliary dataset emitters (§3.3).

Each module emits one of the paper's auxiliary datasets from world ground
truth, with the source's real quirks — country-name variants, annual
granularity, limited temporal coverage:

- :mod:`repro.datasets.vdem` — V-Dem-style political indices.
- :mod:`repro.datasets.worldbank` — World-Bank-style macroeconomics.
- :mod:`repro.datasets.coups` — Powell/Thyne-style coup list.
- :mod:`repro.datasets.elections` — IFES ElectionGuide-style election
  dates (2018-2021 only, as manually collected by the paper).
- :mod:`repro.datasets.protests` — Mass-Mobilization-style protest days
  (coverage ends in 2019, §5.2 footnote 9).
- :mod:`repro.datasets.datareportal` — DataReportal-style Internet user
  estimates.
"""

from repro.datasets.vdem import VDemDataset, VDemRecord
from repro.datasets.worldbank import WorldBankDataset, WorldBankRecord
from repro.datasets.coups import CoupDataset, CoupRecord
from repro.datasets.elections import ElectionDataset, ElectionRecord
from repro.datasets.protests import ProtestDataset, ProtestRecord
from repro.datasets.datareportal import (
    DataReportalDataset,
    InternetUsersRecord,
)

__all__ = [
    "VDemDataset", "VDemRecord",
    "WorldBankDataset", "WorldBankRecord",
    "CoupDataset", "CoupRecord",
    "ElectionDataset", "ElectionRecord",
    "ProtestDataset", "ProtestRecord",
    "DataReportalDataset", "InternetUsersRecord",
]
