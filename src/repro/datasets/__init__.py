"""Auxiliary dataset emitters (§3.3).

Each module emits one of the paper's auxiliary datasets from world ground
truth, with the source's real quirks — country-name variants, annual
granularity, limited temporal coverage:

- :mod:`repro.datasets.vdem` — V-Dem-style political indices.
- :mod:`repro.datasets.worldbank` — World-Bank-style macroeconomics.
- :mod:`repro.datasets.coups` — Powell/Thyne-style coup list.
- :mod:`repro.datasets.elections` — IFES ElectionGuide-style election
  dates (2018-2021 only, as manually collected by the paper).
- :mod:`repro.datasets.protests` — Mass-Mobilization-style protest days
  (coverage ends in 2019, §5.2 footnote 9).
- :mod:`repro.datasets.datareportal` — DataReportal-style Internet user
  estimates.

:mod:`repro.datasets.sources` wraps all of the above (plus the
topology-derived state-ownership shares) behind the uniform
:class:`~repro.datasets.sources.DatasetSource` protocol — ``name``,
``load(*, world, rng)``, ``fingerprint()`` — so resilience wrapping
(:mod:`repro.resilience`) and cache keying apply to every feed the same
way.
"""

from repro.datasets.sources import (
    CoupSource,
    DataReportalSource,
    DatasetSource,
    ElectionSource,
    ProtestSource,
    StateSharesSource,
    VDemSource,
    WorldBankSource,
    default_sources,
)
from repro.datasets.vdem import VDemDataset, VDemRecord
from repro.datasets.worldbank import WorldBankDataset, WorldBankRecord
from repro.datasets.coups import CoupDataset, CoupRecord
from repro.datasets.elections import ElectionDataset, ElectionRecord
from repro.datasets.protests import ProtestDataset, ProtestRecord
from repro.datasets.datareportal import (
    DataReportalDataset,
    InternetUsersRecord,
)

__all__ = [
    "VDemDataset", "VDemRecord",
    "WorldBankDataset", "WorldBankRecord",
    "CoupDataset", "CoupRecord",
    "ElectionDataset", "ElectionRecord",
    "ProtestDataset", "ProtestRecord",
    "DataReportalDataset", "InternetUsersRecord",
    "DatasetSource", "default_sources",
    "VDemSource", "WorldBankSource", "CoupSource", "ElectionSource",
    "ProtestSource", "DataReportalSource", "StateSharesSource",
]
