"""World-Bank-style macroeconomic indicators.

GDP per capita (PPP dollars) and fixed-broadband subscriptions per 100
people, per country-year.  The World Bank publishes broadband as
subscriptions-per-100 rather than a population fraction; the merge layer
converts, reproducing the unit mismatch real pipelines must handle.
Coverage is imperfect: a few country-years are missing, as in the real
Data Bank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.countries.registry import CountryRegistry
from repro.datasets.base import name_variant
from repro.rng import substream
from repro.world.profiles import CountryYearProfile

__all__ = ["WorldBankRecord", "WorldBankDataset"]


@dataclass(frozen=True)
class WorldBankRecord:
    """One country-year of macro indicators.

    ``country_code`` is the ISO-3166 alpha-3 code the Data Bank keys its
    exports on; the name column is decorative (and uses the Bank's own
    long-form conventions), so merges should prefer the code.
    """

    country_name: str
    country_code: str  # ISO-3166 alpha-3
    year: int
    gdp_per_capita_ppp: Optional[float]
    broadband_per_100: Optional[float]


class WorldBankDataset:
    """The emitted dataset."""

    def __init__(self, records: List[WorldBankRecord]):
        self._records = records

    @classmethod
    def from_profiles(cls, seed: int, registry: CountryRegistry,
                      profiles: Dict[Tuple[str, int], CountryYearProfile],
                      missing_rate: float = 0.02) -> "WorldBankDataset":
        records: List[WorldBankRecord] = []
        for (iso2, year), profile in sorted(profiles.items()):
            country = registry.get(iso2)
            rng = substream(seed, "worldbank", iso2, year)
            published_name = name_variant(
                country, substream(seed, "worldbank-name", iso2))
            gdp: Optional[float] = float(
                profile.gdp_per_capita * rng.lognormal(0.0, 0.02))
            broadband: Optional[float] = float(
                profile.broadband_fraction * 100.0
                * rng.lognormal(0.0, 0.03))
            if rng.random() < missing_rate:
                gdp = None
            if rng.random() < missing_rate:
                broadband = None
            records.append(WorldBankRecord(
                country_name=published_name,
                country_code=country.iso3,
                year=year,
                gdp_per_capita_ppp=gdp,
                broadband_per_100=broadband,
            ))
        return cls(records)

    def __iter__(self) -> Iterator[WorldBankRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)
