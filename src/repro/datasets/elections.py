"""IFES ElectionGuide-style election dates.

The paper manually collected national election dates for 2018-2021 only;
the emitter enforces the same coverage window.  Election calendars are
public, so apart from name variants the data is exact.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Iterator, List

from repro.countries.registry import CountryRegistry
from repro.datasets.base import name_variant
from repro.rng import substream
from repro.timeutils.timestamps import DAY
from repro.world.events import EventKind, MobilizationEvent

__all__ = ["ElectionRecord", "ElectionDataset", "ELECTION_YEARS"]

#: Years the paper collected election data for.
ELECTION_YEARS = frozenset({2018, 2019, 2020, 2021})


@dataclass(frozen=True)
class ElectionRecord:
    """One national election."""

    country_name: str
    day: int  # local days-since-epoch
    election_type: str


class ElectionDataset:
    """The emitted election list."""

    def __init__(self, records: List[ElectionRecord]):
        self._records = records

    @classmethod
    def from_events(cls, seed: int, registry: CountryRegistry,
                    events: Iterable[MobilizationEvent]
                    ) -> "ElectionDataset":
        records: List[ElectionRecord] = []
        for event in events:
            if event.kind is not EventKind.ELECTION:
                continue
            country = registry.get(event.country_iso2)
            local_day = (event.day_start_utc
                         + country.utc_offset.seconds) // DAY
            year = time.gmtime(local_day * DAY).tm_year
            if year not in ELECTION_YEARS:
                continue
            rng = substream(seed, "elections", event.event_id)
            records.append(ElectionRecord(
                country_name=name_variant(
                    country, substream(seed, "elections-name",
                                       country.iso2)),
                day=local_day,
                election_type=str(rng.choice(
                    ["presidential", "parliamentary", "general",
                     "referendum"])),
            ))
        records.sort(key=lambda r: r.day)
        return cls(records)

    def __iter__(self) -> Iterator[ElectionRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)
