"""V-Dem-style political indices.

Emits, per country-year, the four indices the paper uses:

- ``liberal_democracy`` (``v2x_libdem``-like, Fig 4),
- ``military_power`` ("military capable of removing regime", Fig 5),
- ``media_bias`` and ``freedom_discussion_men`` (Fig 6; V-Dem-style
  measurement-model scores centred near 0, lower = more authoritarian).

Values come from world ground truth plus small measurement noise (V-Dem's
indices are themselves estimates from expert surveys).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.countries.registry import CountryRegistry
from repro.datasets.base import name_variant
from repro.rng import substream
from repro.world.profiles import CountryYearProfile

__all__ = ["VDemRecord", "VDemDataset"]


@dataclass(frozen=True)
class VDemRecord:
    """One country-year of V-Dem-style indices."""

    country_name: str
    year: int
    liberal_democracy: float
    military_power: float
    media_bias: float
    freedom_discussion_men: float


class VDemDataset:
    """The emitted dataset, queryable by (name-as-published, year)."""

    def __init__(self, records: List[VDemRecord]):
        self._records = records

    @classmethod
    def from_profiles(cls, seed: int, registry: CountryRegistry,
                      profiles: Dict[Tuple[str, int], CountryYearProfile],
                      noise_sigma: float = 0.01) -> "VDemDataset":
        records: List[VDemRecord] = []
        for (iso2, year), profile in sorted(profiles.items()):
            country = registry.get(iso2)
            rng = substream(seed, "vdem", iso2, year)
            published_name = name_variant(
                country, substream(seed, "vdem-name", iso2))
            records.append(VDemRecord(
                country_name=published_name,
                year=year,
                liberal_democracy=float(max(0.0, min(
                    1.0, profile.liberal_democracy
                    + rng.normal(0.0, noise_sigma)))),
                military_power=float(max(0.0, min(
                    1.0, profile.military_power
                    + (rng.normal(0.0, noise_sigma)
                       if profile.military_power > 0 else 0.0)))),
                media_bias=float(
                    profile.media_bias + rng.normal(0.0, noise_sigma)),
                freedom_discussion_men=float(
                    profile.freedom_discussion_men
                    + rng.normal(0.0, noise_sigma)),
            ))
        return cls(records)

    def __iter__(self) -> Iterator[VDemRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)
