"""DataReportal-style Internet user estimates.

The paper uses DataReportal's per-country Internet user counts to estimate
how many users live under governments that shut down the Internet (§4's
"more than 1 billion Internet users" headline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.countries.registry import CountryRegistry
from repro.datasets.base import name_variant
from repro.rng import substream
from repro.world.profiles import CountryYearProfile

__all__ = ["InternetUsersRecord", "DataReportalDataset"]


@dataclass(frozen=True)
class InternetUsersRecord:
    """Estimated Internet users in one country-year."""

    country_name: str
    year: int
    users_millions: float


class DataReportalDataset:
    """The emitted estimates."""

    def __init__(self, records: List[InternetUsersRecord]):
        self._records = records

    @classmethod
    def from_profiles(cls, seed: int, registry: CountryRegistry,
                      profiles: Dict[Tuple[str, int], CountryYearProfile]
                      ) -> "DataReportalDataset":
        records: List[InternetUsersRecord] = []
        for (iso2, year), profile in sorted(profiles.items()):
            country = registry.get(iso2)
            rng = substream(seed, "datareportal", iso2, year)
            records.append(InternetUsersRecord(
                country_name=name_variant(
                    country, substream(seed, "datareportal-name", iso2)),
                year=year,
                users_millions=float(
                    profile.internet_users_millions
                    * rng.lognormal(0.0, 0.05)),
            ))
        return cls(records)

    def __iter__(self) -> Iterator[InternetUsersRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)
