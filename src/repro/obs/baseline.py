"""Stored perf+fidelity baselines and regression comparison.

The ROADMAP's north star — "as fast as the hardware allows" — is only
checkable against a memory: what did this configuration cost *last*
time, and did the outputs still reproduce the paper?  A
:class:`PerfBaseline` is that memory: one JSON file (under
``benchmarks/baselines/`` by convention) capturing a named run's

- **config** — seed, backend, workers, shards: what was run;
- **fidelity** — the health statistics (event populations, match
  fractions, curated record count): what came out;
- **perf** — per-stage and total wall seconds, cache hit/miss counts:
  what it cost; and
- **health** — the scorecard grade at record time.

``repro perf record`` writes one, ``repro perf compare`` re-runs the
pipeline and diffs it against one with per-metric tolerance bands
(exit status is the CI contract: non-zero on regression), and ``repro
perf report`` renders the trajectory across every stored baseline.

Comparison semantics: fidelity must match **exactly** — the pipeline
is deterministic, so any drift on an unchanged config is a behaviour
change, not noise.  Perf metrics regress only when the current value
overshoots ``baseline * (1 + band * tolerance) + min_seconds``: the
relative band absorbs machine-to-machine speed differences and the
absolute slack keeps sub-second stages from flapping on scheduler
noise.  Running *faster* is never a regression.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

__all__ = ["BASELINE_DIR", "BASELINE_VERSION", "BaselineComparison",
           "ComparisonEntry", "PerfBaseline", "compare_baselines",
           "list_baselines", "load_baseline", "save_baseline",
           "trajectory_rows"]

#: Baseline schema version, stamped into every file.
BASELINE_VERSION = 1

#: Conventional home of committed baselines (the BENCH trajectory).
BASELINE_DIR = Path("benchmarks/baselines")

#: Relative tolerance band per perf metric (fractions of the baseline
#: value); the ``total`` entry covers ``perf.total_seconds`` and the
#: ``stage`` entry every ``perf.stage_seconds.*`` metric.
DEFAULT_BANDS: Mapping[str, float] = {"total": 0.50, "stage": 1.00}

#: Absolute slack (seconds) added on top of every perf band, so
#: near-zero baseline stages cannot flap on scheduler noise.
DEFAULT_MIN_SECONDS = 1.0

_FIDELITY_EPS = 1e-9


@dataclass(frozen=True, kw_only=True)
class PerfBaseline:
    """One named, stored perf+fidelity snapshot."""

    name: str
    created: str
    config: Mapping[str, Any] = field(default_factory=dict)
    fidelity: Mapping[str, float] = field(default_factory=dict)
    perf: Mapping[str, float] = field(default_factory=dict)
    health_grade: str = "pass"
    version: int = BASELINE_VERSION

    @classmethod
    def capture(cls, *, name: str, config: Mapping[str, Any],
                statistics: Mapping[str, float],
                health_grade: str = "pass",
                created: Optional[str] = None) -> "PerfBaseline":
        """Split a run-statistics mapping into a storable baseline.

        ``statistics`` is the :func:`repro.obs.health.run_statistics`
        mapping: ``perf.*`` and ``cache.*`` keys become the perf half,
        everything else the fidelity half.  ``created`` overrides the
        timestamp (the run registry passes the run's own start time so
        re-registering an old journal does not rewrite history).
        """
        fidelity = {k: float(v) for k, v in statistics.items()
                    if not k.startswith(("perf.", "cache."))}
        perf = {k: float(v) for k, v in statistics.items()
                if k.startswith(("perf.", "cache."))}
        if created is None:
            created = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        return cls(name=name, created=created, config=dict(config),
                   fidelity=fidelity, perf=perf,
                   health_grade=health_grade)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "name": self.name,
            "created": self.created,
            "config": dict(self.config),
            "fidelity": {k: self.fidelity[k]
                         for k in sorted(self.fidelity)},
            "perf": {k: self.perf[k] for k in sorted(self.perf)},
            "health_grade": self.health_grade,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PerfBaseline":
        return cls(
            name=str(data.get("name", "?")),
            created=str(data.get("created", "?")),
            config=dict(data.get("config", {})),
            fidelity={str(k): float(v)
                      for k, v in data.get("fidelity", {}).items()},
            perf={str(k): float(v)
                  for k, v in data.get("perf", {}).items()},
            health_grade=str(data.get("health_grade", "pass")),
            version=int(data.get("version", BASELINE_VERSION)))


def save_baseline(baseline: PerfBaseline,
                  path: Union[str, Path]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(baseline.as_dict(), indent=2,
                               sort_keys=False) + "\n",
                    encoding="utf-8")
    return path


def load_baseline(path: Union[str, Path]) -> PerfBaseline:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict):
        raise ValueError(f"not a baseline file: {path}")
    return PerfBaseline.from_dict(data)


def list_baselines(directory: Union[str, Path] = BASELINE_DIR
                   ) -> List[PerfBaseline]:
    """Every readable baseline in ``directory``, oldest first."""
    directory = Path(directory)
    baselines = []
    for path in sorted(directory.glob("*.json")):
        try:
            baselines.append(load_baseline(path))
        except (ValueError, OSError):
            continue
    return sorted(baselines, key=lambda b: (b.created, b.name))


# -- comparison ------------------------------------------------------------------


@dataclass(frozen=True)
class ComparisonEntry:
    """One metric's baseline-vs-current verdict."""

    name: str
    kind: str  # "config" | "fidelity" | "perf"
    baseline: Optional[float]
    current: Optional[float]
    #: The value the current reading must stay at or under (perf only).
    limit: Optional[float]
    status: str  # "ok" | "improved" | "regression" | "missing"

    def row(self) -> str:
        def fmt(value: Optional[float]) -> str:
            return "-" if value is None else f"{value:g}"

        limit = f"  limit {fmt(self.limit)}" if self.limit is not None \
            else ""
        return (f"  [{self.status:<10}] {self.name:<32} "
                f"{fmt(self.baseline):>12} -> {fmt(self.current):>12}"
                f"{limit}")


@dataclass(frozen=True)
class BaselineComparison:
    """The full diff of a current run against a stored baseline."""

    baseline_name: str
    entries: Tuple[ComparisonEntry, ...]

    @property
    def regressions(self) -> Tuple[ComparisonEntry, ...]:
        return tuple(e for e in self.entries
                     if e.status in ("regression", "missing"))

    @property
    def ok(self) -> bool:
        return not self.regressions

    def rows(self) -> List[str]:
        lines = [f"baseline        {self.baseline_name}  "
                 f"({'OK' if self.ok else 'REGRESSION'}: "
                 f"{len(self.regressions)} regressed of "
                 f"{len(self.entries)} metrics)"]
        lines.extend(entry.row() for entry in self.entries)
        return lines


def _perf_band(name: str, bands: Mapping[str, float]) -> float:
    if name.startswith("perf.stage_seconds."):
        return bands.get("stage", DEFAULT_BANDS["stage"])
    return bands.get("total", DEFAULT_BANDS["total"])


def compare_baselines(current: PerfBaseline, baseline: PerfBaseline, *,
                      tolerance: float = 1.0,
                      min_seconds: float = DEFAULT_MIN_SECONDS,
                      bands: Mapping[str, float] = DEFAULT_BANDS
                      ) -> BaselineComparison:
    """Diff ``current`` against ``baseline`` (see module docstring).

    ``tolerance`` scales every perf band (0 = no relative slack; CI
    passes a generous value to absorb runner speed differences);
    ``min_seconds`` is the absolute slack added on top.  Fidelity and
    config must match exactly regardless of tolerance.
    """
    entries: List[ComparisonEntry] = []

    for key in sorted(set(baseline.config) | set(current.config)):
        base, cur = baseline.config.get(key), current.config.get(key)
        if base != cur:
            entries.append(ComparisonEntry(
                name=f"config.{key}", kind="config",
                baseline=None, current=None, limit=None,
                status="regression"))

    for name in sorted(set(baseline.fidelity) | set(current.fidelity)):
        base = baseline.fidelity.get(name)
        cur = current.fidelity.get(name)
        if base is None or cur is None:
            status = "missing"
        elif abs(base - cur) <= _FIDELITY_EPS:
            status = "ok"
        else:
            status = "regression"
        entries.append(ComparisonEntry(
            name=name, kind="fidelity", baseline=base, current=cur,
            limit=base, status=status))

    for name in sorted(baseline.perf):
        base = baseline.perf[name]
        cur = current.perf.get(name)
        if not name.startswith("perf."):
            # cache.* counters are trend data, not budgets.
            entries.append(ComparisonEntry(
                name=name, kind="perf", baseline=base, current=cur,
                limit=None, status="ok"))
            continue
        if cur is None:
            entries.append(ComparisonEntry(
                name=name, kind="perf", baseline=base, current=None,
                limit=None, status="missing"))
            continue
        band = _perf_band(name, bands)
        limit = base * (1.0 + band * tolerance) + min_seconds
        if cur > limit:
            status = "regression"
        elif cur < base:
            status = "improved"
        else:
            status = "ok"
        entries.append(ComparisonEntry(
            name=name, kind="perf", baseline=base, current=cur,
            limit=round(limit, 6), status=status))

    return BaselineComparison(baseline_name=baseline.name,
                              entries=tuple(entries))


# -- trajectory ------------------------------------------------------------------


def trajectory_rows(baselines: List[PerfBaseline]) -> List[str]:
    """The perf trajectory table across stored baselines, oldest first."""
    if not baselines:
        return ["no baselines recorded"]
    header = (f"{'name':<24} {'created':<20} {'total_s':>9} "
              f"{'curate_s':>9} {'records':>8} {'hit_rate':>8} "
              f"{'health':>6}")
    lines = [header, "-" * len(header)]
    for b in baselines:
        total = b.perf.get("perf.total_seconds")
        curate = b.perf.get("perf.stage_seconds.curate")
        records = b.fidelity.get("records.curated")
        hit_rate = b.perf.get("cache.hit_rate")

        def fmt(value: Optional[float], spec: str) -> str:
            return "-" if value is None else format(value, spec)

        lines.append(
            f"{b.name:<24} {b.created:<20} {fmt(total, '9.2f'):>9} "
            f"{fmt(curate, '9.2f'):>9} {fmt(records, '8.0f'):>8} "
            f"{fmt(hit_rate, '8.2f'):>8} {b.health_grade:>6}")
    return lines
