"""Opt-in per-span resource profiling.

A :class:`SpanProfiler` attached to a run's tracer samples resource
counters when each span opens and closes, and publishes the deltas as a
``profile`` attribute on the finished span record:

- ``cpu_s`` — CPU seconds consumed by the owning thread while the span
  was open (``time.thread_time``), next to the span's own wall
  duration.  A span whose ``cpu_s`` is far below its wall time was
  waiting, not computing.
- ``rss_peak_kb`` — growth of the process peak RSS high-water mark
  (``resource.getrusage``) across the span, in KiB.  Zero means the
  span fit inside memory already reached.
- ``alloc_net_kb`` / ``alloc_peak_kb`` — with ``tracemalloc`` sampling
  enabled, the net Python allocation delta across the span and the
  traced-peak growth, at a configurable capture depth
  (``tracemalloc_depth`` stack frames per allocation site).

Profiling is **opt-in and inert by default**: without a profiler the
span fast path pays a single ``is None`` check, and nothing here ever
touches the RNG substreams — a profiled run is byte-identical to an
unprofiled one.  Readings survive :meth:`repro.obs.trace.Tracer.adopt`
because they ride in the span's attributes: process workers profile
into their local tracer and the parent grafts the finished records
verbatim.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

try:  # pragma: no cover - absent only on non-POSIX platforms
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None  # type: ignore[assignment]

import time
import tracemalloc

__all__ = ["ProfileConfig", "SpanProfiler"]


@dataclass(frozen=True, kw_only=True)
class ProfileConfig:
    """What the per-span profiler samples.

    Keyword-only: part of the stable :mod:`repro.api` surface
    (``profile=``), so fields may be added freely.
    """

    #: Sample per-thread CPU time (wall vs CPU breakdown).
    cpu: bool = True
    #: Sample the process peak-RSS high-water mark.
    rss: bool = True
    #: Sample Python allocations via :mod:`tracemalloc`.  Costly
    #: (every allocation is traced while enabled); off by default.
    tracemalloc: bool = False
    #: Stack depth captured per allocation site when tracing.
    tracemalloc_depth: int = 1

    def __post_init__(self) -> None:
        if self.tracemalloc_depth < 1:
            raise ValueError(
                f"tracemalloc_depth must be >= 1: {self.tracemalloc_depth}")


def _rss_kb() -> Optional[float]:
    """The process peak RSS in KiB (None where unsupported)."""
    if _resource is None:  # pragma: no cover - non-POSIX
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss in bytes
        return peak / 1024.0
    return float(peak)


def _thread_cpu() -> float:
    """CPU seconds of the calling thread (process-wide as a fallback)."""
    try:
        return time.thread_time()
    except (AttributeError, OSError):  # pragma: no cover - no clock
        return time.process_time()


#: Readings captured at span open: (cpu, rss_kb, alloc_current_bytes,
#: alloc_peak_bytes) — None slots for disabled samplers.
_Readings = Tuple[Optional[float], Optional[float], Optional[int],
                  Optional[int]]


class SpanProfiler:
    """Samples resource counters around every span of one tracer.

    Instances are installed on a :class:`~repro.obs.trace.Tracer` (via
    ``Observability(profile=...)``); the span context manager calls
    :meth:`begin` on entry and :meth:`end` on exit, both on the thread
    that owns the span, so per-thread CPU clocks read correctly.
    """

    def __init__(self, config: Optional[ProfileConfig] = None):
        self.config = config if config is not None else ProfileConfig()
        self._started_tracemalloc = False

    # -- lifecycle ---------------------------------------------------------------

    def install(self) -> "SpanProfiler":
        """Start global samplers (tracemalloc) if configured."""
        if self.config.tracemalloc and not tracemalloc.is_tracing():
            tracemalloc.start(self.config.tracemalloc_depth)
            self._started_tracemalloc = True
        return self

    def uninstall(self) -> None:
        """Stop any global sampler this profiler started (idempotent)."""
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._started_tracemalloc = False

    # -- per-span sampling -------------------------------------------------------

    def begin(self) -> _Readings:
        """Sample the counters at span open (called on the span's thread)."""
        cpu = _thread_cpu() if self.config.cpu else None
        rss = _rss_kb() if self.config.rss else None
        alloc_now = alloc_peak = None
        if self.config.tracemalloc and tracemalloc.is_tracing():
            alloc_now, alloc_peak = tracemalloc.get_traced_memory()
        return (cpu, rss, alloc_now, alloc_peak)

    def end(self, readings: _Readings) -> Dict[str, Any]:
        """Deltas since :meth:`begin`, as the span's ``profile`` attr."""
        cpu0, rss0, alloc0, alloc_peak0 = readings
        profile: Dict[str, Any] = {}
        if cpu0 is not None:
            profile["cpu_s"] = round(max(0.0, _thread_cpu() - cpu0), 6)
        if rss0 is not None:
            rss1 = _rss_kb()
            if rss1 is not None:
                profile["rss_peak_kb"] = round(max(0.0, rss1 - rss0), 1)
        if alloc0 is not None and tracemalloc.is_tracing():
            alloc1, alloc_peak1 = tracemalloc.get_traced_memory()
            profile["alloc_net_kb"] = round((alloc1 - alloc0) / 1024.0, 1)
            profile["alloc_peak_kb"] = round(
                max(0, alloc_peak1 - (alloc_peak0 or 0)) / 1024.0, 1)
        return profile
