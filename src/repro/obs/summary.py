"""Run-journal summarization (``repro trace summarize``).

Replays a JSONL run journal and answers the two questions an operator
asks first: *where did the time go* (slowest individual spans plus
per-name aggregates) and *what did the run actually do* (hottest
counters, histogram tails).  The output is a plain result object with
``rows()``, matching the analysis-layer idiom.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.obs.trace import SpanRecord

__all__ = ["JournalSummary", "summarize_events", "aggregate_spans"]


@dataclass(frozen=True)
class SpanAggregate:
    """Per-span-name rollup."""

    name: str
    count: int
    total_seconds: float
    max_seconds: float


@dataclass(frozen=True)
class JournalSummary:
    """What a run journal says the run did."""

    n_events: int
    n_spans: int
    run_seconds: float
    slowest: Tuple[SpanRecord, ...]
    aggregates: Tuple[SpanAggregate, ...]
    counters: Mapping[str, int] = field(default_factory=dict)
    histograms: Mapping[str, Mapping[str, Any]] = field(
        default_factory=dict)
    #: Live-telemetry samples found in the journal (0 when the run had
    #: no heartbeat sampler; see :mod:`repro.obs.telemetry`).
    n_heartbeats: int = 0
    #: Lineage capsules found in the journal (0 unless the run was
    #: executed with provenance; see :mod:`repro.obs.provenance`).
    n_provenance: int = 0

    def rows(self, top: int = 10) -> List[str]:
        """Human-readable report lines."""
        heartbeat = (f", {self.n_heartbeats} heartbeats"
                     if self.n_heartbeats else "")
        capsules = (f", {self.n_provenance} capsules"
                    if self.n_provenance else "")
        lines = [
            f"journal         {self.n_events} events, {self.n_spans} "
            f"spans{heartbeat}{capsules}, run {self.run_seconds:.2f}s",
        ]
        if self.slowest:
            lines.append("slowest spans")
            for span in self.slowest[:top]:
                detail = " ".join(
                    f"{k}={v}" for k, v in sorted(span.attrs.items()))
                lines.append(
                    f"  {span.name:<24} {span.duration:9.3f}s"
                    + (f"  {detail}" if detail else ""))
        if self.aggregates:
            lines.append("span totals")
            for agg in self.aggregates[:top]:
                lines.append(
                    f"  {agg.name:<24} {agg.total_seconds:9.3f}s"
                    f"  x{agg.count}  max {agg.max_seconds:.3f}s")
        if self.counters:
            lines.append("hottest counters")
            hottest = sorted(self.counters.items(),
                             key=lambda kv: (-kv[1], kv[0]))
            for key, value in hottest[:top]:
                lines.append(f"  {key:<40} {value}")
        if self.histograms:
            lines.append("histograms")
            for key, summary in sorted(self.histograms.items())[:top]:
                # Empty histograms report null percentiles (see
                # Histogram.summary); render the count alone.
                p50, p99 = summary.get("p50"), summary.get("p99")
                quantiles = ("  (no samples)" if p50 is None
                             else f"  p50={p50:.4f}  p99={p99:.4f}")
                lines.append(
                    f"  {key:<40} n={summary.get('count', 0)}"
                    + quantiles)
        return lines


def aggregate_spans(spans: Sequence[SpanRecord]) -> List[SpanAggregate]:
    """Per-name rollups, heaviest total first."""
    totals: Dict[str, List[float]] = defaultdict(list)
    for span in spans:
        totals[span.name].append(span.duration)
    return sorted(
        (SpanAggregate(name=name, count=len(durations),
                       total_seconds=sum(durations),
                       max_seconds=max(durations))
         for name, durations in totals.items()),
        key=lambda agg: -agg.total_seconds)


def summarize_events(events: Sequence[Mapping[str, Any]]) -> JournalSummary:
    """Summarize replayed journal events (see :func:`.journal.read_journal`)."""
    spans = [SpanRecord.from_event(dict(e)) for e in events
             if e.get("type") == "span"]
    counters: Dict[str, int] = {}
    histograms: Dict[str, Mapping[str, Any]] = {}
    for event in events:
        # Snapshots are cumulative; the last one observed wins.
        if event.get("type") == "metrics":
            counters = dict(event.get("counters", {}))
            histograms = dict(event.get("histograms", {}))
    started = min((e.get("ts", 0.0) for e in events
                   if e.get("type") == "run_start"), default=None)
    ended = max((e.get("ts", 0.0) for e in events
                 if e.get("type") == "run_end"), default=None)
    if started is not None and ended is not None:
        run_seconds = max(0.0, float(ended) - float(started))
    elif spans:
        run_seconds = (max(s.start + s.duration for s in spans)
                       - min(s.start for s in spans))
    else:
        run_seconds = 0.0
    slowest = tuple(sorted(spans, key=lambda s: -s.duration))
    return JournalSummary(
        n_events=len(events),
        n_spans=len(spans),
        run_seconds=run_seconds,
        slowest=slowest,
        aggregates=tuple(aggregate_spans(spans)),
        counters=counters,
        histograms=histograms,
        n_heartbeats=sum(
            1 for e in events if e.get("type") == "heartbeat"),
        n_provenance=sum(
            1 for e in events if e.get("type") == "provenance"),
    )
