"""The JSONL run journal.

A :class:`RunJournal` streams one JSON object per line as the run
happens: a ``run_start`` header, a ``span`` event every time a span
closes (including spans adopted from process workers), periodic
``heartbeat`` events when live telemetry is enabled (see
:mod:`repro.obs.telemetry`), periodic or final ``metrics`` snapshots,
and a ``run_end`` footer.  Because events are appended as they occur, a
crashed run still leaves a readable journal up to the moment it died —
the property that makes journals useful for debugging in the first
place, and what lets ``tail -f`` (or the heartbeat tests) read a
journal that is still being written.

:func:`read_journal` replays a journal file back into event dicts;
``repro trace summarize RUN.jsonl`` is built on it (see
:mod:`repro.obs.summary`).
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, Collection, Dict, Iterator, List, Optional, Union

__all__ = ["JOURNAL_VERSION", "RunJournal", "iter_journal", "read_journal"]

#: Journal format version, stamped into the ``run_start`` event.
JOURNAL_VERSION = 1


class RunJournal:
    """Append-only JSONL event stream for one run."""

    def __init__(self, path: Union[str, Path]):
        self._path = Path(path)
        self._lock = threading.Lock()
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._file: Optional[Any] = self._path.open(
            "w", encoding="utf-8", buffering=1)
        self.write({"type": "run_start", "version": JOURNAL_VERSION,
                    "ts": round(time.time(), 6)})

    @property
    def path(self) -> Path:
        return self._path

    def write(self, event: Dict[str, Any]) -> None:
        """Append one event; a closed journal silently drops writes."""
        line = json.dumps(event, sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self._file is None:
                return
            self._file.write(line + "\n")

    def close(self, footer: Optional[Dict[str, Any]] = None) -> None:
        """Write the ``run_end`` footer (once) and release the file."""
        with self._lock:
            if self._file is None:
                return
            event = {"type": "run_end", "ts": round(time.time(), 6)}
            if footer:
                event.update(footer)
            self._file.write(json.dumps(
                event, sort_keys=True, separators=(",", ":")) + "\n")
            self._file.close()
            self._file = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def iter_journal(path: Union[str, Path], *,
                 types: Optional[Collection[str]] = None
                 ) -> Iterator[Dict[str, Any]]:
    """Yield a journal's events in order, skipping malformed lines.

    ``types`` keeps only events whose ``type`` is in the given set —
    e.g. ``types={"heartbeat"}`` replays just the live-telemetry
    samples without materializing the (much larger) span stream.

    Tolerating a torn final line means a journal from a crashed or
    still-running pipeline remains replayable.  A crash can tear the
    line anywhere — including inside a multi-byte UTF-8 sequence — so
    decoding replaces invalid bytes instead of raising; the mangled
    line then fails JSON parsing and is skipped like any other torn
    tail, leaving the readable prefix intact.
    """
    with Path(path).open("r", encoding="utf-8",
                         errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if isinstance(event, dict):
                if types is not None and event.get("type") not in types:
                    continue
                yield event


def read_journal(path: Union[str, Path], *,
                 types: Optional[Collection[str]] = None
                 ) -> List[Dict[str, Any]]:
    """Replay a journal file into a list of event dicts."""
    return list(iter_journal(path, types=types))
