"""The observability session and its ambient installation.

An :class:`Observability` object bundles the three pieces of
:mod:`repro.obs` — span tracer, metrics registry, and (optionally) a
JSONL run journal — for one pipeline run.  Library code never receives
it explicitly; it asks :func:`current` for whatever session is active
and records into that.  By default the active session is
:data:`NULL_OBS`, whose tracer and registry are no-ops, so instrumented
hot paths cost one module-global read when observability is off.

:func:`activate` installs a session for the duration of a ``with``
block.  The active session is a process-wide global rather than a
context variable on purpose: pool threads spawned by
``concurrent.futures`` do not inherit context variables, and shard work
running on those threads must see the run's session.  Process workers
instead build their own session and ship records back (see
:meth:`repro.obs.trace.Tracer.adopt`).
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterator, Optional, Union

from repro.obs.journal import RunJournal
from repro.obs.metrics import MetricsRegistry, NullMetrics
from repro.obs.profile import ProfileConfig, SpanProfiler
from repro.obs.provenance import ProvenanceRecorder
from repro.obs.telemetry import HeartbeatSampler, TelemetryConfig
from repro.obs.trace import NullTracer, Span, SpanRecord, Tracer

__all__ = ["NULL_OBS", "Observability", "activate", "current"]


class Observability:
    """One run's tracer + metrics + (optional) journal/profiler/sampler."""

    enabled = True

    def __init__(self, *, journal: Optional[Union[RunJournal, str]] = None,
                 profile: Optional[Union[ProfileConfig, bool]] = None,
                 telemetry: Optional[Union[TelemetryConfig, float,
                                           str]] = None):
        if journal is not None and not isinstance(journal, RunJournal):
            journal = RunJournal(journal)
        self.journal = journal
        self.tracer = Tracer(on_close=self._on_span_close)
        self.metrics = MetricsRegistry()
        self.profile: Optional[ProfileConfig] = None
        if profile:
            self.enable_profiling(
                profile if isinstance(profile, ProfileConfig) else None)
        self.telemetry: Optional[TelemetryConfig] = None
        self._sampler: Optional[HeartbeatSampler] = None
        #: Heartbeats collected when no journal is attached — how
        #: process workers buffer samples for the parent to adopt.
        self.heartbeats: list = []
        #: Lineage-capsule recorder; ``None`` until
        #: :meth:`enable_provenance`, so instrumented decision points
        #: pay one attribute check when the feature is off.
        self.provenance: Optional[ProvenanceRecorder] = None
        if telemetry is not None:
            self.enable_telemetry(TelemetryConfig.coerce(telemetry))
        self._finished = False

    def enable_profiling(self, config: Optional[ProfileConfig] = None
                         ) -> "Observability":
        """Attach a per-span resource profiler to the session tracer.

        Idempotent; subsequent calls replace the profiler config.  Must
        be called before the run opens its spans to profile all of them.
        """
        self.profile = config if config is not None else ProfileConfig()
        if self.tracer.profiler is not None:
            self.tracer.profiler.uninstall()
        self.tracer.profiler = SpanProfiler(self.profile).install()
        return self

    # -- telemetry ---------------------------------------------------------------

    def enable_telemetry(self, config: Optional[TelemetryConfig] = None
                         ) -> "Observability":
        """Arm the heartbeat sampler (started by :meth:`start_telemetry`).

        Also turns on the tracer's open-span registry so heartbeats can
        report what the run is doing.  Idempotent; a later call
        replaces the config of a sampler that has not started yet.
        """
        self.telemetry = config if config is not None else TelemetryConfig()
        self.tracer.track_open = True
        return self

    def start_telemetry(self) -> Optional[HeartbeatSampler]:
        """Start the armed sampler (no-op without a telemetry config).

        Heartbeats stream into the run journal when one is attached;
        otherwise they buffer in :attr:`heartbeats` (the process-worker
        path, adopted by the parent via :meth:`adopt_heartbeats`).
        """
        if self.telemetry is None:
            return None
        if self._sampler is None:
            sink = (self.journal.write if self.journal is not None
                    else self.heartbeats.append)
            self._sampler = HeartbeatSampler(
                self.telemetry, tracer=self.tracer, metrics=self.metrics,
                sink=sink)
        return self._sampler.start()

    def stop_telemetry(self) -> None:
        """Stop the sampler, emitting its final heartbeat (idempotent)."""
        if self._sampler is not None:
            self._sampler.stop()

    def adopt_heartbeats(self, events) -> None:
        """Graft heartbeats sampled by a worker session into this one.

        The telemetry twin of :meth:`repro.obs.trace.Tracer.adopt`:
        events go to the journal when one is attached, otherwise onto
        this session's own buffer.  Heartbeats are journal-only either
        way — they never enter pipeline event output.
        """
        for event in events:
            if self.journal is not None:
                self.journal.write(event)
            else:
                self.heartbeats.append(event)

    # -- provenance --------------------------------------------------------------

    def enable_provenance(self) -> "Observability":
        """Attach a lineage-capsule recorder to the session (idempotent).

        Capsules stream into the run journal when one is attached and
        always buffer on the recorder, so ``RunResult.provenance`` works
        without a journal.  Recording is journal-only: pipeline event
        output is byte-identical with provenance on or off.
        """
        if self.provenance is None:
            self.provenance = ProvenanceRecorder(journal=self.journal)
        return self

    def adopt_provenance(self, capsules) -> None:
        """Graft capsules captured by a worker session into this one.

        The provenance twin of :meth:`adopt_heartbeats`; workers buffer
        capsules (no journal) and the parent journals them on arrival.
        """
        if not capsules:
            return
        if self.provenance is None:
            self.enable_provenance()
        self.provenance.adopt(capsules)

    # -- recording ---------------------------------------------------------------

    def span(self, name: str, *, parent: Optional[int] = None,
             **attrs: Any) -> Span:
        """Open a span on the session tracer (context manager)."""
        return self.tracer.span(name, parent=parent, **attrs)

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the calling thread's innermost open span."""
        span = self.tracer.current_span()
        if span is not None:
            span.set_attrs(**attrs)

    def _on_span_close(self, record: SpanRecord) -> None:
        if self.journal is None:
            return
        self.journal.write(record.as_event())
        # Profiled spans additionally stream a dedicated ``profile``
        # event, so resource trails can be filtered without replaying
        # every span.  Spans adopted from process workers pass through
        # here too, profile attributes and all.
        readings = record.attrs.get("profile")
        if readings:
            self.journal.write({
                "type": "profile",
                "span_id": record.span_id,
                "name": record.name,
                "duration": round(record.duration, 6),
                "worker": record.worker,
                "profile": readings,
            })

    # -- results -----------------------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The registry snapshot (``--metrics-json`` payload)."""
        return self.metrics.snapshot()

    def finish(self) -> None:
        """Seal the session: final metrics snapshot + journal footer.

        Idempotent; the tracer and registry remain readable afterwards.
        """
        if self._finished:
            return
        self._finished = True
        if self.tracer.profiler is not None:
            self.tracer.profiler.uninstall()
        if self.journal is not None:
            snapshot = self.metrics.snapshot()
            snapshot["type"] = "metrics"
            self.journal.write(snapshot)
            self.journal.close({"n_spans": len(self.tracer.spans())})


class _NullObservability:
    """The always-off session; the module default."""

    enabled = False

    def __init__(self) -> None:
        self.tracer = NullTracer()
        self.metrics = NullMetrics()
        self.journal = None
        self.profile = None
        self.telemetry = None
        self.heartbeats: list = []
        self.provenance = None

    def span(self, name: str, *, parent: Optional[int] = None,
             **attrs: Any):
        return self.tracer.span(name)

    def annotate(self, **attrs: Any) -> None:
        return None

    def enable_telemetry(self, config: Any = None) -> "_NullObservability":
        return self

    def start_telemetry(self) -> None:
        return None

    def stop_telemetry(self) -> None:
        return None

    def adopt_heartbeats(self, events: Any) -> None:
        return None

    def enable_provenance(self) -> "_NullObservability":
        return self

    def adopt_provenance(self, capsules: Any) -> None:
        return None

    def metrics_snapshot(self) -> Dict[str, Any]:
        return self.metrics.snapshot()

    def finish(self) -> None:
        return None


#: The disabled session served by :func:`current` outside any run.
NULL_OBS = _NullObservability()

_active: Union[Observability, _NullObservability] = NULL_OBS


def current() -> Union[Observability, _NullObservability]:
    """The active observability session (the no-op one by default)."""
    return _active


@contextlib.contextmanager
def activate(obs: Observability) -> Iterator[Observability]:
    """Install ``obs`` as the active session for the ``with`` block.

    Sessions are installed process-wide (see module docstring); nested
    activations restore the previous session on exit.
    """
    global _active
    previous = _active
    _active = obs
    try:
        yield obs
    finally:
        _active = previous
