"""The metrics registry: counters, gauges, and fixed-bucket histograms.

Hot paths increment named series through a :class:`MetricsRegistry`;
a snapshot of every series is JSON-serializable, so it can be streamed
into the run journal, written to ``--metrics-json``, and merged across
process workers (:meth:`MetricsRegistry.merge`).

Series are identified by a name plus optional labels —
``curation.records_curated{country=SY}`` — following the Prometheus
convention so downstream tooling has nothing new to learn.  Histograms
use fixed bucket upper bounds and report percentile *summaries* by
linear interpolation inside the owning bucket: cheap to update, bounded
memory, and mergeable by adding bucket counts.

The :class:`NullMetrics` twin makes every operation a no-op so
instrumentation costs nothing when no observability session is active.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, Mapping, Optional, \
    Sequence, Tuple

from repro.obs.export import escape_label_value, snapshot_to_openmetrics

__all__ = ["ATTEMPT_BUCKETS", "Counter", "Gauge", "Histogram",
           "MetricsRegistry", "NullMetrics", "series_key",
           "snapshot_to_openmetrics"]

#: Default histogram buckets: sub-millisecond to minutes (seconds scale).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0)

#: Buckets for small discrete counts — retry attempts per operation
#: (:mod:`repro.resilience`), items per page, and similar distributions
#: where each integer up to a handful matters.
ATTEMPT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 12.0, 16.0)


def series_key(name: str, labels: Mapping[str, Any]) -> str:
    """The canonical series identifier: ``name{k=v,...}`` (labels sorted).

    Label *values* are escaped so the key syntax survives hostile
    content — a route label like ``/events?cursor=a,b`` cannot smuggle
    in an extra clause or truncate the key; see
    :func:`repro.obs.export.split_series_key` for the lossless inverse.
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={escape_label_value(str(labels[k]))}"
                     for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket distribution with interpolated percentile summaries."""

    __slots__ = ("_lock", "buckets", "counts", "count", "total",
                 "minimum", "maximum")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        self._lock = threading.Lock()
        self.buckets = tuple(sorted(float(b) for b in buckets))
        # counts[i] observes values <= buckets[i]; the last slot is the
        # +Inf overflow bucket.
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            index = len(self.buckets)
            for i, upper in enumerate(self.buckets):
                if value <= upper:
                    index = i
                    break
            self.counts[index] += 1
            self.count += 1
            self.total += value
            self.minimum = min(self.minimum, value)
            self.maximum = max(self.maximum, value)

    def percentiles(self, qs: Sequence[float]
                    ) -> Dict[float, Optional[float]]:
        """Several percentiles (0-100 each) from one bucket walk.

        The single shared interpolation: :meth:`summary` and the
        heartbeat sampler (:mod:`repro.obs.telemetry`) both call this
        instead of walking the buckets once per quantile.  The overflow
        bucket has no upper bound, so percentiles landing there report
        the observed maximum.  Interpolated values are clamped to the
        observed ``[min, max]`` range so a sparse bucket can never
        report a percentile outside the data.  An empty histogram has
        no percentiles: every requested quantile maps to ``None``.
        """
        if self.count == 0:
            return {q: None for q in qs}
        out: Dict[float, Optional[float]] = {}
        # One pass: ranks are visited in ascending order, and the
        # bucket cursor only ever moves forward.
        seen = 0
        index = 0
        for q in sorted(qs):
            rank = (q / 100.0) * self.count
            value: Optional[float] = self.maximum
            while index < len(self.counts):
                n = self.counts[index]
                if n and seen + n >= rank:
                    if index >= len(self.buckets):
                        value = self.maximum
                    else:
                        lower = (self.buckets[index - 1] if index > 0
                                 else min(self.minimum,
                                          self.buckets[index]))
                        upper = self.buckets[index]
                        fraction = (rank - seen) / n
                        interpolated = lower + (upper - lower) * fraction
                        value = min(max(interpolated, self.minimum),
                                    self.maximum)
                    break
                seen += n
                index += 1
            out[q] = value
        return out

    def percentile(self, q: float) -> Optional[float]:
        """The ``q``-th percentile (0-100); see :meth:`percentiles`."""
        return self.percentiles((q,))[q]

    def summary(self) -> Dict[str, Any]:
        """JSON form: shape stats, key percentiles, and raw buckets.

        An empty histogram carries no observed shape: ``min``/``max``
        and the percentiles are ``None`` (JSON ``null``) rather than a
        fabricated 0.0 or NaN leaking into ``--metrics-json``.
        """
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": None, "max": None,
                    "p50": None, "p90": None, "p99": None,
                    "buckets": list(self.buckets),
                    "bucket_counts": list(self.counts)}
        quantiles = self.percentiles((50, 90, 99))
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "min": round(self.minimum, 6),
            "max": round(self.maximum, 6),
            "p50": round(quantiles[50], 6),
            "p90": round(quantiles[90], 6),
            "p99": round(quantiles[99], 6),
            "buckets": list(self.buckets),
            "bucket_counts": list(self.counts),
        }

    def merge_summary(self, summary: Mapping[str, Any]) -> None:
        """Fold a snapshot from another registry into this histogram."""
        if tuple(summary.get("buckets", ())) != self.buckets:
            raise ValueError("histogram bucket bounds do not match")
        if not summary.get("count"):
            return
        with self._lock:
            for i, n in enumerate(summary["bucket_counts"]):
                self.counts[i] += int(n)
            self.count += int(summary["count"])
            self.total += float(summary["sum"])
            self.minimum = min(self.minimum, float(summary["min"]))
            self.maximum = max(self.maximum, float(summary["max"]))


class MetricsRegistry:
    """Creates and holds every metric series of one observability session."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- series accessors (create on first use) ----------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = series_key(name, labels)
        with self._lock:
            try:
                return self._counters[key]
            except KeyError:
                metric = self._counters[key] = Counter()
                return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = series_key(name, labels)
        with self._lock:
            try:
                return self._gauges[key]
            except KeyError:
                metric = self._gauges[key] = Gauge()
                return metric

    def histogram(self, name: str,
                  buckets: Optional[Iterable[float]] = None,
                  **labels: Any) -> Histogram:
        key = series_key(name, labels)
        with self._lock:
            try:
                return self._histograms[key]
            except KeyError:
                metric = self._histograms[key] = Histogram(
                    tuple(buckets) if buckets is not None
                    else DEFAULT_BUCKETS)
                return metric

    # -- snapshots ---------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Every series, JSON-serializable (journal / ``--metrics-json``)."""
        with self._lock:
            return {
                "counters": {k: c.value
                             for k, c in sorted(self._counters.items())},
                "gauges": {k: g.value
                           for k, g in sorted(self._gauges.items())},
                "histograms": {k: h.summary()
                               for k, h in sorted(self._histograms.items())},
            }

    def histograms(self) -> Dict[str, Histogram]:
        """The live histogram series (key → metric), sorted by key.

        Readers like the heartbeat sampler use this to compute just the
        percentiles they need (:meth:`Histogram.percentiles`) instead of
        paying for a full :meth:`snapshot` per tick.
        """
        with self._lock:
            return dict(sorted(self._histograms.items()))

    def to_openmetrics(self) -> str:
        """The registry in Prometheus/OpenMetrics text exposition.

        See :func:`snapshot_to_openmetrics`; this is the live-registry
        form (``repro metrics export`` also accepts a journal's last
        ``metrics`` snapshot).
        """
        return snapshot_to_openmetrics(self.snapshot())

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a worker's snapshot in: counters add, gauges last-write,
        histograms merge bucket counts."""
        for key, value in snapshot.get("counters", {}).items():
            self.counter(key).inc(int(value))
        for key, value in snapshot.get("gauges", {}).items():
            self.gauge(key).set(float(value))
        for key, summary in snapshot.get("histograms", {}).items():
            self.histogram(key, buckets=summary.get("buckets")) \
                .merge_summary(summary)


class _NullMetric:
    """Accepts every recording call and does nothing."""

    __slots__ = ()
    value = 0

    def inc(self, n: int = 1) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


_NULL_METRIC = _NullMetric()


class NullMetrics:
    """The disabled registry twin handed out with the null tracer."""

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, **labels: Any) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str,
                  buckets: Optional[Iterable[float]] = None,
                  **labels: Any) -> _NullMetric:
        return _NULL_METRIC

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def histograms(self) -> Dict[str, Histogram]:
        return {}

    def to_openmetrics(self) -> str:
        return snapshot_to_openmetrics(self.snapshot())

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        return None
