"""Hierarchical span tracing.

A :class:`Tracer` records what a run did as a tree of *spans* — named,
timed intervals with attributes.  Spans are opened as context managers
and nest through a per-thread stack, so instrumented code never passes
span handles around:

    with tracer.span("stage:curate"):
        with tracer.span("curate.country", country="SY"):
            ...

Work handed to a pool thread starts with an empty stack; the scheduler
captures the submitting thread's current span id and passes it as an
explicit ``parent`` so shard spans still hang off the run's tree.  Work
in a *process* worker records into its own tracer, and the parent
:meth:`Tracer.adopt`\\ s the returned records — remapping span ids so the
child tree grafts under the shard's parent without collisions.

Timing uses the monotonic :func:`time.perf_counter` anchored once to the
wall clock, so span starts are comparable across workers while durations
never go backwards.  The :class:`NullTracer` is the disabled twin: every
call is a cheap no-op, which is what makes library-level instrumentation
free when no observability session is active.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = ["NullTracer", "Span", "SpanRecord", "Tracer"]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: the unit the journal and exporters consume."""

    span_id: int
    parent_id: Optional[int]
    name: str
    #: Wall-clock start (seconds since the epoch, monotonic within a run).
    start: float
    #: Wall-clock duration in seconds.
    duration: float
    #: ``"<pid>/<thread name>"`` of the worker that ran the span.
    worker: str
    attrs: Dict[str, Any] = field(default_factory=dict)

    def as_event(self) -> Dict[str, Any]:
        """The span's journal-event form (JSON-serializable)."""
        return {
            "type": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": round(self.start, 6),
            "duration": round(self.duration, 6),
            "worker": self.worker,
            "attrs": self.attrs,
        }

    @classmethod
    def from_event(cls, event: Dict[str, Any]) -> "SpanRecord":
        """Rebuild a record from its journal event (see :mod:`.journal`)."""
        return cls(
            span_id=int(event["span_id"]),
            parent_id=(int(event["parent_id"])
                       if event.get("parent_id") is not None else None),
            name=str(event["name"]),
            start=float(event["start"]),
            duration=float(event["duration"]),
            worker=str(event.get("worker", "?")),
            attrs=dict(event.get("attrs", {})),
        )


class Span:
    """An open span; closes (and is recorded) when the ``with`` exits."""

    __slots__ = ("_tracer", "span_id", "parent_id", "name", "attrs",
                 "_start_perf", "_start_wall", "_profile", "_path",
                 "duration")

    def __init__(self, tracer: "Tracer", span_id: int,
                 parent_id: Optional[int], name: str,
                 attrs: Dict[str, Any]):
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self._start_perf = 0.0
        self._start_wall = 0.0
        self._profile = None
        self._path: Optional[str] = None
        self.duration = 0.0

    def set_attrs(self, **attrs: Any) -> "Span":
        """Attach attributes to the span (last write per key wins)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        profiler = self._tracer.profiler
        if profiler is not None:
            self._profile = profiler.begin()
        self._start_perf = time.perf_counter()
        self._start_wall = self._tracer.wall(self._start_perf)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self._start_perf
        profiler = self._tracer.profiler
        if profiler is not None and self._profile is not None:
            readings = profiler.end(self._profile)
            if readings:
                self.attrs["profile"] = readings
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)


class _NullSpan:
    """The do-nothing span the :class:`NullTracer` hands out."""

    __slots__ = ()
    duration = 0.0

    def set_attrs(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects a run's span tree; safe to use from many threads."""

    enabled = True

    def __init__(self, on_close: Optional[Callable[[SpanRecord], None]]
                 = None):
        self._on_close = on_close
        #: Optional :class:`repro.obs.profile.SpanProfiler`; when set,
        #: every span samples resource counters on enter/exit.
        self.profiler = None
        #: When True, the tracer maintains a registry of currently-open
        #: span paths (``run/stage:curate/exec.shard``) so the
        #: heartbeat sampler (:mod:`repro.obs.telemetry`) can report
        #: what the run is doing *right now*.  Off by default: the span
        #: hot path pays only this boolean check.
        self.track_open = False
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._records: List[SpanRecord] = []
        self._open: Dict[int, str] = {}
        self._stack = threading.local()
        # Anchor the monotonic clock to the wall once, so starts are
        # comparable across threads and processes without ever jumping.
        self._perf0 = time.perf_counter()
        self._wall0 = time.time()

    # -- clock -------------------------------------------------------------------

    def wall(self, perf: float) -> float:
        """Map a perf_counter reading onto the run's wall-clock timeline."""
        return self._wall0 + (perf - self._perf0)

    # -- span lifecycle ----------------------------------------------------------

    def span(self, name: str, *, parent: Optional[int] = None,
             **attrs: Any) -> Span:
        """Open a span; parent defaults to the thread's innermost span."""
        parent_id = parent if parent is not None else self.current_id()
        with self._lock:
            span_id = next(self._ids)
        return Span(self, span_id, parent_id, name, dict(attrs))

    def current_id(self) -> Optional[int]:
        """The innermost open span id on this thread (or None)."""
        stack = getattr(self._stack, "spans", None)
        return stack[-1].span_id if stack else None

    def current_span(self) -> Optional[Span]:
        """The innermost open span on this thread (or None)."""
        stack = getattr(self._stack, "spans", None)
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        stack = getattr(self._stack, "spans", None)
        if stack is None:
            stack = []
            self._stack.spans = stack
        if self.track_open:
            parent_path = stack[-1]._path if stack else None
            with self._lock:
                if parent_path is None and span.parent_id is not None:
                    # Pool-thread spans start on an empty stack with an
                    # explicit parent id; resolve lineage through the
                    # open registry so their path keeps the full chain.
                    parent_path = self._open.get(span.parent_id)
                span._path = (f"{parent_path}/{span.name}"
                              if parent_path else span.name)
                self._open[span.span_id] = span._path
        stack.append(span)

    def open_paths(self) -> List[str]:
        """Paths of every currently-open span, sorted (all threads).

        Empty unless :attr:`track_open` is enabled — the heartbeat
        sampler turns it on for its in-run "what is the run doing"
        report.
        """
        with self._lock:
            return sorted(self._open.values())

    def _pop(self, span: Span) -> None:
        stack = getattr(self._stack, "spans", None)
        if stack and stack[-1] is span:
            stack.pop()
        if self.track_open:
            with self._lock:
                self._open.pop(span.span_id, None)
        record = SpanRecord(
            span_id=span.span_id, parent_id=span.parent_id,
            name=span.name, start=span._start_wall,
            duration=span.duration, worker=self._worker_name(),
            attrs=dict(span.attrs))
        self._emit(record)

    @staticmethod
    def _worker_name() -> str:
        return f"{os.getpid()}/{threading.current_thread().name}"

    def _emit(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)
        if self._on_close is not None:
            self._on_close(record)

    # -- adoption ----------------------------------------------------------------

    def adopt(self, records: Sequence[SpanRecord],
              parent_id: Optional[int] = None) -> None:
        """Graft spans recorded by another tracer under ``parent_id``.

        Process workers collect into their own tracer whose ids collide
        with ours; every adopted span gets a fresh id (links inside the
        adopted tree are preserved) and the tree's roots are re-parented
        to ``parent_id``.
        """
        remap: Dict[int, int] = {}
        with self._lock:
            for record in records:
                remap[record.span_id] = next(self._ids)
        for record in records:
            mapped_parent = (remap.get(record.parent_id, parent_id)
                             if record.parent_id is not None else parent_id)
            self._emit(SpanRecord(
                span_id=remap[record.span_id], parent_id=mapped_parent,
                name=record.name, start=record.start,
                duration=record.duration, worker=record.worker,
                attrs=dict(record.attrs)))

    # -- results -----------------------------------------------------------------

    def spans(self) -> List[SpanRecord]:
        """Every finished span so far (insertion order = close order)."""
        with self._lock:
            return list(self._records)


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Instrumented library code talks to whatever
    :func:`repro.obs.current` returns; with no active session that is a
    tracer of this class, so the cost of instrumentation is one global
    read and a trivially inlined call.
    """

    enabled = False
    track_open = False

    def span(self, name: str, *, parent: Optional[int] = None,
             **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def current_id(self) -> Optional[int]:
        return None

    def open_paths(self) -> List[str]:
        return []

    def current_span(self) -> None:
        return None

    def adopt(self, records: Sequence[SpanRecord],
              parent_id: Optional[int] = None) -> None:
        return None

    def spans(self) -> List[SpanRecord]:
        return []
