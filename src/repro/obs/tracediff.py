"""Span-tree diffing (``repro trace diff``).

A perf-baseline comparison says *that* a run got slower; a trace diff
says *where*.  Both runs' journals are replayed into span trees, every
span is keyed by its **path** — names joined root-to-leaf, e.g.
``run/stage:curate/exec.shard/curate.country`` — and per-path wall
seconds are compared.  The result attributes the total delta to
specific paths, split into the top-N regressed (slower in B) and
improved (faster in B), so "curate got 2s slower" becomes "the shard
spans under curate got 2s slower".

Paths, not span ids, are the join key: ids are allocation order and
differ between runs, while the path of a pipeline stage is stable
across runs of the same configuration.  Spans adopted from process
workers diff the same way — adoption preserved their lineage, so their
paths resolve through the shard span they ran under.

Diffing a journal against itself yields a delta of exactly zero on
every path — the CI smoke test asserts this self-identity.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

__all__ = ["PathDelta", "TraceDiff", "diff_events", "span_path_seconds"]

#: Deltas smaller than this (seconds) are treated as unchanged.
DEFAULT_EPSILON = 0.001


@dataclass(frozen=True)
class PathDelta:
    """One span path's wall-time change between two runs."""

    path: str
    count_a: int
    count_b: int
    seconds_a: float
    seconds_b: float

    @property
    def delta(self) -> float:
        """Positive = slower in run B."""
        return self.seconds_b - self.seconds_a

    def row(self) -> str:
        return (f"  {self.path:<44} {self.seconds_a:9.3f}s -> "
                f"{self.seconds_b:9.3f}s  ({self.delta:+9.3f}s, "
                f"x{self.count_a}->x{self.count_b})")


@dataclass(frozen=True)
class TraceDiff:
    """The wall-time delta of run B against run A, by span path."""

    label_a: str
    label_b: str
    total_a: float
    total_b: float
    #: Every path seen in either run, largest absolute delta first.
    deltas: Tuple[PathDelta, ...]
    epsilon: float = DEFAULT_EPSILON

    @property
    def total_delta(self) -> float:
        return self.total_b - self.total_a

    @property
    def changed(self) -> Tuple[PathDelta, ...]:
        return tuple(d for d in self.deltas
                     if abs(d.delta) > self.epsilon)

    def regressed(self, top: int = 5) -> Tuple[PathDelta, ...]:
        """The top paths that got slower in B."""
        return tuple(sorted(
            (d for d in self.changed if d.delta > 0),
            key=lambda d: -d.delta))[:top]

    def improved(self, top: int = 5) -> Tuple[PathDelta, ...]:
        """The top paths that got faster in B."""
        return tuple(sorted(
            (d for d in self.changed if d.delta < 0),
            key=lambda d: d.delta))[:top]

    def rows(self, top: int = 5) -> List[str]:
        """Human-readable diff report."""
        lines = [
            f"trace diff      {self.label_a} -> {self.label_b}",
            f"  run seconds   {self.total_a:.3f}s -> {self.total_b:.3f}s"
            f"  (delta {self.total_delta:+.3f}s)",
        ]
        regressed, improved = self.regressed(top), self.improved(top)
        if not regressed and not improved:
            lines.append(
                f"  zero delta: no span path changed by more than "
                f"{self.epsilon:g}s across {len(self.deltas)} paths")
            return lines
        if regressed:
            lines.append(f"slower in {self.label_b}")
            lines.extend(d.row() for d in regressed)
        if improved:
            lines.append(f"faster in {self.label_b}")
            lines.extend(d.row() for d in improved)
        return lines


def span_path_seconds(events: Sequence[Mapping[str, Any]]
                      ) -> Dict[str, Tuple[int, float]]:
    """Per-span-path ``(count, total seconds)`` from journal events.

    Paths are resolved by walking each span's parent chain through the
    journal's own id space (ids are only meaningful within one
    journal, which is why the *path* is the cross-run join key).
    """
    spans = {int(e["span_id"]): e for e in events
             if e.get("type") == "span"}
    paths: Dict[int, str] = {}

    def path_of(span_id: int) -> str:
        cached = paths.get(span_id)
        if cached is not None:
            return cached
        event = spans[span_id]
        parent_id = event.get("parent_id")
        name = str(event.get("name", "?"))
        if parent_id is not None and int(parent_id) in spans:
            path = f"{path_of(int(parent_id))}/{name}"
        else:
            path = name
        paths[span_id] = path
        return path

    totals: Dict[str, List[float]] = defaultdict(list)
    for span_id, event in spans.items():
        totals[path_of(span_id)].append(float(event.get("duration", 0.0)))
    return {path: (len(durations), sum(durations))
            for path, durations in totals.items()}


def _run_seconds(events: Sequence[Mapping[str, Any]]) -> float:
    started = min((e.get("ts", 0.0) for e in events
                   if e.get("type") == "run_start"), default=None)
    ended = max((e.get("ts", 0.0) for e in events
                 if e.get("type") == "run_end"), default=None)
    if started is not None and ended is not None:
        return max(0.0, float(ended) - float(started))
    spans = [e for e in events if e.get("type") == "span"]
    if not spans:
        return 0.0
    return (max(float(e["start"]) + float(e["duration"]) for e in spans)
            - min(float(e["start"]) for e in spans))


def diff_events(events_a: Sequence[Mapping[str, Any]],
                events_b: Sequence[Mapping[str, Any]], *,
                label_a: str = "A", label_b: str = "B",
                epsilon: float = DEFAULT_EPSILON) -> TraceDiff:
    """Diff two replayed journals' span trees (B against A)."""
    by_path_a = span_path_seconds(events_a)
    by_path_b = span_path_seconds(events_b)
    deltas = []
    for path in sorted(set(by_path_a) | set(by_path_b)):
        count_a, seconds_a = by_path_a.get(path, (0, 0.0))
        count_b, seconds_b = by_path_b.get(path, (0, 0.0))
        deltas.append(PathDelta(
            path=path, count_a=count_a, count_b=count_b,
            seconds_a=round(seconds_a, 6), seconds_b=round(seconds_b, 6)))
    deltas.sort(key=lambda d: (-abs(d.delta), d.path))
    return TraceDiff(
        label_a=label_a, label_b=label_b,
        total_a=round(_run_seconds(events_a), 6),
        total_b=round(_run_seconds(events_b), 6),
        deltas=tuple(deltas), epsilon=epsilon)
