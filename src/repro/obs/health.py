"""Run-health scorecard: paper-fidelity and operational checks.

A measurement platform is healthy when its *signal* is right, not
merely when it finished.  After every pipeline run a
:class:`HealthPolicy` grades the run's statistics — headline event
populations (the paper's 219-shutdown / 714-outage shape), match
fractions, quarantine and cache behaviour, stage wall time — against
declared targets with tolerances.  Each check lands on ``pass``,
``warn``, or ``fail``; the report's overall grade is the worst check.

The report is machine-readable end to end: it becomes a ``health``
event in the run journal (``repro health RUN.jsonl`` replays it), the
``fidelity`` half of a stored perf baseline
(:mod:`repro.obs.baseline`), and a plain result object with ``rows()``
for terminal rendering.

Check modes:

- ``relative`` — deviation is ``|value - target| / |target|``; the
  tolerances are fractional deviations.  Used for the paper-population
  targets, where the synthetic world reproduces the *shape* rather
  than the exact counts.
- ``ceiling`` — deviation is how far the value overshoots the target,
  in the statistic's own units.  Used for budgets: quarantined
  countries, stage wall time.
- ``info`` — always passes; the value is recorded for trend tracking
  (cache hit rate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, \
    Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.pipeline import PipelineResult
    from repro.exec.stats import ExecStats

__all__ = ["CheckResult", "HealthCheck", "HealthPolicy", "HealthReport",
           "default_policy", "evaluate_run", "run_statistics"]

#: Grade ordering; the report's grade is the worst across checks.
GRADES = ("pass", "warn", "fail")

MODES = ("relative", "ceiling", "info")


@dataclass(frozen=True, kw_only=True)
class HealthCheck:
    """One statistic's target and its tolerance bands."""

    #: Key into the run-statistics mapping (see :func:`run_statistics`).
    name: str
    #: The declared target value (ignored in ``info`` mode).
    target: float = 0.0
    #: Deviation beyond which the check grades ``warn``.
    warn: float = 0.0
    #: Deviation beyond which the check grades ``fail``.
    fail: float = 0.0
    mode: str = "relative"
    #: Human context (e.g. the paper table the target comes from).
    note: str = ""

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(
                f"unknown check mode {self.mode!r}; expected one of "
                f"{MODES}")
        if self.mode != "info" and self.fail < self.warn:
            raise ValueError(
                f"{self.name}: fail tolerance {self.fail} must be >= "
                f"warn tolerance {self.warn}")

    def grade(self, value: Optional[float]) -> "CheckResult":
        """Grade one observed value against this check."""
        if value is None:
            return CheckResult(check=self, value=None, deviation=None,
                               grade="warn")
        value = float(value)
        if self.mode == "info":
            return CheckResult(check=self, value=value, deviation=0.0,
                               grade="pass")
        if self.mode == "ceiling":
            deviation = max(0.0, value - self.target)
        else:
            scale = max(abs(self.target), 1e-12)
            deviation = abs(value - self.target) / scale
        if deviation > self.fail:
            grade = "fail"
        elif deviation > self.warn:
            grade = "warn"
        else:
            grade = "pass"
        return CheckResult(check=self, value=value,
                           deviation=round(deviation, 6), grade=grade)


@dataclass(frozen=True)
class CheckResult:
    """One graded check: observed value vs the declared target."""

    check: HealthCheck
    value: Optional[float]
    deviation: Optional[float]
    grade: str

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.check.name,
            "mode": self.check.mode,
            "target": self.check.target,
            "warn": self.check.warn,
            "fail": self.check.fail,
            "note": self.check.note,
            "value": self.value,
            "deviation": self.deviation,
            "grade": self.grade,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CheckResult":
        check = HealthCheck(
            name=str(data["name"]), mode=str(data.get("mode", "relative")),
            target=float(data.get("target", 0.0)),
            warn=float(data.get("warn", 0.0)),
            fail=float(data.get("fail", 0.0)),
            note=str(data.get("note", "")))
        value = data.get("value")
        deviation = data.get("deviation")
        return cls(check=check,
                   value=None if value is None else float(value),
                   deviation=None if deviation is None
                   else float(deviation),
                   grade=str(data.get("grade", "warn")))


@dataclass(frozen=True)
class HealthReport:
    """The graded scorecard of one run."""

    grade: str
    results: Tuple[CheckResult, ...]
    #: The full statistics mapping the checks were graded over — kept
    #: so baselines and journals can track uncovered statistics too.
    stats: Mapping[str, float] = field(default_factory=dict)

    @property
    def failed(self) -> Tuple[CheckResult, ...]:
        return tuple(r for r in self.results if r.grade == "fail")

    @property
    def warned(self) -> Tuple[CheckResult, ...]:
        return tuple(r for r in self.results if r.grade == "warn")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "grade": self.grade,
            "checks": [r.as_dict() for r in self.results],
            "stats": {k: self.stats[k] for k in sorted(self.stats)},
        }

    def as_event(self) -> Dict[str, Any]:
        """The report's journal-event form."""
        event = self.as_dict()
        event["type"] = "health"
        return event

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HealthReport":
        results = tuple(CheckResult.from_dict(c)
                        for c in data.get("checks", ()))
        return cls(grade=str(data.get("grade", "warn")), results=results,
                   stats=dict(data.get("stats", {})))

    def rows(self) -> List[str]:
        """Human-readable scorecard lines."""
        lines = [f"health          {self.grade.upper()} "
                 f"({len(self.results)} checks: "
                 f"{sum(r.grade == 'pass' for r in self.results)} pass, "
                 f"{len(self.warned)} warn, {len(self.failed)} fail)"]
        for result in self.results:
            check = result.check
            value = ("missing" if result.value is None
                     else f"{result.value:g}")
            if check.mode == "info":
                detail = "(informational)"
            elif check.mode == "ceiling":
                detail = (f"budget {check.target:g} "
                          f"(warn >+{check.warn:g}, fail >+{check.fail:g})")
            else:
                detail = (f"target {check.target:g} "
                          f"±{check.warn:.0%}/{check.fail:.0%}")
            lines.append(
                f"  [{result.grade:<4}] {check.name:<28} {value:>10}  "
                f"{detail}")
        return lines


@dataclass(frozen=True, kw_only=True)
class HealthPolicy:
    """The set of checks graded after a run."""

    checks: Tuple[HealthCheck, ...] = ()

    def evaluate(self, stats: Mapping[str, float]) -> HealthReport:
        """Grade ``stats`` against every check (worst grade wins)."""
        results = tuple(check.grade(stats.get(check.name))
                        for check in self.checks)
        worst = max((GRADES.index(r.grade) for r in results), default=0)
        return HealthReport(grade=GRADES[worst], results=results,
                            stats=dict(stats))


def default_policy() -> HealthPolicy:
    """The paper-fidelity scorecard (Bischof et al., SIGCOMM 2023).

    Targets are the paper's headline populations; tolerances are wide
    because the synthetic world reproduces the *shape* of each result,
    not the exact census (see EXPERIMENTS.md).  A run that drifts past
    the warn band has probably changed behaviour; past the fail band it
    no longer reproduces the paper.
    """
    return HealthPolicy(checks=(
        HealthCheck(name="events.union_shutdowns", target=219,
                    warn=0.25, fail=0.60,
                    note="Table 2 union shutdown set"),
        HealthCheck(name="events.spontaneous_outages", target=714,
                    warn=0.25, fail=0.60,
                    note="Table 2 spontaneous outages"),
        HealthCheck(name="events.ioda_shutdowns", target=182,
                    warn=0.35, fail=0.75,
                    note="Table 2 IODA shutdown events"),
        HealthCheck(name="events.kio_shutdowns", target=82,
                    warn=0.45, fail=0.80,
                    note="Table 2 KIO country-level entries"),
        HealthCheck(name="countries.shutdown", target=35,
                    warn=0.45, fail=0.80,
                    note="Table 2 shutdown countries"),
        HealthCheck(name="countries.outage", target=150,
                    warn=0.20, fail=0.50,
                    note="Table 2 outage countries"),
        HealthCheck(name="match.kio_matched_fraction", target=45 / 82,
                    warn=0.35, fail=0.70,
                    note="Table 2 KIO entries matched to IODA"),
        HealthCheck(name="match.ioda_matched_fraction", target=152 / 182,
                    warn=0.20, fail=0.50,
                    note="Table 2 IODA shutdowns matched to KIO"),
        HealthCheck(name="resilience.quarantined", target=0,
                    warn=0, fail=5, mode="ceiling",
                    note="countries dropped by the resilience layer"),
        HealthCheck(name="cache.hit_rate", mode="info",
                    note="shard-cache effectiveness"),
        HealthCheck(name="perf.total_seconds", target=900,
                    warn=0, fail=1800, mode="ceiling",
                    note="end-to-end wall-time budget"),
    ))


def run_statistics(result: "PipelineResult",
                   stats: Optional["ExecStats"] = None
                   ) -> Dict[str, float]:
    """The statistics a health policy grades, from one run's outputs.

    Every value is a plain float so the mapping serializes into the
    journal and into perf baselines unchanged.
    """
    merged = result.merged
    kio_total = len(merged.kio_full_network)
    ioda_shutdowns = len(merged.ioda_shutdowns())
    out: Dict[str, float] = {
        "events.kio_shutdowns": float(kio_total),
        "events.ioda_shutdowns": float(ioda_shutdowns),
        "events.spontaneous_outages": float(len(merged.ioda_outages())),
        "events.union_shutdowns": float(merged.total_shutdown_events()),
        "countries.shutdown": float(len(merged.shutdown_countries())),
        "countries.outage": float(len(merged.outage_countries())),
        "match.kio_matched_fraction": (
            merged.kio_matched_count() / kio_total if kio_total else 0.0),
        "match.ioda_matched_fraction": (
            merged.ioda_matched_count() / ioda_shutdowns
            if ioda_shutdowns else 0.0),
        "records.curated": float(len(result.curated_records)),
    }
    if stats is not None:
        out["resilience.quarantined"] = float(len(stats.quarantined))
        out.update(stats.perf_statistics())
    return out


def evaluate_run(result: "PipelineResult",
                 stats: Optional["ExecStats"] = None,
                 policy: Optional[HealthPolicy] = None) -> HealthReport:
    """Grade one finished run (default: the paper-fidelity policy)."""
    if policy is None:
        policy = default_policy()
    return policy.evaluate(run_statistics(result, stats))
