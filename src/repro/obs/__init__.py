"""repro.obs — structured observability for the pipeline.

A dependency-free observability subsystem with three coordinated parts:

- **Span tracing** (:mod:`repro.obs.trace`): hierarchical, monotonic
  spans with attributes, nested through per-thread stacks and grafted
  across the :mod:`repro.exec` thread/process workers, so shard work
  appears under the run's root span.
- **Metrics** (:mod:`repro.obs.metrics`): counters, gauges, and
  fixed-bucket histograms with percentile summaries, incremented from
  the hot paths (curation, matching, KIO compilation, the cache store,
  RNG substream derivation) and mergeable across process workers.
- **Run journal** (:mod:`repro.obs.journal`): a streamed JSONL record
  of every span close and metrics snapshot, replayable by ``repro trace
  summarize`` (:mod:`repro.obs.summary`) and exportable as a Chrome
  ``trace_event`` JSON (:mod:`repro.obs.export`) for
  ``chrome://tracing`` / Perfetto.

Instrumentation is **zero-cost when disabled**: library code records
into :func:`current`, which returns a no-op session unless a run has
:func:`activate`\\ d a real :class:`Observability`.  Recording never
touches the RNG substreams, so enabling observability cannot perturb
results — serial/parallel byte-identity holds with tracing on.
"""

from repro.obs.export import chrome_trace, write_chrome_trace
from repro.obs.journal import JOURNAL_VERSION, RunJournal, iter_journal, \
    read_journal
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, \
    NullMetrics, series_key
from repro.obs.runtime import NULL_OBS, Observability, activate, current
from repro.obs.summary import JournalSummary, aggregate_spans, \
    summarize_events
from repro.obs.trace import NullTracer, Span, SpanRecord, Tracer

__all__ = [
    "JOURNAL_VERSION",
    "JournalSummary",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "NullMetrics",
    "NullTracer",
    "Observability",
    "RunJournal",
    "Span",
    "SpanRecord",
    "Tracer",
    "activate",
    "aggregate_spans",
    "chrome_trace",
    "current",
    "iter_journal",
    "read_journal",
    "series_key",
    "summarize_events",
    "write_chrome_trace",
]
