"""repro.obs — structured observability for the pipeline.

A dependency-free observability subsystem with three coordinated parts:

- **Span tracing** (:mod:`repro.obs.trace`): hierarchical, monotonic
  spans with attributes, nested through per-thread stacks and grafted
  across the :mod:`repro.exec` thread/process workers, so shard work
  appears under the run's root span.
- **Metrics** (:mod:`repro.obs.metrics`): counters, gauges, and
  fixed-bucket histograms with percentile summaries, incremented from
  the hot paths (curation, matching, KIO compilation, the cache store,
  RNG substream derivation) and mergeable across process workers.
- **Run journal** (:mod:`repro.obs.journal`): a streamed JSONL record
  of every span close and metrics snapshot, replayable by ``repro trace
  summarize`` (:mod:`repro.obs.summary`) and exportable as a Chrome
  ``trace_event`` JSON (:mod:`repro.obs.export`) for
  ``chrome://tracing`` / Perfetto.

On top of the session, three health/performance layers
(:mod:`repro.obs.profile`, :mod:`repro.obs.health`,
:mod:`repro.obs.baseline`):

- **Span profiling**: an opt-in per-span resource profiler (wall vs
  CPU seconds, peak-RSS growth, optional tracemalloc allocation
  deltas) whose readings ride in span attributes and stream into the
  journal as ``profile`` events.
- **Health scorecard**: every run is graded ``pass``/``warn``/``fail``
  against paper-fidelity and budget targets; the report lands in the
  journal as a ``health`` event and replays via ``repro health``.
- **Perf baselines**: ``repro perf record/compare/report`` stores
  named perf+fidelity snapshots under ``benchmarks/baselines/`` and
  fails CI on tolerance-band regressions.

Instrumentation is **zero-cost when disabled**: library code records
into :func:`current`, which returns a no-op session unless a run has
:func:`activate`\\ d a real :class:`Observability`.  Recording never
touches the RNG substreams, so enabling observability cannot perturb
results — serial/parallel byte-identity holds with tracing on.
"""

from repro.obs.baseline import BASELINE_DIR, BaselineComparison, \
    PerfBaseline, compare_baselines, list_baselines, load_baseline, \
    save_baseline, trajectory_rows
from repro.obs.export import chrome_trace, escape_label_value, \
    snapshot_to_openmetrics, split_series_key, unescape_label_value, \
    write_chrome_trace
from repro.obs.health import CheckResult, HealthCheck, HealthPolicy, \
    HealthReport, default_policy, evaluate_run, run_statistics
from repro.obs.journal import JOURNAL_VERSION, RunJournal, iter_journal, \
    read_journal
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, \
    NullMetrics, series_key
from repro.obs.profile import ProfileConfig, SpanProfiler
from repro.obs.provenance import DrawCursor, ExplainReport, \
    ProvenanceDiff, ProvenanceError, ProvenanceRecorder, capsule_id_for, \
    capsules_in, diff_provenance, explain_record, record_manifest, \
    sorted_capsules
from repro.obs.registry import RunRecord, RunRegistry, run_id_for
from repro.obs.runtime import NULL_OBS, Observability, activate, current
from repro.obs.summary import JournalSummary, aggregate_spans, \
    summarize_events
from repro.obs.telemetry import HeartbeatSampler, TelemetryConfig, \
    parse_interval
from repro.obs.trace import NullTracer, Span, SpanRecord, Tracer
from repro.obs.tracediff import PathDelta, TraceDiff, diff_events, \
    span_path_seconds

__all__ = [
    "BASELINE_DIR",
    "BaselineComparison",
    "CheckResult",
    "Counter",
    "DrawCursor",
    "ExplainReport",
    "Gauge",
    "HealthCheck",
    "HealthPolicy",
    "HealthReport",
    "HeartbeatSampler",
    "Histogram",
    "JOURNAL_VERSION",
    "JournalSummary",
    "MetricsRegistry",
    "NULL_OBS",
    "NullMetrics",
    "NullTracer",
    "Observability",
    "PathDelta",
    "PerfBaseline",
    "ProfileConfig",
    "ProvenanceDiff",
    "ProvenanceError",
    "ProvenanceRecorder",
    "RunJournal",
    "RunRecord",
    "RunRegistry",
    "Span",
    "SpanProfiler",
    "SpanRecord",
    "TelemetryConfig",
    "TraceDiff",
    "Tracer",
    "activate",
    "aggregate_spans",
    "capsule_id_for",
    "capsules_in",
    "chrome_trace",
    "compare_baselines",
    "current",
    "default_policy",
    "diff_events",
    "diff_provenance",
    "escape_label_value",
    "explain_record",
    "evaluate_run",
    "iter_journal",
    "list_baselines",
    "load_baseline",
    "parse_interval",
    "read_journal",
    "record_manifest",
    "run_id_for",
    "run_statistics",
    "save_baseline",
    "series_key",
    "snapshot_to_openmetrics",
    "sorted_capsules",
    "span_path_seconds",
    "split_series_key",
    "summarize_events",
    "trajectory_rows",
    "unescape_label_value",
    "write_chrome_trace",
]
