"""The persistent cross-run registry (``repro runs``).

One pipeline run leaves one journal; an *observatory* needs the runs
side by side.  A :class:`RunRegistry` is a plain on-disk index under a
runs directory::

    runs/
      e3b0c44298fc1c14/        <- content-addressed run ID
        journal.jsonl          <- the run's own journal, verbatim
        meta.json              <- extracted header: health, perf, config

Run IDs are the blake2b digest of the journal bytes, so registering the
same journal twice is a no-op and two different runs can never collide
into one slot.  ``meta.json`` carries everything the cross-run views
need without replaying the journal: the health grade and statistics
(the ``health`` event), event/span/heartbeat counts, wall seconds, the
run's config, and an optional config fingerprint (computed by the
caller — this module deliberately knows nothing about
:mod:`repro.exec`, keeping ``obs`` dependency-free).

``repro runs list`` renders the trend table across registered runs by
reusing :func:`repro.obs.baseline.trajectory_rows` — a
:class:`RunRecord` converts itself into a :class:`PerfBaseline` via
:meth:`RunRecord.as_baseline`, which is also what powers ``repro runs
diff`` through :func:`repro.obs.baseline.compare_baselines`.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.obs.baseline import PerfBaseline
from repro.obs.journal import read_journal
from repro.obs.summary import summarize_events

__all__ = ["REGISTRY_VERSION", "RunRecord", "RunRegistry", "run_id_for"]

#: ``meta.json`` schema version.
REGISTRY_VERSION = 1

_META_NAME = "meta.json"
_JOURNAL_NAME = "journal.jsonl"


def run_id_for(journal_bytes: bytes) -> str:
    """The content-addressed run ID of a journal (16 hex chars)."""
    return hashlib.blake2b(journal_bytes, digest_size=8).hexdigest()


def _iso(ts: Optional[float]) -> str:
    if ts is None:
        return "?"
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(float(ts)))


@dataclass(frozen=True, kw_only=True)
class RunRecord:
    """One registered run: the ``meta.json`` contents plus its home."""

    run_id: str
    name: str
    #: The run's own start time (from ``run_start``), ISO-8601 UTC.
    created: str
    #: When the run entered the registry (re-registration keeps the
    #: original ``created``).
    registered: str
    config: Mapping[str, Any] = field(default_factory=dict)
    #: Content fingerprint of the run's configuration (supplied by the
    #: caller; empty when unknown).
    fingerprint: str = ""
    grade: str = "pass"
    #: The health statistics mapping (fidelity + perf floats).
    stats: Mapping[str, float] = field(default_factory=dict)
    n_events: int = 0
    n_spans: int = 0
    n_heartbeats: int = 0
    #: Lineage capsules in the journal (0 unless the run recorded
    #: provenance; see :mod:`repro.obs.provenance`).
    n_provenance: int = 0
    #: Decision-outcome tallies from the adjudication capsules, keyed
    #: ``"outcome:reason"`` (e.g. ``"dismissed:no_corroboration"``).
    decisions: Mapping[str, int] = field(default_factory=dict)
    run_seconds: float = 0.0
    #: The run's directory inside the registry.
    path: Optional[Path] = None

    @property
    def journal_path(self) -> Optional[Path]:
        return None if self.path is None else self.path / _JOURNAL_NAME

    def as_dict(self) -> Dict[str, Any]:
        return {
            "version": REGISTRY_VERSION,
            "run_id": self.run_id,
            "name": self.name,
            "created": self.created,
            "registered": self.registered,
            "config": dict(self.config),
            "fingerprint": self.fingerprint,
            "grade": self.grade,
            "stats": {k: self.stats[k] for k in sorted(self.stats)},
            "n_events": self.n_events,
            "n_spans": self.n_spans,
            "n_heartbeats": self.n_heartbeats,
            "n_provenance": self.n_provenance,
            "decisions": {k: self.decisions[k]
                          for k in sorted(self.decisions)},
            "run_seconds": self.run_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any],
                  path: Optional[Path] = None) -> "RunRecord":
        return cls(
            run_id=str(data.get("run_id", "?")),
            name=str(data.get("name", "?")),
            created=str(data.get("created", "?")),
            registered=str(data.get("registered", "?")),
            config=dict(data.get("config", {})),
            fingerprint=str(data.get("fingerprint", "")),
            grade=str(data.get("grade", "pass")),
            stats={str(k): float(v)
                   for k, v in data.get("stats", {}).items()},
            n_events=int(data.get("n_events", 0)),
            n_spans=int(data.get("n_spans", 0)),
            n_heartbeats=int(data.get("n_heartbeats", 0)),
            n_provenance=int(data.get("n_provenance", 0)),
            decisions={str(k): int(v)
                       for k, v in data.get("decisions", {}).items()},
            run_seconds=float(data.get("run_seconds", 0.0)),
            path=path)

    def as_baseline(self) -> PerfBaseline:
        """The record as a perf baseline (trend table / ``runs diff``)."""
        return PerfBaseline.capture(
            name=self.name, config=self.config, statistics=self.stats,
            health_grade=self.grade, created=self.created)

    def rows(self) -> List[str]:
        """Human-readable ``repro runs show`` lines."""
        lines = [
            f"run             {self.run_id}  ({self.name})",
            f"  created       {self.created}",
            f"  registered    {self.registered}",
            f"  grade         {self.grade}",
            f"  journal       {self.n_events} events, {self.n_spans} "
            f"spans, {self.n_heartbeats} heartbeats, "
            f"{self.run_seconds:.2f}s",
        ]
        if self.n_provenance:
            lines.append(f"  provenance    {self.n_provenance} capsules")
            for key in sorted(self.decisions):
                lines.append(f"    {key:<30} {self.decisions[key]}")
        if self.fingerprint:
            lines.append(f"  fingerprint   {self.fingerprint}")
        if self.config:
            config = " ".join(f"{k}={self.config[k]}"
                              for k in sorted(self.config))
            lines.append(f"  config        {config}")
        for key in sorted(self.stats):
            lines.append(f"  {key:<32} {self.stats[key]:g}")
        return lines


class RunRegistry:
    """The on-disk run index under one runs directory."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    # -- writing -----------------------------------------------------------------

    def register(self, journal: Union[str, Path], *,
                 name: Optional[str] = None,
                 config: Optional[Mapping[str, Any]] = None,
                 fingerprint: str = "",
                 move: bool = False) -> RunRecord:
        """File a journal into the registry; returns its record.

        Content-addressed and idempotent: the same journal bytes always
        land in (or re-resolve to) the same slot.  ``move`` relocates
        the source file into the registry instead of copying — the
        pipeline uses it for journals it already wrote under the runs
        directory.
        """
        source = Path(journal)
        data = source.read_bytes()
        run_id = run_id_for(data)
        run_dir = self.root / run_id
        meta_path = run_dir / _META_NAME
        if meta_path.exists():
            record = self._load(run_dir)
            if record is not None:
                if move and source.resolve() != (
                        run_dir / _JOURNAL_NAME).resolve():
                    source.unlink()
                return record
        run_dir.mkdir(parents=True, exist_ok=True)
        dest = run_dir / _JOURNAL_NAME
        if move:
            source.replace(dest)
        else:
            dest.write_bytes(data)

        events = read_journal(dest)
        summary = summarize_events(events)
        health: Dict[str, Any] = {}
        started: Optional[float] = None
        decisions: Dict[str, int] = {}
        for event in events:
            if event.get("type") == "health":
                health = event
            elif event.get("type") == "run_start" and started is None:
                started = event.get("ts")
            elif event.get("type") == "provenance":
                # Adjudication capsules carry (outcome, reason); merged
                # lifecycle capsules only an outcome.
                outcome = event.get("outcome")
                if outcome is not None:
                    key = (f"{outcome}:{event['reason']}"
                           if "reason" in event else str(outcome))
                    decisions[key] = decisions.get(key, 0) + 1
        record = RunRecord(
            run_id=run_id,
            name=name or run_id[:8],
            created=_iso(started),
            registered=time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                     time.gmtime()),
            config=dict(config or {}),
            fingerprint=fingerprint,
            grade=str(health.get("grade", "pass")),
            stats={str(k): float(v)
                   for k, v in health.get("stats", {}).items()},
            n_events=summary.n_events,
            n_spans=summary.n_spans,
            n_heartbeats=summary.n_heartbeats,
            n_provenance=summary.n_provenance,
            decisions=decisions,
            run_seconds=round(summary.run_seconds, 6),
            path=run_dir)
        meta_path.write_text(
            json.dumps(record.as_dict(), indent=2) + "\n",
            encoding="utf-8")
        return record

    # -- reading -----------------------------------------------------------------

    def _load(self, run_dir: Path) -> Optional[RunRecord]:
        try:
            data = json.loads((run_dir / _META_NAME).read_text(
                encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict):
            return None
        return RunRecord.from_dict(data, path=run_dir)

    def records(self) -> List[RunRecord]:
        """Every readable registered run, oldest first."""
        if not self.root.is_dir():
            return []
        records = []
        for run_dir in sorted(self.root.iterdir()):
            if not run_dir.is_dir():
                continue
            record = self._load(run_dir)
            if record is not None:
                records.append(record)
        return sorted(records, key=lambda r: (r.created, r.run_id))

    def get(self, token: str) -> RunRecord:
        """Resolve a run by full ID, unique ID prefix, or name.

        Names resolve to the *newest* run carrying them; ambiguous
        ID prefixes raise ``KeyError`` listing the candidates.
        """
        records = self.records()
        by_id = {r.run_id: r for r in records}
        if token in by_id:
            return by_id[token]
        prefixed = [r for r in records if r.run_id.startswith(token)]
        if len(prefixed) == 1:
            return prefixed[0]
        if len(prefixed) > 1:
            ids = ", ".join(r.run_id for r in prefixed)
            raise KeyError(
                f"run ID prefix {token!r} is ambiguous: {ids}")
        named = [r for r in records if r.name == token]
        if named:
            return named[-1]
        raise KeyError(
            f"no run {token!r} in registry {self.root} "
            f"({len(records)} runs registered)")

    def rows(self) -> List[str]:
        """The cross-run trend table (``repro runs list``)."""
        from repro.obs.baseline import trajectory_rows
        records = self.records()
        if not records:
            return [f"no runs registered under {self.root}"]
        return trajectory_rows([r.as_baseline() for r in records])
