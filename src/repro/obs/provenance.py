"""Decision provenance: content-addressed lineage capsules.

The observability layers of :mod:`repro.obs` explain how a run *behaved*
(spans, heartbeats, health grades).  This module explains why any
individual curated record *exists*: every decision point of the curation
pipeline (§3.1.2) — the triggering alert episodes, the human-visibility
check, external corroboration, the control-group artifact check, cause
attribution, and scope descent — deposits its evidence into a **lineage
capsule** the moment the candidate is adjudicated.

Capsules are **content-addressed**: the capsule id is a BLAKE2b digest
of the canonical JSON payload, which carries no timestamps, host names,
or other run-local noise.  Two runs that adjudicate a candidate the same
way therefore mint byte-identical capsules, which is what makes
``repro runs diff --provenance`` meaningful and a self-diff exactly
empty.

Capsules are **journal-only**.  They are emitted as ``provenance``
events on the run journal (or buffered for adoption when captured inside
a process worker, exactly like :meth:`repro.obs.trace.Tracer.adopt` and
:meth:`repro.obs.runtime.Observability.adopt_heartbeats`), and they
never feed back into the pipeline: event output is byte-identical with
provenance on or off, on every backend, and under ``api.stream``.

Record ids are local to a country while curation runs and are only
renumbered globally by :func:`repro.ioda.curation.finalize_records`;
the recorder therefore keys capsules by ``(iso2, local id)`` and a
``provenance.manifest`` event journaled at finalize time maps the
global, user-facing record ids back onto capsule ids.  ``repro explain``
accepts either a global record id or a capsule id (so dismissed
candidates, which never receive a record id, stay explainable).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from datetime import datetime, timezone
from hashlib import blake2b
from typing import Any, Dict, Iterable, List, Mapping, Optional, \
    Sequence, Tuple

from repro.errors import ReproError

__all__ = [
    "DECISION_STEPS",
    "DrawCursor",
    "ExplainReport",
    "ProvenanceDiff",
    "ProvenanceError",
    "ProvenanceRecorder",
    "capsule_id_for",
    "capsules_in",
    "diff_provenance",
    "explain_record",
    "record_manifest",
    "sorted_capsules",
]

#: Decision points in adjudication order — the scale ``diff_provenance``
#: walks to attribute an outcome flip to its *earliest* divergence.
DECISION_STEPS: Tuple[str, ...] = (
    "period", "calendar", "visibility", "corroboration", "control",
    "cause", "outcome")


class ProvenanceError(ReproError):
    """A provenance lookup, explain, or diff could not be satisfied."""


def capsule_id_for(payload: Mapping[str, Any]) -> str:
    """The content address of a capsule payload.

    Canonical JSON (sorted keys, no whitespace) hashed with BLAKE2b —
    the same digest the run registry uses for whole journals, so equal
    decisions mint equal ids across runs, backends, and chunkings.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return blake2b(blob.encode("utf-8"), digest_size=8).hexdigest()


class DrawCursor:
    """Position within one country's ``("curation", iso2)`` RNG substream.

    The curation pipeline advances the cursor at each actual
    ``rng.random()`` call so capsules can record the exact substream
    coordinate that produced a probabilistic verdict.  Streaming keeps
    one cursor per country across watermark advances (process workers
    ship the index back alongside the RNG state), so the coordinates
    match a batch run draw for draw.
    """

    __slots__ = ("index",)

    def __init__(self, index: int = 0):
        self.index = int(index)

    def take(self) -> int:
        """Consume one coordinate and return it."""
        position = self.index
        self.index += 1
        return position


class ProvenanceRecorder:
    """Collects lineage capsules for one observability session.

    Lives on :class:`repro.obs.runtime.Observability` as the
    ``provenance`` attribute (``None`` when the feature is off, so the
    hot path pays a single attribute check).  Capsules stream into the
    run journal when one is attached and always buffer in
    :attr:`capsules` — the buffer is both the ``RunResult.provenance``
    payload and the shuttle process workers ship home for
    :meth:`adopt`.
    """

    def __init__(self, journal=None):
        self._journal = journal
        #: Every capsule captured (or adopted) by this session, in
        #: capture order.
        self.capsules: List[Dict[str, Any]] = []
        #: ``(iso2, local record id) -> capsule id`` for recorded
        #: candidates; feeds the finalize-time manifest.
        self.by_record: Dict[Tuple[str, int], str] = {}
        #: ``global record id -> capsule id`` from the latest manifest.
        self.record_map: Dict[int, str] = {}
        #: Downstream ``provenance.match`` / ``provenance.verdict``
        #: events captured via :meth:`note`.
        self.notes: List[Dict[str, Any]] = []

    def emit(self, payload: Mapping[str, Any]) -> str:
        """Seal ``payload`` into a capsule; return its content address."""
        capsule = dict(payload)
        capsule_id = capsule_id_for(capsule)
        capsule["capsule_id"] = capsule_id
        self._absorb(capsule)
        return capsule_id

    def adopt(self, capsules: Iterable[Mapping[str, Any]]) -> None:
        """Graft capsules captured by a worker session into this one.

        The provenance twin of :meth:`repro.obs.trace.Tracer.adopt`:
        workers buffer capsules (no journal attached), the parent
        journals them on arrival.
        """
        for capsule in capsules:
            self._absorb(dict(capsule))

    def note(self, event_type: str, payload: Mapping[str, Any]) -> None:
        """Journal a downstream provenance event (match/verdict)."""
        event = {"type": event_type, **payload}
        self.notes.append(event)
        if self._journal is not None:
            self._journal.write(event)

    def manifest(self, entries: Sequence[Tuple[int, str, int]]) -> None:
        """Map global record ids onto capsules after finalize.

        ``entries`` are ``(global_id, iso2, local_id)`` rows straight
        out of :func:`repro.ioda.curation.finalize_records`.  Streaming
        sessions may finalize provisionally more than once; readers use
        the *last* manifest in a journal.
        """
        rows = []
        for global_id, iso2, local_id in entries:
            capsule_id = self.by_record.get((iso2, local_id))
            rows.append([global_id, iso2, local_id, capsule_id])
            if capsule_id is not None:
                self.record_map[global_id] = capsule_id
        if self._journal is not None:
            self._journal.write(
                {"type": "provenance.manifest", "records": rows})

    def _absorb(self, capsule: Dict[str, Any]) -> None:
        self.capsules.append(capsule)
        record = capsule.get("record")
        if record is not None and "local_id" in record:
            self.by_record[(capsule["country_iso2"],
                            record["local_id"])] = capsule["capsule_id"]
        if self._journal is not None:
            self._journal.write({"type": "provenance", **capsule})


def sorted_capsules(
        recorder: Optional[ProvenanceRecorder]) -> Tuple[Mapping, ...]:
    """The recorder's capsules in a backend-independent order.

    Process shards complete in nondeterministic order, so the raw
    buffer order differs run to run; ``RunResult.provenance`` sorts by
    the capsule's stable coordinates instead.
    """
    if recorder is None:
        return ()
    return tuple(sorted(
        recorder.capsules,
        key=lambda c: (c.get("country_iso2", ""),
                       c.get("window_start", 0),
                       c.get("span", {}).get("start", 0),
                       c.get("stage", ""),
                       c.get("capsule_id", ""))))


# -- reading journals ------------------------------------------------------------


def capsules_in(events: Sequence[Mapping]) -> List[Mapping]:
    """The provenance capsules among journal ``events``."""
    return [e for e in events if e.get("type") == "provenance"]


def record_manifest(events: Sequence[Mapping]) -> Dict[int, Dict[str, Any]]:
    """Global record id -> capsule coordinates, from the last manifest."""
    manifest = None
    for event in events:
        if event.get("type") == "provenance.manifest":
            manifest = event
    if manifest is None:
        return {}
    return {
        int(row[0]): {"country_iso2": row[1], "local_id": row[2],
                      "capsule_id": row[3]}
        for row in manifest.get("records", ())}


def _utc(ts: int) -> str:
    return datetime.fromtimestamp(int(ts), tz=timezone.utc) \
        .strftime("%Y-%m-%dT%H:%MZ")


@dataclass(frozen=True)
class ExplainReport:
    """The rendered decision chain behind one capsule.

    ``record_id`` is the global id when the capsule produced a record
    that survived finalize, else ``None`` (dismissed candidates).
    ``verdict`` and ``matches`` are the downstream
    ``provenance.verdict`` / ``provenance.match`` evidence when the
    journal captured the merge stage.
    """

    capsule: Mapping[str, Any]
    record_id: Optional[int] = None
    verdict: Optional[Mapping[str, Any]] = None

    def rows(self) -> List[str]:
        """One aligned line per decision point, chain order."""
        c = self.capsule
        span = c.get("span", {})
        lines: List[str] = []

        def put(label: str, text: str) -> None:
            lines.append(f"{label:<14}{text}")

        head = (f"record #{self.record_id}" if self.record_id is not None
                else "candidate (no record)")
        put("subject", f"{head} — {c.get('country_iso2', '??')} "
                       f"{c.get('entity', '?')} "
                       f"[{_utc(span.get('start', 0))} .. "
                       f"{_utc(span.get('end', 0))}]")
        put("capsule", f"{c.get('capsule_id', '?')} "
                       f"{c.get('stage', '?')} -> {c.get('outcome', '?')} "
                       f"({c.get('reason', '?')})")
        if "window_start" in c:
            put("window", f"investigation window opened "
                          f"{_utc(c['window_start'])}")
        alert = c.get("alert") or {}
        if alert:
            parts = [
                f"{kind}: {info['episodes']} episode(s), deepest "
                f"{info['max_depth']:.3f} below trailing median"
                for kind, info in sorted(alert.items())]
            put("trigger", "; ".join(parts))
        if c.get("reason") == "outside_period":
            put("period", "candidate starts outside the study period")
        put("calendar", "gap — nobody was observing (§3.1.2)"
            if c.get("reason") in ("calendar_gap",)
            else "observed at candidate start")
        visibility = c.get("visibility")
        if visibility is not None:
            visible = visibility.get("visible", [])
            put("visibility",
                (f"{', '.join(visible)} human-visible "
                 f"({len(visible)} signal(s), "
                 f"{visibility.get('required', 2)} required alone)")
                if visible else "no signal met the human-visibility bar")
        corroboration = c.get("corroboration")
        if corroboration is not None:
            if not corroboration.get("checked", True):
                put("corroboration", "skipped (>= 2 signals visible)")
            elif corroboration.get("overlapping", 0) == 0:
                put("corroboration",
                    "no real-world event overlapped; trackers silent")
            else:
                draw = corroboration.get("draw") or {}
                put("corroboration",
                    f"{'confirmed' if corroboration.get('corroborated') else 'not confirmed'}"
                    f" (p={corroboration.get('p', 0):.3f}, rng "
                    f"{tuple(draw.get('substream', ()))} "
                    f"draw #{draw.get('index')})")
        control = c.get("control")
        if control is not None:
            controls = control.get("controls", [])
            put("controls",
                f"{', '.join(controls) or 'none available'}: "
                f"{control.get('n_similar', 0)}/{len(controls)} similar "
                f"(reject at >= {control.get('reject_fraction', 0):.0%})"
                + (" — infrastructure artifact" if control.get("artifact")
                   else ""))
        cause = c.get("cause")
        if cause is not None:
            if cause.get("overlapping", 0) == 0:
                put("cause", "no overlapping real-world event to report on")
            elif cause.get("cause") is None:
                draw = cause.get("draw") or {}
                put("cause",
                    f"undiscovered (p_discover="
                    f"{cause.get('p_discover', 0):.2f}, rng "
                    f"{tuple(draw.get('substream', ()))} "
                    f"draw #{draw.get('index')})")
            else:
                draw = cause.get("draw") or {}
                put("cause",
                    f"\"{cause['cause']}\" (p_discover="
                    f"{cause.get('p_discover', 0):.2f}, rng "
                    f"{tuple(draw.get('substream', ()))} "
                    f"draw #{draw.get('index')})")
        record = c.get("record")
        if record is not None:
            put("record", f"confirmation {record.get('confirmation', '?')}, "
                          f"scope {record.get('scope', '?')}, "
                          f"local id {record.get('local_id', '?')}")
        if self.verdict is not None:
            matched = self.verdict.get("matched_kio_ids", [])
            put("matching",
                f"matched KIO event(s) "
                f"{', '.join(str(i) for i in matched)}"
                if matched else "no KIO event matched within lookback")
            put("label",
                f"{self.verdict.get('label', '?')}"
                + (" (via KIO match)" if self.verdict.get("via_kio_match")
                   else "")
                + (" (via recorded cause)" if self.verdict.get("via_cause")
                   else ""))
        return lines


def explain_record(events: Sequence[Mapping],
                   token: "str | int") -> ExplainReport:
    """Resolve ``token`` (global record id or capsule id prefix) into
    the full decision chain recorded in ``events``.

    Raises :class:`ProvenanceError` when the journal holds no capsules
    or the token does not resolve — callers (the CLI) turn that into a
    one-line exit-2 message.
    """
    capsules = capsules_in(events)
    if not capsules:
        raise ProvenanceError(
            "journal has no provenance capsules (re-run with --provenance)")
    manifest = record_manifest(events)
    token_str = str(token).strip()
    record_id: Optional[int] = None
    if token_str.isdigit():
        record_id = int(token_str)
        entry = manifest.get(record_id)
        if entry is None:
            raise ProvenanceError(
                f"record {record_id} not found in the provenance manifest "
                f"({len(manifest)} records mapped)")
        capsule_id = entry["capsule_id"]
        if capsule_id is None:
            raise ProvenanceError(
                f"record {record_id} has no capsule (provenance was "
                f"captured only partially)")
        matches = [c for c in capsules if c.get("capsule_id") == capsule_id]
    else:
        matches = [c for c in capsules
                   if c.get("capsule_id", "").startswith(token_str)]
        distinct = {c["capsule_id"] for c in matches}
        if len(distinct) > 1:
            raise ProvenanceError(
                f"capsule id prefix {token_str!r} is ambiguous "
                f"({len(distinct)} capsules match)")
        if matches:
            for gid, entry in manifest.items():
                if entry["capsule_id"] == matches[0]["capsule_id"]:
                    record_id = gid
                    break
    if not matches:
        raise ProvenanceError(
            f"no capsule matches {token_str!r} "
            f"({len(capsules)} capsules in journal)")
    verdict = None
    if record_id is not None:
        for event in events:
            if (event.get("type") == "provenance.verdict"
                    and event.get("record_id") == record_id):
                verdict = event
    return ExplainReport(capsule=matches[0], record_id=record_id,
                         verdict=verdict)


# -- cross-run diff --------------------------------------------------------------


def _capsule_key(capsule: Mapping) -> Tuple:
    return (capsule.get("country_iso2"), capsule.get("entity"),
            capsule.get("window_start"),
            capsule.get("span", {}).get("start"))


def _step_values(capsule: Mapping) -> Dict[str, Any]:
    """Canonical per-step verdicts for earliest-flip attribution."""
    reason = capsule.get("reason")
    visibility = capsule.get("visibility") or {}
    corroboration = capsule.get("corroboration")
    control = capsule.get("control")
    cause = capsule.get("cause")
    return {
        "period": reason != "outside_period",
        "calendar": reason != "calendar_gap",
        "visibility": tuple(sorted(visibility.get("visible", ()))),
        "corroboration": (None if corroboration is None
                          else bool(corroboration.get("corroborated"))),
        "control": (None if control is None
                    else bool(control.get("artifact"))),
        "cause": None if cause is None else cause.get("cause"),
        "outcome": (capsule.get("outcome"), reason),
    }


_FLIP_PHRASES = {
    "period": "moved outside the study period",
    "calendar": "fell into an observation-calendar gap",
    "visibility": "changed human-visibility",
    "corroboration": "lost external corroboration",
    "control": "flipped the control-group artifact check",
    "cause": "changed cause attribution",
    "outcome": "changed outcome",
}


@dataclass(frozen=True)
class ProvenanceDiff:
    """Decision-level attribution of the delta between two runs.

    ``flips`` groups candidates present in both runs whose decision
    chains diverge, keyed by the earliest diverging step and the
    outcome transition.  ``only_a``/``only_b`` tally candidates that
    exist in just one run, by outcome.  A self-diff is :attr:`empty`.
    """

    n_a: int
    n_b: int
    flips: Tuple[Tuple[str, str, str, int], ...]
    only_a: Tuple[Tuple[str, int], ...]
    only_b: Tuple[Tuple[str, int], ...]

    @property
    def empty(self) -> bool:
        return not self.flips and not self.only_a and not self.only_b

    def rows(self, label_a: str = "A", label_b: str = "B") -> List[str]:
        if self.empty:
            return [f"provenance: identical decision chains "
                    f"({self.n_a} capsules)"]
        lines = [f"provenance: {self.n_a} capsules in {label_a}, "
                 f"{self.n_b} in {label_b}"]
        for step, from_outcome, to_outcome, count in self.flips:
            noun = "candidate" if count == 1 else "candidates"
            lines.append(
                f"  {count} {noun} {_FLIP_PHRASES.get(step, step)} "
                f"({from_outcome} -> {to_outcome}) at step {step}")
        for outcome, count in self.only_a:
            noun = "candidate" if count == 1 else "candidates"
            lines.append(f"  {count} {noun} only in {label_a} ({outcome})")
        for outcome, count in self.only_b:
            noun = "candidate" if count == 1 else "candidates"
            lines.append(f"  {count} {noun} only in {label_b} ({outcome})")
        return lines


def diff_provenance(events_a: Sequence[Mapping],
                    events_b: Sequence[Mapping]) -> ProvenanceDiff:
    """Attribute the record delta between two journals to decisions.

    Only adjudication capsules participate — streaming lifecycle
    capsules depend on watermark chunking and would report chunking,
    not curation.  Candidates are joined on their stable coordinates
    (country, entity, window, candidate start); joined pairs whose
    chains diverge are attributed to the *earliest* differing decision
    step, turning "run B has 3 fewer records" into "3 candidates lost
    external corroboration".

    Raises :class:`ProvenanceError` when either journal has no
    capsules.
    """
    a = {_capsule_key(c): c for c in capsules_in(events_a)
         if c.get("stage") == "adjudicate"}
    b = {_capsule_key(c): c for c in capsules_in(events_b)
         if c.get("stage") == "adjudicate"}
    if not a or not b:
        which = "first" if not a else "second"
        raise ProvenanceError(
            f"the {which} run has no provenance capsules "
            f"(re-run with --provenance)")
    flip_counts: Dict[Tuple[str, str, str], int] = {}
    for key in sorted(set(a) & set(b), key=repr):
        ca, cb = a[key], b[key]
        if ca.get("capsule_id") == cb.get("capsule_id"):
            continue
        va, vb = _step_values(ca), _step_values(cb)
        step = next((s for s in DECISION_STEPS if va[s] != vb[s]), None)
        if step is None:
            continue  # differs only in journal noise, not decisions
        transition = (step, str(ca.get("outcome")), str(cb.get("outcome")))
        flip_counts[transition] = flip_counts.get(transition, 0) + 1
    only_a: Dict[str, int] = {}
    for key in set(a) - set(b):
        outcome = str(a[key].get("outcome"))
        only_a[outcome] = only_a.get(outcome, 0) + 1
    only_b: Dict[str, int] = {}
    for key in set(b) - set(a):
        outcome = str(b[key].get("outcome"))
        only_b[outcome] = only_b.get(outcome, 0) + 1
    return ProvenanceDiff(
        n_a=len(a), n_b=len(b),
        flips=tuple((s, fa, fb, n) for (s, fa, fb), n
                    in sorted(flip_counts.items())),
        only_a=tuple(sorted(only_a.items())),
        only_b=tuple(sorted(only_b.items())),
    )
