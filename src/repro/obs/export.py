"""Chrome ``trace_event`` export.

Converts a run's span records into the Trace Event Format consumed by
``chrome://tracing`` and https://ui.perfetto.dev — each span becomes a
complete ("ph": "X") event with microsecond timestamps relative to the
run start, placed on a track per worker (pid/tid derived from the
span's ``"<pid>/<thread>"`` worker tag).  Span-tree links survive the
export: every event's ``args`` carries ``span_id``/``parent_id`` on top
of the span's own attributes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from repro.obs.trace import SpanRecord

__all__ = ["chrome_trace", "write_chrome_trace"]


def _split_worker(worker: str) -> tuple[str, str]:
    pid, _, thread = worker.partition("/")
    return (pid or "0"), (thread or "main")


def chrome_trace(spans: Sequence[SpanRecord]) -> Dict[str, Any]:
    """The Trace Event Format document for a span list."""
    origin = min((s.start for s in spans), default=0.0)
    events: List[Dict[str, Any]] = []
    tids: Dict[tuple[str, str], int] = {}
    pids: Dict[str, int] = {}
    for span in spans:
        pid_name, thread_name = _split_worker(span.worker)
        pid = pids.setdefault(pid_name, len(pids) + 1)
        tid_key = (pid_name, thread_name)
        if tid_key not in tids:
            tids[tid_key] = len(tids) + 1
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid,
                "tid": tids[tid_key],
                "args": {"name": f"{pid_name}/{thread_name}"},
            })
        events.append({
            "name": span.name,
            "ph": "X",
            "ts": round((span.start - origin) * 1e6, 3),
            "dur": round(span.duration * 1e6, 3),
            "pid": pid,
            "tid": tids[tid_key],
            "args": {"span_id": span.span_id,
                     "parent_id": span.parent_id,
                     **span.attrs},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Sequence[SpanRecord],
                       path: Union[str, Path]) -> Path:
    """Write the Chrome trace JSON for ``spans`` and return its path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(spans)), encoding="utf-8")
    return path
