"""Exporters: Chrome ``trace_event`` JSON and OpenMetrics text.

Two export surfaces live here:

- **Chrome trace**: converts a run's span records into the Trace Event
  Format consumed by ``chrome://tracing`` and https://ui.perfetto.dev —
  each span becomes a complete ("ph": "X") event with microsecond
  timestamps relative to the run start, placed on a track per worker
  (pid/tid derived from the span's ``"<pid>/<thread>"`` worker tag).
  Span-tree links survive the export: every event's ``args`` carries
  ``span_id``/``parent_id`` on top of the span's own attributes.
- **OpenMetrics**: renders a :meth:`~repro.obs.metrics.MetricsRegistry.
  snapshot` as Prometheus/OpenMetrics text exposition — the scrape
  payload behind ``repro metrics export`` and the serving layer's
  ``/metrics`` endpoint.  Label values survive *verbatim*: the serving
  layer labels series with request routes (``/events?cursor=...``) that
  can legally carry ``,``/``=``/``}``/``"``/newlines/backslashes, so
  the series-key codec (:func:`escape_label_value` /
  :func:`unescape_label_value`, used by
  :func:`repro.obs.metrics.series_key`) backslash-escapes the key
  syntax and the OpenMetrics writer re-escapes per the exposition
  grammar (``\\`` → ``\\\\``, ``"`` → ``\\"``, newline → ``\\n``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Tuple, Union

from repro.obs.trace import SpanRecord

__all__ = ["chrome_trace", "escape_label_value", "snapshot_to_openmetrics",
           "split_series_key", "unescape_label_value",
           "write_chrome_trace"]


def _split_worker(worker: str) -> tuple[str, str]:
    pid, _, thread = worker.partition("/")
    return (pid or "0"), (thread or "main")


def chrome_trace(spans: Sequence[SpanRecord]) -> Dict[str, Any]:
    """The Trace Event Format document for a span list."""
    origin = min((s.start for s in spans), default=0.0)
    events: List[Dict[str, Any]] = []
    tids: Dict[tuple[str, str], int] = {}
    pids: Dict[str, int] = {}
    for span in spans:
        pid_name, thread_name = _split_worker(span.worker)
        pid = pids.setdefault(pid_name, len(pids) + 1)
        tid_key = (pid_name, thread_name)
        if tid_key not in tids:
            tids[tid_key] = len(tids) + 1
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid,
                "tid": tids[tid_key],
                "args": {"name": f"{pid_name}/{thread_name}"},
            })
        events.append({
            "name": span.name,
            "ph": "X",
            "ts": round((span.start - origin) * 1e6, 3),
            "dur": round(span.duration * 1e6, 3),
            "pid": pid,
            "tid": tids[tid_key],
            "args": {"span_id": span.span_id,
                     "parent_id": span.parent_id,
                     **span.attrs},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Sequence[SpanRecord],
                       path: Union[str, Path]) -> Path:
    """Write the Chrome trace JSON for ``spans`` and return its path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(spans)), encoding="utf-8")
    return path


# -- OpenMetrics text exposition ---------------------------------------------------

#: Characters that collide with the ``name{k=v,...}`` series-key syntax.
#: ``\n`` is escaped too so a series key always stays on one line.
_KEY_ESCAPES = {"\\": "\\\\", ",": "\\,", "}": "\\}", "\n": "\\n"}
_KEY_UNESCAPES = {"\\": "\\", ",": ",", "}": "}", "n": "\n"}


def escape_label_value(value: str) -> str:
    """A label value made safe for the ``name{k=v,...}`` key syntax.

    >>> escape_label_value('/events?cursor=a,b')
    '/events?cursor=a\\\\,b'
    """
    out = []
    for ch in value:
        out.append(_KEY_ESCAPES.get(ch, ch))
    return "".join(out)


def unescape_label_value(text: str) -> str:
    """Invert :func:`escape_label_value` (unknown escapes pass through)."""
    out = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            follower = text[i + 1]
            if follower in _KEY_UNESCAPES:
                out.append(_KEY_UNESCAPES[follower])
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def _split_escaped(inner: str) -> List[str]:
    """Split ``k=v,k=v`` clauses on commas that are not escaped."""
    clauses: List[str] = []
    current: List[str] = []
    i = 0
    while i < len(inner):
        ch = inner[i]
        if ch == "\\" and i + 1 < len(inner):
            current.append(ch)
            current.append(inner[i + 1])
            i += 2
            continue
        if ch == ",":
            clauses.append("".join(current))
            current = []
        else:
            current.append(ch)
        i += 1
    clauses.append("".join(current))
    return clauses


def split_series_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`repro.obs.metrics.series_key`.

    ``name{k=v,...}`` → ``(name, labels)``, with the label values
    unescaped back to their original text — hostile values containing
    ``,``/``=``/``}``/newlines round-trip losslessly.
    """
    if "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    if inner.endswith("}"):
        # The closing brace is part of a value only when escaped, i.e.
        # preceded by an odd-length run of backslashes.
        backslashes = len(inner) - 1 - len(inner[:-1].rstrip("\\"))
        if backslashes % 2 == 0:
            inner = inner[:-1]
    labels: Dict[str, str] = {}
    for clause in _split_escaped(inner):
        if not clause:
            continue
        label, _, value = clause.partition("=")
        labels[label] = unescape_label_value(value)
    return name, labels


def _metric_name(name: str) -> str:
    """A Prometheus-legal metric name for a dotted series name."""
    cleaned = "".join(c if c.isalnum() or c in "_:" else "_"
                      for c in name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return "repro_" + cleaned


def _label_str(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    escaped = []
    for key in sorted(labels):
        value = str(labels[key]).replace("\\", "\\\\") \
            .replace('"', '\\"').replace("\n", "\\n")
        escaped.append(f'{key}="{value}"')
    return "{" + ",".join(escaped) + "}"


def _value_str(value: Any) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return format(number, ".10g")


def snapshot_to_openmetrics(snapshot: Mapping[str, Any]) -> str:
    """A metrics snapshot as OpenMetrics text exposition.

    Accepts the :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
    shape (which is also the journal's ``metrics`` event, minus its
    ``type`` key) and renders the Prometheus text format exposed by
    ``repro metrics export`` and the serving layer's ``/metrics``
    endpoint: dotted series names become ``repro_``-prefixed underscore
    names, labels survive with exposition-grammar escaping, counters
    gain the ``_total`` suffix, and histograms emit cumulative
    ``_bucket{le=...}`` samples plus ``_sum``/``_count``.  Output is
    deterministic (sorted by metric name, then label set) and ends
    with the ``# EOF`` terminator.
    """
    families: Dict[str, Tuple[str, List[str]]] = {}

    def family(metric: str, kind: str) -> List[str]:
        entry = families.get(metric)
        if entry is None:
            entry = families[metric] = (kind, [])
        return entry[1]

    for key, value in snapshot.get("counters", {}).items():
        name, labels = split_series_key(key)
        metric = _metric_name(name)
        family(metric, "counter").append(
            f"{metric}_total{_label_str(labels)} {_value_str(value)}")
    for key, value in snapshot.get("gauges", {}).items():
        name, labels = split_series_key(key)
        metric = _metric_name(name)
        family(metric, "gauge").append(
            f"{metric}{_label_str(labels)} {_value_str(value)}")
    for key, summary in snapshot.get("histograms", {}).items():
        name, labels = split_series_key(key)
        metric = _metric_name(name)
        samples = family(metric, "histogram")
        cumulative = 0
        bounds = list(summary.get("buckets", ()))
        counts = list(summary.get("bucket_counts",
                                  [0] * (len(bounds) + 1)))
        for upper, n in zip(bounds + ["+Inf"], counts):
            cumulative += int(n)
            le = ("+Inf" if upper == "+Inf"
                  else format(float(upper), ".10g"))
            samples.append(
                f"{metric}_bucket{_label_str({**labels, 'le': le})} "
                f"{cumulative}")
        samples.append(
            f"{metric}_sum{_label_str(labels)} "
            f"{_value_str(summary.get('sum', 0.0))}")
        samples.append(
            f"{metric}_count{_label_str(labels)} "
            f"{_value_str(summary.get('count', 0))}")

    lines: List[str] = []
    for metric in sorted(families):
        kind, samples = families[metric]
        lines.append(f"# TYPE {metric} {kind}")
        lines.extend(samples)
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
