"""Live run telemetry: the heartbeat sampler.

Everything :mod:`repro.obs` produced before this module is
*post-mortem*: the journal replays, the scorecard grades, and the
baselines compare only once the run has ended.  A
:class:`HeartbeatSampler` turns the same metrics into an **in-run time
series**: a low-overhead background thread wakes every
``TelemetryConfig.interval`` seconds and appends one ``heartbeat``
event to the run journal with

- shard progress (``completed``/``total`` plus a naive ETA) read from
  the executor's progress series;
- the paths of every currently-open span (what the run is doing *right
  now*, e.g. ``run/stage:curate/exec.shard``);
- counter **deltas** since the previous tick and current gauge values;
- ``p50``/``p99`` of every non-empty histogram, via the shared
  single-walk :meth:`repro.obs.metrics.Histogram.percentiles`;
- process RSS and CPU seconds; and
- the memoized-signal-cache hit rate.

Heartbeats are **journal-only**: they never appear in the pipeline's
event output, so records stay byte-identical with telemetry on or off
on every backend.  Like profiling (:mod:`repro.obs.profile`), the
sampler is opt-in and inert when absent — the only hot-path cost when
enabled is the tracer's ``track_open`` bookkeeping, and when disabled
there is no thread, no registry read, nothing.

Process workers cannot write the parent's journal, so they sample into
a local buffer and ship the collected heartbeats home with their spans
and metrics; the parent writes them through
:meth:`repro.obs.runtime.Observability.adopt_heartbeats`, mirroring
:meth:`repro.obs.trace.Tracer.adopt`.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import _rss_kb
from repro.obs.trace import Tracer

__all__ = ["HeartbeatSampler", "TelemetryConfig", "parse_interval"]

#: Metric series the executor maintains for shard progress (see
#: :mod:`repro.exec.stats`); the sampler folds them into the
#: ``shards`` block of every heartbeat.
SHARDS_TOTAL_GAUGE = "exec.shards.total"
SHARDS_COMPLETED_COUNTER = "exec.shards.completed"

#: Counter the sampler bumps per emitted heartbeat (trend data; also
#: how tests assert a run actually heartbeat).
HEARTBEATS_COUNTER = "telemetry.heartbeats"

_UNITS = {"ms": 0.001, "s": 1.0, "m": 60.0}


def parse_interval(spec: Union[str, float, int]) -> float:
    """Seconds from a CLI-style interval spec: ``1s``, ``500ms``, ``2``.

    >>> parse_interval("1s")
    1.0
    >>> parse_interval("500ms")
    0.5
    >>> parse_interval(2)
    2.0
    """
    if isinstance(spec, (int, float)):
        seconds = float(spec)
    else:
        text = spec.strip().lower()
        scale = 1.0
        for suffix, unit in sorted(_UNITS.items(), key=lambda u: -len(u[0])):
            if text.endswith(suffix):
                text = text[:-len(suffix)]
                scale = unit
                break
        try:
            seconds = float(text) * scale
        except ValueError:
            raise ValueError(
                f"unparseable interval {spec!r}; expected e.g. '1s', "
                f"'500ms', or a number of seconds") from None
    if seconds <= 0:
        raise ValueError(f"interval must be positive: {spec!r}")
    return seconds


@dataclass(frozen=True, kw_only=True)
class TelemetryConfig:
    """How the heartbeat sampler runs.

    Keyword-only: part of the stable :mod:`repro.api` surface
    (``telemetry=``), so fields may be added freely.
    """

    #: Seconds between heartbeats.
    interval: float = 5.0
    #: Emit one final heartbeat when the sampler stops, so even a run
    #: shorter than ``interval`` leaves at least one sample.
    final_beat: bool = True

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(
                f"heartbeat interval must be positive: {self.interval}")

    @classmethod
    def coerce(cls, value: Union["TelemetryConfig", str, float, int, None]
               ) -> Optional["TelemetryConfig"]:
        """A config from the flexible API forms (None passes through)."""
        if value is None or isinstance(value, cls):
            return value
        return cls(interval=parse_interval(value))


class HeartbeatSampler:
    """Background thread emitting periodic ``heartbeat`` events.

    The sampler only ever *reads* shared state — the metrics registry
    under its own locks, the tracer's open-span registry, OS process
    counters — and writes each event through ``sink`` (the run
    journal's ``write``, or a buffer in process workers).  It never
    touches RNG substreams, so sampling cannot perturb results.
    """

    def __init__(self, config: TelemetryConfig, *, tracer: Tracer,
                 metrics: MetricsRegistry,
                 sink: Callable[[Dict[str, Any]], None]):
        self._config = config
        self._tracer = tracer
        self._metrics = metrics
        self._sink = sink
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._seq = 0
        self._started_perf = 0.0
        self._last_counters: Dict[str, int] = {}

    @property
    def running(self) -> bool:
        return self._thread is not None

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "HeartbeatSampler":
        """Start sampling (idempotent)."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._started_perf = time.perf_counter()
        self._thread = threading.Thread(
            target=self._loop, name="repro-heartbeat", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the sampler thread and emit the final heartbeat."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=10.0)
        self._thread = None
        if self._config.final_beat:
            self.beat(final=True)

    def _loop(self) -> None:
        while not self._stop.wait(self._config.interval):
            self.beat()

    # -- one sample --------------------------------------------------------------

    def beat(self, final: bool = False) -> Dict[str, Any]:
        """Sample everything once and emit one heartbeat event."""
        with self._lock:
            snapshot = self._metrics.snapshot()
            counters: Dict[str, int] = {
                k: int(v) for k, v in snapshot["counters"].items()}
            deltas = {k: v - self._last_counters.get(k, 0)
                      for k, v in counters.items()
                      if v != self._last_counters.get(k, 0)}
            self._last_counters = counters
            self._seq += 1
            seq = self._seq
        gauges = {k: float(v) for k, v in snapshot["gauges"].items()}
        elapsed = time.perf_counter() - self._started_perf
        event: Dict[str, Any] = {
            "type": "heartbeat",
            "seq": seq,
            "ts": round(time.time(), 6),
            "elapsed": round(elapsed, 6),
            "pid": os.getpid(),
            "final": bool(final),
            "open_spans": self._tracer.open_paths(),
            "counters": deltas,
            "gauges": gauges,
            "histograms": self._histogram_tails(),
            "proc": self._proc_readings(),
        }
        shards = self._shard_progress(counters, gauges, elapsed)
        if shards is not None:
            event["shards"] = shards
        cache = self._signal_cache(counters)
        if cache is not None:
            event["signal_cache"] = cache
        stream = self._stream_progress(counters, gauges)
        if stream is not None:
            event["stream"] = stream
        self._metrics.counter(HEARTBEATS_COUNTER).inc()
        self._sink(event)
        return event

    def _histogram_tails(self) -> Dict[str, Dict[str, float]]:
        """``p50``/``p99`` per non-empty histogram (one bucket walk each)."""
        tails: Dict[str, Dict[str, float]] = {}
        for key, histogram in self._metrics.histograms().items():
            if not histogram.count:
                continue
            quantiles = histogram.percentiles((50, 99))
            tails[key] = {
                "count": int(histogram.count),
                "p50": round(quantiles[50], 6),
                "p99": round(quantiles[99], 6),
            }
        return tails

    @staticmethod
    def _proc_readings() -> Dict[str, float]:
        readings = {"cpu_s": round(time.process_time(), 6)}
        rss = _rss_kb()
        if rss is not None:
            readings["rss_kb"] = round(rss, 1)
        return readings

    @staticmethod
    def _shard_progress(counters: Dict[str, int],
                        gauges: Dict[str, float],
                        elapsed: float) -> Optional[Dict[str, Any]]:
        total = gauges.get(SHARDS_TOTAL_GAUGE)
        if total is None:
            return None
        completed = counters.get(SHARDS_COMPLETED_COUNTER, 0)
        remaining = max(0, int(total) - completed)
        eta = (round(elapsed / completed * remaining, 3)
               if completed and remaining else
               (0.0 if not remaining else None))
        return {"completed": completed, "total": int(total),
                "eta_seconds": eta}

    @staticmethod
    def _stream_progress(counters: Dict[str, int],
                         gauges: Dict[str, float]
                         ) -> Optional[Dict[str, Any]]:
        """The ``stream`` block of a streaming run's heartbeat.

        Reads the live gauges a :class:`repro.stream.session.
        StreamSession` maintains; absent on batch runs (no stream
        gauges, no block).
        """
        watermark = gauges.get("stream.watermark")
        if watermark is None:
            return None
        block: Dict[str, Any] = {
            "watermark": int(watermark),
            "open_events": int(gauges.get("stream.open_events", 0)),
            "windows_active": int(
                gauges.get("stream.windows_active", 0)),
            "bins_pushed": counters.get("stream.bins_pushed", 0),
        }
        lag = gauges.get("stream.lag_seconds")
        if lag is not None:
            block["lag_seconds"] = int(lag)
        return block

    @staticmethod
    def _signal_cache(counters: Dict[str, int]
                      ) -> Optional[Dict[str, Any]]:
        hits = counters.get("platform.signal.cache.hits", 0)
        misses = counters.get("platform.signal.cache.misses", 0)
        lookups = hits + misses
        if not lookups:
            return None
        return {"hits": hits, "misses": misses,
                "hit_rate": round(hits / lookups, 4)}
