"""Analysis layer: every table and figure of the paper's §5 (plus §3's
summary figures).

Each module computes one family of results from the merged dataset and
auxiliary datasets, returning plain result objects with ``rows()`` /
``points()`` accessors that the benchmark harness prints in the paper's
format:

- :mod:`repro.analysis.summary` — Table 2.
- :mod:`repro.analysis.country_year` — Table 3 and the country-year
  grouping used throughout §5.1.
- :mod:`repro.analysis.institutions` — Figures 4-9.
- :mod:`repro.analysis.mobilization` — Table 4.
- :mod:`repro.analysis.temporal` — Figures 10-15.
- :mod:`repro.analysis.observability` — Figure 16.
- :mod:`repro.analysis.kio_trends` — Figure 2.
- :mod:`repro.analysis.match_timelines` — Figure 3.
"""

from repro.analysis.summary import Table2, summarize_merged
from repro.analysis.country_year import (
    CountryYearGroup,
    CountryYearTable,
    group_country_years,
)
from repro.analysis.institutions import (
    GroupDistributions,
    institution_distributions,
    state_control_split,
    state_share_distributions,
)
from repro.analysis.mobilization import MobilizationTable, mobilization_table
from repro.analysis.temporal import TemporalAnalysis, analyze_temporal
from repro.analysis.observability import (
    ExecStats,
    HealthReport,
    ObservabilityTable,
    execution_report,
    health_report,
    observability_table,
)
from repro.analysis.kio_trends import KIOTrends, kio_trends
from repro.analysis.match_timelines import MatchTimeline, match_timeline
from repro.analysis.robustness import (
    weekly_mobilization_table,
    within_country_rates,
)
from repro.analysis.subnational import SubnationalStats, subnational_stats
from repro.analysis.trends import YearlyTrends, yearly_trends
from repro.analysis.case_study import CaseStudy, build_case_study
from repro.analysis.significance import GroupComparison, compare_groups
from repro.analysis.impact import UserImpact, user_impact

__all__ = [
    "Table2", "summarize_merged",
    "CountryYearGroup", "CountryYearTable", "group_country_years",
    "GroupDistributions", "institution_distributions",
    "state_control_split", "state_share_distributions",
    "MobilizationTable", "mobilization_table",
    "TemporalAnalysis", "analyze_temporal",
    "ExecStats", "execution_report",
    "HealthReport", "health_report",
    "ObservabilityTable", "observability_table",
    "KIOTrends", "kio_trends",
    "MatchTimeline", "match_timeline",
    "weekly_mobilization_table", "within_country_rates",
    "SubnationalStats", "subnational_stats",
    "YearlyTrends", "yearly_trends",
    "CaseStudy", "build_case_study",
    "GroupComparison", "compare_groups",
    "UserImpact", "user_impact",
]
