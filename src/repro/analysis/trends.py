"""Yearly event trends from the merged dataset.

Figure 2 shows KIO's yearly trend; this module computes the IODA-side
counterpart — shutdowns and spontaneous outages per year, and the number
of distinct countries affected per year — useful for sanity-checking that
a synthetic configuration does not concentrate all activity in one year.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Mapping

from repro.core.merge import MergedDataset

__all__ = ["YearlyTrends", "yearly_trends"]


@dataclass(frozen=True)
class YearlyTrends:
    """Per-year event and country counts."""

    shutdowns: Mapping[int, int]
    outages: Mapping[int, int]
    shutdown_countries: Mapping[int, int]
    outage_countries: Mapping[int, int]

    def years(self) -> List[int]:
        return sorted(set(self.shutdowns) | set(self.outages))

    def rows(self) -> List[str]:
        lines = [f"{'Year':<6}{'Shutdowns':>10}{'(countries)':>12}"
                 f"{'Outages':>9}{'(countries)':>12}"]
        for year in self.years():
            lines.append(
                f"{year:<6}{self.shutdowns.get(year, 0):>10}"
                f"{self.shutdown_countries.get(year, 0):>12}"
                f"{self.outages.get(year, 0):>9}"
                f"{self.outage_countries.get(year, 0):>12}")
        return lines


def yearly_trends(merged: MergedDataset) -> YearlyTrends:
    """Count labeled events per calendar year (UTC)."""
    shutdown_counts: Counter = Counter()
    outage_counts: Counter = Counter()
    shutdown_country_sets: Dict[int, set] = {}
    outage_country_sets: Dict[int, set] = {}
    for event in merged.labeled:
        year = time.gmtime(event.record.span.start).tm_year
        iso2 = event.record.country_iso2
        if event.is_shutdown:
            shutdown_counts[year] += 1
            shutdown_country_sets.setdefault(year, set()).add(iso2)
        else:
            outage_counts[year] += 1
            outage_country_sets.setdefault(year, set()).add(iso2)
    return YearlyTrends(
        shutdowns=dict(shutdown_counts),
        outages=dict(outage_counts),
        shutdown_countries={y: len(s)
                            for y, s in shutdown_country_sets.items()},
        outage_countries={y: len(s)
                          for y, s in outage_country_sets.items()},
    )
