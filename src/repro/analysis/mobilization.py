"""Mobilization events predict shutdowns: Table 4 (§5.2).

Over all (country, local day) cells in the study period, compute the
probability that a shutdown / spontaneous outage *starts* on a day with an
election, coup, or protest versus days without one.  Protest coverage ends
in 2019 (§5.2 footnote 9), so protest rows are computed on the 2018-2019
subset of days.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.core.merge import MergedDataset
from repro.countries.registry import CountryRegistry
from repro.datasets.coups import CoupDataset
from repro.datasets.elections import ElectionDataset
from repro.datasets.protests import PROTEST_DATA_END, ProtestDataset
from repro.stats.contingency import ConditionalRates, DayLevelContingency
from repro.timeutils.timestamps import DAY
from repro.timeutils.timezones import local_date

__all__ = ["MobilizationTable", "mobilization_table"]

Cell = Tuple[str, int]


@dataclass(frozen=True)
class MobilizationTable:
    """Table 4: per event kind, conditional shutdown/outage rates."""

    rates: Mapping[str, Tuple[ConditionalRates, ConditionalRates]]

    def rows(self) -> List[str]:
        lines: List[str] = []
        header = f"{'Event':<12} {'Pr(Shutdown)':>13} {'Pr(Outage)':>11}"
        lines.append(header)
        for kind, (shutdown, outage) in self.rates.items():
            lines.append(
                f"{kind.capitalize():<12} "
                f"{shutdown.rate_given_condition:>13.4f} "
                f"{outage.rate_given_condition:>11.4f}")
            lines.append(
                f"{'No ' + kind:<12} "
                f"{shutdown.rate_given_not_condition:>13.4f} "
                f"{outage.rate_given_not_condition:>11.4f}")
        return lines

    def risk_ratio(self, kind: str) -> float:
        """How many times a shutdown is more likely on event days."""
        return self.rates[kind][0].risk_ratio

    def outage_risk_ratio(self, kind: str) -> float:
        return self.rates[kind][1].risk_ratio


def _event_cells(registry: CountryRegistry, dataset,
                 day_attr: str = "day") -> Set[Cell]:
    cells: Set[Cell] = set()
    for record in dataset:
        iso2 = registry.by_name(record.country_name).iso2
        cells.add((iso2, getattr(record, day_attr)))
    return cells


def _start_day_cells(merged: MergedDataset, shutdown: bool) -> Set[Cell]:
    events = (merged.ioda_shutdowns() if shutdown
              else merged.ioda_outages())
    cells: Set[Cell] = set()
    for event in events:
        iso2 = event.record.country_iso2
        offset = merged.registry.get(iso2).utc_offset
        cells.add((iso2, local_date(event.record.span.start, offset)))
    if shutdown:
        # KIO full-network entries are shutdowns too (their start day is
        # already a local date).
        for kio_event in merged.kio_full_network:
            iso2 = merged.registry.by_name(kio_event.country_name).iso2
            cells.add((iso2, kio_event.start_day))
    return cells


def mobilization_table(merged: MergedDataset,
                       coups: CoupDataset,
                       elections: ElectionDataset,
                       protests: ProtestDataset) -> MobilizationTable:
    """Compute Table 4."""
    registry = merged.registry
    first_day = merged.period.start // DAY
    last_day = -(-merged.period.end // DAY)
    days = range(first_day, last_day)
    contingency = DayLevelContingency(
        countries=[c.iso2 for c in registry], day_indices=days)

    shutdown_cells = _start_day_cells(merged, shutdown=True)
    outage_cells = _start_day_cells(merged, shutdown=False)

    conditions: Dict[str, Tuple[Set[Cell], Optional[FrozenSet[int]]]] = {
        "election": (_event_cells(registry, elections), None),
        "coup": (_event_cells(registry, coups), None),
        "protest": (
            _event_cells(registry, protests),
            frozenset(range(first_day, min(last_day, PROTEST_DATA_END)))),
    }

    rates: Dict[str, Tuple[ConditionalRates, ConditionalRates]] = {}
    for kind, (cells, day_subset) in conditions.items():
        rates[kind] = (
            contingency.rates(cells, shutdown_cells, day_subset),
            contingency.rates(cells, outage_cells, day_subset),
        )
    return MobilizationTable(rates=rates)
