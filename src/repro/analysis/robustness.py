"""Robustness checks for the mobilization analysis (§5.2, footnote 11).

The paper reports that Table 4's results hold under several alternative
specifications: aggregating to the week level instead of the day level,
and considering within-country trends.  This module implements both:

- :func:`weekly_mobilization_table` — the same contingency computation
  over (country, ISO week) cells.
- :func:`within_country_rates` — restricting the universe to countries
  that experienced at least one shutdown, so the comparison is "event
  days vs non-event days *within* shutdown-prone countries" (a simple
  fixed-effects analog).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set, Tuple

from repro.analysis.mobilization import (
    MobilizationTable,
    _event_cells,
    _start_day_cells,
)
from repro.core.merge import MergedDataset
from repro.datasets.coups import CoupDataset
from repro.datasets.elections import ElectionDataset
from repro.datasets.protests import PROTEST_DATA_END, ProtestDataset
from repro.stats.contingency import ConditionalRates, DayLevelContingency
from repro.timeutils.timestamps import DAY

__all__ = ["weekly_mobilization_table", "within_country_rates",
           "mobilization_with_margin"]

Cell = Tuple[str, int]

_DAYS_PER_WEEK = 7


def _to_weeks(cells: Set[Cell]) -> Set[Cell]:
    """Collapse (country, day) cells to (country, week) cells."""
    return {(iso2, day // _DAYS_PER_WEEK) for iso2, day in cells}


def weekly_mobilization_table(merged: MergedDataset,
                              coups: CoupDataset,
                              elections: ElectionDataset,
                              protests: ProtestDataset
                              ) -> MobilizationTable:
    """Table 4 aggregated to the week level (footnote 11)."""
    registry = merged.registry
    first_week = (merged.period.start // DAY) // _DAYS_PER_WEEK
    last_week = (-(-merged.period.end // DAY)) // _DAYS_PER_WEEK + 1
    weeks = range(first_week, last_week)
    contingency = DayLevelContingency(
        countries=[c.iso2 for c in registry], day_indices=weeks)

    shutdown_cells = _to_weeks(_start_day_cells(merged, shutdown=True))
    outage_cells = _to_weeks(_start_day_cells(merged, shutdown=False))
    protest_weeks = frozenset(
        range(first_week, min(last_week,
                              PROTEST_DATA_END // _DAYS_PER_WEEK)))

    conditions = {
        "election": (_to_weeks(_event_cells(registry, elections)), None),
        "coup": (_to_weeks(_event_cells(registry, coups)), None),
        "protest": (_to_weeks(_event_cells(registry, protests)),
                    protest_weeks),
    }
    rates: Dict[str, Tuple[ConditionalRates, ConditionalRates]] = {}
    for kind, (cells, subset) in conditions.items():
        rates[kind] = (
            contingency.rates(cells, shutdown_cells, subset),
            contingency.rates(cells, outage_cells, subset),
        )
    return MobilizationTable(rates=rates)


def mobilization_with_margin(merged: MergedDataset,
                             coups: CoupDataset,
                             elections: ElectionDataset,
                             protests: ProtestDataset,
                             margin_days: int = 1) -> MobilizationTable:
    """Table 4 with condition days widened by ±``margin_days``.

    Shutdown orders sometimes precede an election by a day or trail a
    protest's first day; widening the condition window tests whether the
    same-day result is an artifact of exact-day alignment.
    """
    registry = merged.registry
    first_day = merged.period.start // DAY
    last_day = -(-merged.period.end // DAY)
    contingency = DayLevelContingency(
        countries=[c.iso2 for c in registry],
        day_indices=range(first_day, last_day))

    def widen(cells: Set[Cell]) -> Set[Cell]:
        widened: Set[Cell] = set()
        for iso2, day in cells:
            for delta in range(-margin_days, margin_days + 1):
                widened.add((iso2, day + delta))
        return widened

    shutdown_cells = _start_day_cells(merged, shutdown=True)
    outage_cells = _start_day_cells(merged, shutdown=False)
    protest_days = frozenset(
        range(first_day, min(last_day, PROTEST_DATA_END)))
    conditions = {
        "election": (widen(_event_cells(registry, elections)), None),
        "coup": (widen(_event_cells(registry, coups)), None),
        "protest": (widen(_event_cells(registry, protests)),
                    protest_days),
    }
    rates: Dict[str, Tuple[ConditionalRates, ConditionalRates]] = {}
    for kind, (cells, subset) in conditions.items():
        rates[kind] = (
            contingency.rates(cells, shutdown_cells, subset),
            contingency.rates(cells, outage_cells, subset),
        )
    return MobilizationTable(rates=rates)


def within_country_rates(merged: MergedDataset,
                         coups: CoupDataset,
                         elections: ElectionDataset,
                         protests: ProtestDataset) -> MobilizationTable:
    """Table 4 restricted to countries with at least one shutdown.

    This removes the cross-country confound ("shutdown-prone countries
    simply have more of everything"): if mobilization still predicts
    shutdowns *within* those countries, the effect is not a country-level
    artifact.
    """
    registry = merged.registry
    shutdown_countries = set(merged.shutdown_countries())
    first_day = merged.period.start // DAY
    last_day = -(-merged.period.end // DAY)
    contingency = DayLevelContingency(
        countries=sorted(shutdown_countries),
        day_indices=range(first_day, last_day))

    def restrict(cells: Set[Cell]) -> Set[Cell]:
        return {cell for cell in cells if cell[0] in shutdown_countries}

    shutdown_cells = restrict(_start_day_cells(merged, shutdown=True))
    outage_cells = restrict(_start_day_cells(merged, shutdown=False))
    protest_days = frozenset(
        range(first_day, min(last_day, PROTEST_DATA_END)))
    conditions = {
        "election": (restrict(_event_cells(registry, elections)), None),
        "coup": (restrict(_event_cells(registry, coups)), None),
        "protest": (restrict(_event_cells(registry, protests)),
                    protest_days),
    }
    rates: Dict[str, Tuple[ConditionalRates, ConditionalRates]] = {}
    for kind, (cells, subset) in conditions.items():
        rates[kind] = (
            contingency.rates(cells, shutdown_cells, subset),
            contingency.rates(cells, outage_cells, subset),
        )
    return MobilizationTable(rates=rates)
