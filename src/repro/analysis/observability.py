"""Observability: what the system saw, and what running it cost.

Two reports live here:

- Signal observability (Figure 16, §5.3): for each signal, the
  percentage of shutdown and spontaneous-outage events whose curated
  record marks the signal as humanly visible, plus the percentage
  visible in all three signals simultaneously.
- Execution observability: the rendered :class:`repro.exec.ExecStats`
  report for a pipeline run — per-stage wall time, shard-cache hit/miss
  counters, and shard skew — as surfaced by ``repro run --stats``.
  Since :mod:`repro.obs` landed, that report is a derived view over the
  run's span tree (:meth:`ExecStats.from_obs`); the full tree plus
  metrics live in the run journal and the ``--trace`` Chrome export,
  summarized by ``repro trace summarize`` (:mod:`repro.obs.summary`).
- Run health: the rendered :class:`repro.obs.HealthReport` fidelity
  scorecard for a run — event populations, match fractions, and
  operational budgets graded against the paper's targets — as surfaced
  by ``repro run --health`` and ``repro health RUN.jsonl``.

:class:`ExecStats`, :func:`execution_report`, and
:func:`health_report` are re-exported from :mod:`repro.analysis` and
:mod:`repro.api` as the stable import path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.core.labeling import LabeledEvent
from repro.core.merge import MergedDataset
from repro.errors import SignalError
from repro.exec.stats import ExecStats
from repro.obs.health import HealthReport
from repro.signals.kinds import SignalKind

__all__ = ["ExecStats", "HealthReport", "ObservabilityTable",
           "execution_report", "health_report", "observability_table"]


def execution_report(stats: ExecStats) -> List[str]:
    """Human-readable lines describing one pipeline execution."""
    return stats.rows()


def health_report(report: HealthReport) -> List[str]:
    """Human-readable lines of one run's fidelity scorecard."""
    return report.rows()


@dataclass(frozen=True)
class ObservabilityTable:
    """Figure 16's bars."""

    shutdown_pct: Mapping[SignalKind, float]
    outage_pct: Mapping[SignalKind, float]
    shutdown_all_pct: float
    outage_all_pct: float

    def rows(self) -> List[str]:
        lines = []
        for kind in SignalKind:
            lines.append(
                f"{kind.label:<15} shutdowns {self.shutdown_pct[kind]:5.1f}%"
                f"   outages {self.outage_pct[kind]:5.1f}%")
        lines.append(
            f"{'All (3-way)':<15} shutdowns {self.shutdown_all_pct:5.1f}%"
            f"   outages {self.outage_all_pct:5.1f}%")
        return lines


def _percentages(events: Sequence[LabeledEvent]
                 ) -> tuple[Dict[SignalKind, float], float]:
    if not events:
        raise SignalError("no events to summarize")
    per_signal = {
        kind: 100.0 * sum(
            1 for e in events if e.record.human_visible[kind])
        / len(events)
        for kind in SignalKind
    }
    all_pct = 100.0 * sum(
        1 for e in events if e.record.visible_in_all_signals) / len(events)
    return per_signal, all_pct


def observability_table(merged: MergedDataset) -> ObservabilityTable:
    """Compute Figure 16 from the merged dataset."""
    shutdown_pct, shutdown_all = _percentages(merged.ioda_shutdowns())
    outage_pct, outage_all = _percentages(merged.ioda_outages())
    return ObservabilityTable(
        shutdown_pct=shutdown_pct,
        outage_pct=outage_pct,
        shutdown_all_pct=shutdown_all,
        outage_all_pct=outage_all,
    )
