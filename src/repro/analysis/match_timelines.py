"""Match timelines: Figure 3 (§4).

For one KIO entry matched to a series of IODA events (e.g. an exam-season
series), lay out the three bands of the figure: the KIO entry's local-date
span, the matching window actually used (including the 24-hour lookback),
and every matched IODA event's precise span.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.matching import EventMatcher
from repro.core.merge import MergedDataset
from repro.kio.schema import KIOEvent
from repro.timeutils.timestamps import TimeRange

__all__ = ["MatchTimeline", "match_timeline", "best_series_example"]


@dataclass(frozen=True)
class MatchTimeline:
    """The three bands of one Figure 3 panel."""

    country_iso2: str
    kio_event: KIOEvent
    kio_span_utc: TimeRange
    match_window_utc: TimeRange
    ioda_spans: Tuple[TimeRange, ...]

    def rows(self) -> List[str]:
        lines = [
            f"Country: {self.country_iso2}",
            f"KIO entry (local dates as UTC span): {self.kio_span_utc}",
            f"Match window (with lookback):        {self.match_window_utc}",
            f"Matched IODA events: {len(self.ioda_spans)}",
        ]
        lines.extend(f"  IODA: {span}" for span in self.ioda_spans)
        return lines


def match_timeline(merged: MergedDataset,
                   kio_event_id: int) -> MatchTimeline:
    """Build the timeline for one KIO entry."""
    kio_event = next(e for e in merged.kio_full_network
                     if e.event_id == kio_event_id)
    matcher = EventMatcher(merged.registry)
    window = matcher.kio_window_utc(kio_event)
    kio_span = TimeRange(window.start + matcher.config.lookback, window.end)
    matched_record_ids = {
        m.ioda_record_id for m in merged.matches
        if m.kio_event_id == kio_event_id}
    spans = tuple(sorted(
        (r.span for r in merged.ioda_records
         if r.record_id in matched_record_ids),
        key=lambda s: s.start))
    iso2 = merged.registry.by_name(kio_event.country_name).iso2
    return MatchTimeline(
        country_iso2=iso2,
        kio_event=kio_event,
        kio_span_utc=kio_span,
        match_window_utc=window,
        ioda_spans=spans,
    )


def best_series_example(merged: MergedDataset,
                        min_ioda_events: int = 4) -> Optional[int]:
    """The KIO entry matched to the most IODA events (the figure's
    exam-series examples), or None if nothing qualifies."""
    counts: dict[int, int] = {}
    for match in merged.matches:
        counts[match.kio_event_id] = counts.get(match.kio_event_id, 0) + 1
    qualified = [(n, event_id) for event_id, n in counts.items()
                 if n >= min_ioda_events]
    if not qualified:
        return None
    return max(qualified)[1]
