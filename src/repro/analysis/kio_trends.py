"""KIO category trends: Figure 2 (§3.2).

Per year, the number of KIO events involving each restriction category
(categories are not mutually exclusive and do not sum to the total) and
the total number of events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.kio.schema import KIOCategory, KIOEvent

__all__ = ["KIOTrends", "kio_trends"]


@dataclass(frozen=True)
class KIOTrends:
    """Figure 2's series."""

    per_year: Mapping[int, Mapping[KIOCategory, int]]
    totals: Mapping[int, int]

    def series(self, category: KIOCategory) -> List[tuple[int, int]]:
        """(year, count) points for one category line."""
        return [(year, counts.get(category, 0))
                for year, counts in sorted(self.per_year.items())]

    def rows(self) -> List[str]:
        lines = [f"{'Year':<6}{'Throttling':>11}{'Service':>9}"
                 f"{'Shutdown':>10}{'Total':>7}"]
        for year in sorted(self.per_year):
            counts = self.per_year[year]
            lines.append(
                f"{year:<6}"
                f"{counts.get(KIOCategory.THROTTLING, 0):>11}"
                f"{counts.get(KIOCategory.SERVICE_BASED, 0):>9}"
                f"{counts.get(KIOCategory.FULL_NETWORK, 0):>10}"
                f"{self.totals[year]:>7}")
        return lines


def kio_trends(events: Sequence[KIOEvent]) -> KIOTrends:
    """Count events per category per year."""
    per_year: Dict[int, Dict[KIOCategory, int]] = {}
    totals: Dict[int, int] = {}
    for event in events:
        counts = per_year.setdefault(event.year, {})
        totals[event.year] = totals.get(event.year, 0) + 1
        for category in event.categories:
            counts[category] = counts.get(category, 0) + 1
    return KIOTrends(per_year=per_year, totals=totals)
