"""Institutional correlates: Figures 4-9.

For each indicator, the analysis builds one ECDF per country-year group
(Shutdowns / Outages / Neither).  Indicators come from the *emitted*
datasets, resolved through the country registry — i.e. the analysis sees
the same country-name variants and missing values the paper's did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.analysis.country_year import CountryYearGroup, CountryYearTable
from repro.countries.registry import CountryRegistry
from repro.datasets.vdem import VDemDataset
from repro.datasets.worldbank import WorldBankDataset
from repro.errors import DatasetError
from repro.stats.ecdf import ECDF
from repro.topology.metrics import StateShare

__all__ = [
    "GroupDistributions",
    "institution_distributions",
    "state_share_distributions",
    "state_control_split",
]


@dataclass(frozen=True)
class GroupDistributions:
    """One indicator's per-group ECDFs (one CDF figure)."""

    indicator: str
    cdfs: Mapping[CountryYearGroup, ECDF]

    def median(self, group: CountryYearGroup) -> float:
        return self.cdfs[group].median

    def medians(self) -> Dict[str, float]:
        return {group.value: self.median(group)
                for group in self.cdfs}

    def rows(self) -> List[str]:
        return [
            f"{self.indicator} median [{group.value}]: "
            f"{cdf.median:.3f} (n={cdf.n})"
            for group, cdf in self.cdfs.items()
        ]


def _per_group(table: CountryYearTable,
               value_of: Callable[[str, int], Optional[float]]
               ) -> Dict[CountryYearGroup, List[float]]:
    values: Dict[CountryYearGroup, List[float]] = {
        group: [] for group in CountryYearGroup}
    for (iso2, year), group in table.assignments.items():
        value = value_of(iso2, year)
        if value is not None:
            values[group].append(value)
    return values


def _distributions(indicator: str, table: CountryYearTable,
                   value_of: Callable[[str, int], Optional[float]]
                   ) -> GroupDistributions:
    grouped = _per_group(table, value_of)
    empty = [g.value for g, vals in grouped.items() if not vals]
    if empty:
        raise DatasetError(
            f"indicator {indicator!r} has empty groups: {empty}")
    return GroupDistributions(
        indicator=indicator,
        cdfs={group: ECDF.from_samples(vals)
              for group, vals in grouped.items()})


def institution_distributions(
        table: CountryYearTable,
        registry: CountryRegistry,
        vdem: VDemDataset,
        worldbank: WorldBankDataset) -> Dict[str, GroupDistributions]:
    """Figures 4-7: all six institutional/economic indicators.

    Returns a dict keyed by indicator name:
    ``liberal_democracy`` (Fig 4), ``military_power`` (Fig 5),
    ``media_bias`` and ``freedom_discussion_men`` (Fig 6),
    ``gdp_per_capita`` and ``broadband_fraction`` (Fig 7).
    """
    vdem_index: Dict[Tuple[str, int], dict] = {}
    for record in vdem:
        iso2 = registry.by_name(record.country_name).iso2
        vdem_index[(iso2, record.year)] = {
            "liberal_democracy": record.liberal_democracy,
            "military_power": record.military_power,
            "media_bias": record.media_bias,
            "freedom_discussion_men": record.freedom_discussion_men,
        }
    wb_index: Dict[Tuple[str, int], dict] = {}
    for wb_record in worldbank:
        # The Data Bank's authoritative key is the alpha-3 code; fall
        # back to name resolution for records without one.
        if wb_record.country_code:
            iso2 = registry.by_iso3(wb_record.country_code).iso2
        else:
            iso2 = registry.by_name(wb_record.country_name).iso2
        wb_index[(iso2, wb_record.year)] = {
            "gdp_per_capita": wb_record.gdp_per_capita_ppp,
            # World Bank publishes per-100; the paper plots a fraction.
            "broadband_fraction": (
                None if wb_record.broadband_per_100 is None
                else wb_record.broadband_per_100 / 100.0),
        }

    def from_index(index: Dict[Tuple[str, int], dict],
                   field: str) -> Callable[[str, int], Optional[float]]:
        def value_of(iso2: str, year: int) -> Optional[float]:
            entry = index.get((iso2, year))
            return None if entry is None else entry.get(field)
        return value_of

    results: Dict[str, GroupDistributions] = {}
    for field in ("liberal_democracy", "military_power", "media_bias",
                  "freedom_discussion_men"):
        results[field] = _distributions(
            field, table, from_index(vdem_index, field))
    for field in ("gdp_per_capita", "broadband_fraction"):
        results[field] = _distributions(
            field, table, from_index(wb_index, field))
    return results


def state_share_distributions(
        table: CountryYearTable,
        state_shares: Mapping[str, StateShare]
) -> Dict[str, GroupDistributions]:
    """Figure 8: state-owned address-space and eyeball fractions per group.

    Restricted, as in the paper, to countries with state-owned providers
    (a nonzero share in at least one metric).
    """
    def addr(iso2: str, year: int) -> Optional[float]:
        share = state_shares.get(iso2)
        if share is None or (share.address_space_fraction == 0.0
                             and share.eyeball_fraction == 0.0):
            return None
        return share.address_space_fraction

    def eyeballs(iso2: str, year: int) -> Optional[float]:
        share = state_shares.get(iso2)
        if share is None or (share.address_space_fraction == 0.0
                             and share.eyeball_fraction == 0.0):
            return None
        return share.eyeball_fraction

    return {
        "state_owned_address_space": _distributions(
            "state_owned_address_space", table, addr),
        "state_owned_eyeballs": _distributions(
            "state_owned_eyeballs", table, eyeballs),
    }


def state_control_split(
        table: CountryYearTable,
        registry: CountryRegistry,
        vdem: VDemDataset,
        state_shares: Mapping[str, StateShare]
) -> Dict[str, GroupDistributions]:
    """Figure 9: liberal-democracy CDFs split by majority state control
    of the address space (>50%, §5.1.1)."""
    libdem: Dict[Tuple[str, int], float] = {}
    for record in vdem:
        iso2 = registry.by_name(record.country_name).iso2
        libdem[(iso2, record.year)] = record.liberal_democracy

    def value_for(controlled: bool
                  ) -> Callable[[str, int], Optional[float]]:
        def value_of(iso2: str, year: int) -> Optional[float]:
            share = state_shares.get(iso2)
            if share is None or share.state_controlled != controlled:
                return None
            return libdem.get((iso2, year))
        return value_of

    return {
        "state_controlled": _distributions(
            "state_controlled", table, value_for(True)),
        "non_state_controlled": _distributions(
            "non_state_controlled", table, value_for(False)),
    }
