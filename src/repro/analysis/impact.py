"""Internet-user impact (§4's ">1 billion users" headline).

The paper notes that the 35 countries with national-scale shutdowns
together represent over a billion Internet users (DataReportal
estimates).  This module computes the same aggregate from the merged
dataset plus the DataReportal emitter, for shutdown and outage countries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.merge import MergedDataset
from repro.datasets.datareportal import DataReportalDataset

__all__ = ["UserImpact", "user_impact"]


@dataclass(frozen=True)
class UserImpact:
    """Aggregate Internet users behind each event class."""

    shutdown_users_millions: float
    outage_users_millions: float
    n_shutdown_countries: int
    n_outage_countries: int
    reference_year: int

    def rows(self) -> List[str]:
        return [
            f"Internet users in shutdown countries "
            f"({self.n_shutdown_countries} countries, "
            f"{self.reference_year} estimates): "
            f"{self.shutdown_users_millions:,.0f} M",
            f"Internet users in outage countries "
            f"({self.n_outage_countries} countries): "
            f"{self.outage_users_millions:,.0f} M",
        ]


def user_impact(merged: MergedDataset,
                datareportal: DataReportalDataset,
                reference_year: int = 2021) -> UserImpact:
    """Sum user estimates over shutdown and outage countries."""
    registry = merged.registry
    users: Dict[str, float] = {}
    for record in datareportal:
        if record.year == reference_year:
            iso2 = registry.by_name(record.country_name).iso2
            users[iso2] = record.users_millions
    shutdown_countries = merged.shutdown_countries()
    outage_countries = merged.outage_countries()
    return UserImpact(
        shutdown_users_millions=sum(
            users.get(iso2, 0.0) for iso2 in shutdown_countries),
        outage_users_millions=sum(
            users.get(iso2, 0.0) for iso2 in outage_countries),
        n_shutdown_countries=len(shutdown_countries),
        n_outage_countries=len(outage_countries),
        reference_year=reference_year,
    )
