"""Country-year grouping (Table 3 and the basis of §5.1).

Each (country, year) is assigned to exactly one group:

- **SHUTDOWNS** — at least one national-scale shutdown that year;
- **OUTAGES** — no shutdown, but at least one spontaneous outage;
- **NEITHER** — neither event class.

A country contributes one observation per study year, so the same country
can appear in different groups in different years (the paper's
Myanmar-2018 example).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.core.merge import MergedDataset
from repro.timeutils.timestamps import DAY

__all__ = ["CountryYearGroup", "CountryYearTable", "group_country_years"]


class CountryYearGroup(enum.Enum):
    """The three groups of Table 3."""

    SHUTDOWNS = "Shutdowns"
    OUTAGES = "Outages"
    NEITHER = "Neither"


@dataclass(frozen=True)
class CountryYearTable:
    """Group assignment for every country-year plus the Table 3 counts."""

    assignments: Mapping[Tuple[str, int], CountryYearGroup]

    def count(self, group: CountryYearGroup) -> int:
        return sum(1 for g in self.assignments.values() if g is group)

    def counts(self) -> Dict[CountryYearGroup, int]:
        """The three cells of Table 3."""
        return {group: self.count(group) for group in CountryYearGroup}

    def of(self, iso2: str, year: int) -> CountryYearGroup:
        return self.assignments[(iso2.upper(), year)]

    def country_years(self,
                      group: CountryYearGroup) -> List[Tuple[str, int]]:
        """All (iso2, year) pairs in a group, sorted."""
        return sorted(key for key, g in self.assignments.items()
                      if g is group)

    def rows(self) -> List[str]:
        counts = self.counts()
        return [f"Country-years w/ {group.value}: {counts[group]}"
                for group in CountryYearGroup]


def _year_of(ts: int) -> int:
    return time.gmtime(ts).tm_year


def group_country_years(merged: MergedDataset,
                        years: Iterable[int]) -> CountryYearTable:
    """Assign every (registry country, year) to a Table 3 group.

    Shutdown country-years come from both IODA-labeled shutdowns and
    nationwide full-network KIO entries; outage country-years from the
    remaining IODA events.
    """
    year_list = sorted(set(years))
    shutdown_years = set()
    outage_years = set()
    for event in merged.ioda_shutdowns():
        shutdown_years.add((event.record.country_iso2,
                            _year_of(event.record.span.start)))
    for kio_event in merged.kio_full_network:
        iso2 = merged.registry.by_name(kio_event.country_name).iso2
        shutdown_years.add(
            (iso2, _year_of(kio_event.start_day * DAY)))
    for event in merged.ioda_outages():
        outage_years.add((event.record.country_iso2,
                          _year_of(event.record.span.start)))

    assignments: Dict[Tuple[str, int], CountryYearGroup] = {}
    for country in merged.registry:
        for year in year_list:
            key = (country.iso2, year)
            if key in shutdown_years:
                assignments[key] = CountryYearGroup.SHUTDOWNS
            elif key in outage_years:
                assignments[key] = CountryYearGroup.OUTAGES
            else:
                assignments[key] = CountryYearGroup.NEITHER
    return CountryYearTable(assignments=assignments)
