"""Case-study brief generation.

The paper walks through individual events (the Sudan example of Fig 1 /
Table 1, the Syria/Iraq exam series of Fig 3).  :func:`build_case_study`
assembles the same narrative for any curated event programmatically: the
record's fields, the per-signal evidence, KIO matches, the triage
verdict, and the contextual mobilization events — the brief an advocacy
investigator would want on their screen.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.heuristics import ShutdownTriage, TriageAssessment
from repro.core.merge import MergedDataset
from repro.ioda.platform import IODAPlatform
from repro.ioda.records import OutageRecord
from repro.signals.entities import Entity
from repro.signals.kinds import SignalKind
from repro.timeutils.timestamps import DAY, HOUR, TimeRange, format_utc
from repro.timeutils.timezones import local_date

__all__ = ["CaseStudy", "build_case_study"]


@dataclass(frozen=True)
class SignalEvidence:
    """One signal's before/during summary."""

    signal: SignalKind
    baseline: float
    minimum: float

    @property
    def drop(self) -> float:
        if self.baseline <= 0:
            return 0.0
        return max(0.0, 1.0 - self.minimum / self.baseline)


@dataclass(frozen=True)
class CaseStudy:
    """A complete investigator's brief for one curated event."""

    record: OutageRecord
    country_name: str
    evidence: Tuple[SignalEvidence, ...]
    matched_kio_ids: Tuple[int, ...]
    label: str
    triage: Optional[TriageAssessment]
    same_day_events: Tuple[str, ...]

    def rows(self) -> List[str]:
        lines = [
            f"Case study: {self.country_name} "
            f"({self.record.country_iso2})",
            f"  window: {format_utc(self.record.span.start)} .. "
            f"{format_utc(self.record.span.end)} "
            f"({self.record.duration_hours:.1f} h)",
            f"  label: {self.label}"
            + (f"; matched KIO entries {list(self.matched_kio_ids)}"
               if self.matched_kio_ids else "; no KIO match"),
            f"  recorded cause: {self.record.cause or 'none found'} "
            f"[{self.record.confirmation.value}]",
        ]
        for item in self.evidence:
            lines.append(
                f"  {item.signal.label:<15} baseline "
                f"{item.baseline:8.1f} -> min {item.minimum:8.1f} "
                f"({item.drop:.0%} drop)")
        if self.same_day_events:
            lines.append("  same-day mobilization: "
                         + ", ".join(self.same_day_events))
        else:
            lines.append("  same-day mobilization: none on record")
        if self.triage is not None:
            lines.extend(f"  {row}" for row in self.triage.rows())
        return lines


def build_case_study(merged: MergedDataset, platform: IODAPlatform,
                     record_id: int,
                     triage: Optional[ShutdownTriage] = None) -> CaseStudy:
    """Assemble the brief for one curated record."""
    labeled = next(e for e in merged.labeled
                   if e.record.record_id == record_id)
    record = labeled.record
    country = merged.registry.get(record.country_iso2)
    window = record.span.expand(before=DAY, after=6 * HOUR)
    evidence = []
    for kind in SignalKind:
        series = platform.signal(
            Entity.country(record.country_iso2), kind, window)
        before = series.slice(TimeRange(window.start, record.span.start))
        during = series.slice(record.span)
        evidence.append(SignalEvidence(
            signal=kind,
            baseline=float(np.median(before.values)),
            minimum=float(during.values.min()) if len(during) else 0.0,
        ))

    same_day = []
    scenario = platform.scenario
    event_day = local_date(record.span.start, country.utc_offset)
    for event in scenario.events:
        if event.country_iso2 != record.country_iso2:
            continue
        offset = country.utc_offset
        if local_date(event.day_start_utc, offset) == event_day:
            same_day.append(event.kind.value)

    assessment = None
    if triage is not None:
        year = time.gmtime(record.span.start).tm_year
        assessment = triage.assess(record, year)

    return CaseStudy(
        record=record,
        country_name=country.name,
        evidence=tuple(evidence),
        matched_kio_ids=labeled.matched_kio_ids,
        label=labeled.label.value,
        triage=assessment,
        same_day_events=tuple(sorted(set(same_day))),
    )
