"""Temporal fingerprints of shutdowns: Figures 10-15 (§5.3).

All computations run over the "IODA shutdowns" and "IODA outages" sets —
IODA-recorded events only, because only IODA provides fine-grained times.

- **Durations** (Fig 10): ECDFs, plus the round-number fractions the
  paper highlights (30-minute multiples; the 4.5/5.5/8/10-hour spikes).
- **Recurrence intervals** (Fig 11): gaps between consecutive event
  starts within a country, plus the fraction at exactly 1-4 days.
- **Start minute, UTC and local** (Figs 12-13): on-the-hour and
  half-hour concentrations.
- **Start hour, local** (Fig 14): the 00:00-06:00 concentration.
- **Start weekday, local** (Fig 15): the weekday PDF and the two-tailed
  binomial test for the Friday deficit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.labeling import LabeledEvent
from repro.core.merge import MergedDataset
from repro.countries.registry import CountryRegistry
from repro.errors import SignalError
from repro.stats.binomial import binomial_test_two_tailed
from repro.stats.descriptive import fraction_multiple_of
from repro.stats.ecdf import ECDF
from repro.timeutils.calendars import WEEKDAY_NAMES
from repro.timeutils.timezones import (
    local_hour_of_day,
    local_minute_of_hour,
    local_weekday,
)

__all__ = ["ClassTemporal", "TemporalAnalysis", "analyze_temporal"]

_ROUND_DURATIONS_H = (4.5, 5.5, 8.0, 10.0)


@dataclass(frozen=True)
class ClassTemporal:
    """Temporal statistics for one event class."""

    label: str
    n_events: int
    durations_h: ECDF
    frac_duration_30min_multiple: float
    frac_duration_round_hours: float
    intervals_days: ECDF | None
    frac_interval_1_to_4_days: float
    frac_countries_recurring: float
    minute_utc: ECDF
    minute_local: ECDF
    hour_local: ECDF
    frac_on_hour_utc: float
    frac_on_hour_or_half_utc: float
    frac_on_hour_local: float
    frac_start_00_to_06_local: float
    weekday_pdf: Tuple[float, ...]
    friday_p_value: float

    def rows(self) -> List[str]:
        lines = [
            f"[{self.label}] n={self.n_events}",
            f"  median duration: {self.durations_h.median:.2f} h",
            f"  30-min-multiple durations: "
            f"{self.frac_duration_30min_multiple:.1%}",
            f"  4.5/5.5/8/10-hour durations: "
            f"{self.frac_duration_round_hours:.1%}",
            f"  median recurrence interval: "
            + (f"{self.intervals_days.median:.1f} days"
               if self.intervals_days else "n/a"),
            f"  intervals at exactly 1-4 days: "
            f"{self.frac_interval_1_to_4_days:.1%}",
            f"  countries with recurrence: "
            f"{self.frac_countries_recurring:.1%}",
            f"  starts on the hour (UTC): {self.frac_on_hour_utc:.1%}; "
            f"hour-or-half (UTC): {self.frac_on_hour_or_half_utc:.1%}",
            f"  starts on the hour (local): {self.frac_on_hour_local:.1%}",
            f"  starts 00:00-06:00 local: "
            f"{self.frac_start_00_to_06_local:.1%}",
            "  weekday PDF: " + ", ".join(
                f"{WEEKDAY_NAMES[i]} {p:.3f}"
                for i, p in enumerate(self.weekday_pdf)),
            f"  Friday-deficit binomial p-value: {self.friday_p_value:.2e}",
        ]
        return lines


@dataclass(frozen=True)
class TemporalAnalysis:
    """Figures 10-15 for both classes."""

    shutdowns: ClassTemporal
    outages: ClassTemporal

    def rows(self) -> List[str]:
        return self.shutdowns.rows() + self.outages.rows()


def analyze_temporal(merged: MergedDataset) -> TemporalAnalysis:
    """Run the full §5.3 temporal analysis."""
    return TemporalAnalysis(
        shutdowns=_class_temporal(
            "IODA shutdowns", merged.ioda_shutdowns(), merged.registry),
        outages=_class_temporal(
            "IODA outages", merged.ioda_outages(), merged.registry),
    )


def _class_temporal(label: str, events: Sequence[LabeledEvent],
                    registry: CountryRegistry) -> ClassTemporal:
    if not events:
        raise SignalError(f"no events in class {label!r}")
    durations = [e.record.duration_hours for e in events]
    starts_by_country: Dict[str, List[int]] = {}
    minutes_utc: List[int] = []
    minutes_local: List[int] = []
    hours_local: List[int] = []
    weekdays: List[int] = []
    for event in events:
        record = event.record
        offset = registry.get(record.country_iso2).utc_offset
        start = record.span.start
        starts_by_country.setdefault(record.country_iso2, []).append(start)
        minutes_utc.append((start % 3600) // 60)
        minutes_local.append(local_minute_of_hour(start, offset))
        hours_local.append(local_hour_of_day(start, offset))
        weekdays.append(local_weekday(start, offset))

    intervals: List[float] = []
    recurring_countries = 0
    for starts in starts_by_country.values():
        ordered = sorted(starts)
        if len(ordered) > 1:
            recurring_countries += 1
            intervals.extend(
                (b - a) / 86400.0 for a, b in zip(ordered, ordered[1:]))

    weekday_counts = [0] * 7
    for day in weekdays:
        weekday_counts[day] += 1
    n = len(events)
    friday_p = binomial_test_two_tailed(weekday_counts[4], n, 1.0 / 7.0)

    return ClassTemporal(
        label=label,
        n_events=n,
        durations_h=ECDF.from_samples(durations),
        frac_duration_30min_multiple=fraction_multiple_of(
            durations, 0.5, tolerance=1e-6),
        frac_duration_round_hours=sum(
            1 for d in durations
            if any(abs(d - r) < 1e-6 for r in _ROUND_DURATIONS_H)) / n,
        intervals_days=(ECDF.from_samples(intervals)
                        if intervals else None),
        frac_interval_1_to_4_days=(
            sum(1 for gap in intervals
                if any(abs(gap - k) < 1e-6 for k in (1, 2, 3, 4)))
            / len(intervals) if intervals else 0.0),
        frac_countries_recurring=(
            recurring_countries / len(starts_by_country)),
        minute_utc=ECDF.from_samples(minutes_utc),
        minute_local=ECDF.from_samples(minutes_local),
        hour_local=ECDF.from_samples(hours_local),
        frac_on_hour_utc=sum(1 for m in minutes_utc if m == 0) / n,
        frac_on_hour_or_half_utc=sum(
            1 for m in minutes_utc if m in (0, 30)) / n,
        frac_on_hour_local=sum(1 for m in minutes_local if m == 0) / n,
        frac_start_00_to_06_local=sum(
            1 for h in hours_local if h <= 6) / n,
        weekday_pdf=tuple(c / n for c in weekday_counts),
        friday_p_value=friday_p,
    )
