"""Formal significance tests for the §5.1 group comparisons.

The paper shows CDFs; this module backs each figure with Mann-Whitney U
tests between the three country-year groups, so a reader can see which
visual separations are statistically solid and which are not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.analysis.country_year import CountryYearGroup
from repro.analysis.institutions import GroupDistributions
from repro.stats.mannwhitney import MannWhitneyResult, mann_whitney_u

__all__ = ["GroupComparison", "compare_groups"]

_PAIRS: Tuple[Tuple[CountryYearGroup, CountryYearGroup], ...] = (
    (CountryYearGroup.SHUTDOWNS, CountryYearGroup.NEITHER),
    (CountryYearGroup.OUTAGES, CountryYearGroup.NEITHER),
    (CountryYearGroup.SHUTDOWNS, CountryYearGroup.OUTAGES),
)


@dataclass(frozen=True)
class GroupComparison:
    """Mann-Whitney results for one indicator across all group pairs."""

    indicator: str
    results: Mapping[Tuple[CountryYearGroup, CountryYearGroup],
                     MannWhitneyResult]

    def p_value(self, a: CountryYearGroup,
                b: CountryYearGroup) -> float:
        return self.results[(a, b)].p_value

    def rows(self) -> List[str]:
        lines = []
        for (a, b), result in self.results.items():
            lines.append(
                f"{self.indicator}: {a.value} vs {b.value} — "
                f"effect {result.effect_size:.2f}, "
                f"p = {result.p_value:.2e} "
                f"(n={result.n1}/{result.n2})")
        return lines


def compare_groups(
        distributions: GroupDistributions) -> GroupComparison:
    """Pairwise tests for one indicator's per-group distributions."""
    results: Dict[Tuple[CountryYearGroup, CountryYearGroup],
                  MannWhitneyResult] = {}
    for a, b in _PAIRS:
        results[(a, b)] = mann_whitney_u(
            distributions.cdfs[a].sorted_samples,
            distributions.cdfs[b].sorted_samples)
    return GroupComparison(indicator=distributions.indicator,
                           results=results)
