"""Subnational shutdown statistics (§4).

The paper justifies filtering to country-level events with two
observations about subnational shutdowns: 85% of subnational full-network
shutdowns occur in India (per KIO), and 72% of those affect only mobile
networks — which IODA's active probing cannot see.  This module computes
those statistics from the harmonized KIO dataset so the filtering rationale
is itself reproducible.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Sequence

from repro.countries.registry import CountryRegistry
from repro.kio.schema import KIOEvent, NetworkType

__all__ = ["SubnationalStats", "subnational_stats"]


@dataclass(frozen=True)
class SubnationalStats:
    """The §4 subnational filtering rationale, quantified."""

    n_subnational_full_network: int
    top_country_iso2: str
    top_country_fraction: float
    top_country_mobile_only_fraction: float

    def rows(self) -> List[str]:
        return [
            f"subnational full-network KIO entries: "
            f"{self.n_subnational_full_network}",
            f"most-affected country: {self.top_country_iso2} "
            f"({self.top_country_fraction:.0%} of entries)",
            f"mobile-only among its entries: "
            f"{self.top_country_mobile_only_fraction:.0%}",
        ]


def subnational_stats(kio_events: Sequence[KIOEvent],
                      registry: CountryRegistry) -> SubnationalStats:
    """Compute the subnational concentration statistics."""
    subnational = [e for e in kio_events
                   if e.is_full_network and not e.nationwide]
    if not subnational:
        return SubnationalStats(
            n_subnational_full_network=0, top_country_iso2="",
            top_country_fraction=0.0,
            top_country_mobile_only_fraction=0.0)
    counts = Counter(
        registry.by_name(e.country_name).iso2 for e in subnational)
    top_iso2, top_count = counts.most_common(1)[0]
    top_events = [e for e in subnational
                  if registry.by_name(e.country_name).iso2 == top_iso2]
    mobile_only = sum(1 for e in top_events
                      if e.networks is NetworkType.MOBILE)
    return SubnationalStats(
        n_subnational_full_network=len(subnational),
        top_country_iso2=top_iso2,
        top_country_fraction=top_count / len(subnational),
        top_country_mobile_only_fraction=mobile_only / len(top_events),
    )
