"""Table 2: merged dataset summary.

Counts of country-level shutdown and spontaneous-outage events per source
category, the match overlaps, and the top-5 countries per category.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.merge import MergedDataset

__all__ = ["Table2", "summarize_merged"]


@dataclass(frozen=True)
class Table2:
    """The cells of Table 2."""

    kio_total: int
    kio_matched_to_ioda: int
    ioda_shutdown_total: int
    ioda_matched_to_kio: int
    outage_total: int
    union_shutdown_total: int
    top_kio_countries: Tuple[Tuple[str, int], ...]
    top_ioda_shutdown_countries: Tuple[Tuple[str, int], ...]
    top_outage_countries: Tuple[Tuple[str, int], ...]
    n_shutdown_countries: int
    n_outage_countries: int

    def rows(self) -> List[str]:
        """Human-readable rows in the table's layout."""
        def fmt(tops: Tuple[Tuple[str, int], ...]) -> str:
            return ", ".join(f"{iso2} ({count})" for iso2, count in tops)

        return [
            f"KIO country-level shutdown events: {self.kio_total} "
            f"(matched to IODA: {self.kio_matched_to_ioda})",
            f"IODA country-level shutdown events: "
            f"{self.ioda_shutdown_total} "
            f"(matched to KIO: {self.ioda_matched_to_kio})",
            f"IODA country-level spontaneous outages: {self.outage_total}",
            f"Union shutdown set: {self.union_shutdown_total} events "
            f"in {self.n_shutdown_countries} countries",
            f"Spontaneous outages span {self.n_outage_countries} countries",
            f"Top KIO countries: {fmt(self.top_kio_countries)}",
            f"Top IODA shutdown countries: "
            f"{fmt(self.top_ioda_shutdown_countries)}",
            f"Top outage countries: {fmt(self.top_outage_countries)}",
        ]


def _top(counter: Counter, n: int = 5) -> Tuple[Tuple[str, int], ...]:
    """Top-n, extended through ties at the cut as the paper does."""
    ranked = counter.most_common()
    if len(ranked) <= n:
        return tuple(ranked)
    cutoff = ranked[n - 1][1]
    return tuple((iso2, count) for iso2, count in ranked
                 if count > cutoff or count == cutoff)[:n + 3]


def summarize_merged(merged: MergedDataset) -> Table2:
    """Compute Table 2 from the merged dataset."""
    registry = merged.registry
    kio_counter = Counter(
        registry.by_name(e.country_name).iso2
        for e in merged.kio_full_network)
    ioda_shutdowns = merged.ioda_shutdowns()
    ioda_sd_counter = Counter(
        e.record.country_iso2 for e in ioda_shutdowns)
    outages = merged.ioda_outages()
    outage_counter = Counter(e.record.country_iso2 for e in outages)
    matched_kio = {m.kio_event_id for m in merged.matches}
    matched_ioda = {m.ioda_record_id for m in merged.matches}
    return Table2(
        kio_total=len(merged.kio_full_network),
        kio_matched_to_ioda=sum(
            1 for e in merged.kio_full_network
            if e.event_id in matched_kio),
        ioda_shutdown_total=len(ioda_shutdowns),
        ioda_matched_to_kio=sum(
            1 for e in ioda_shutdowns
            if e.record.record_id in matched_ioda),
        outage_total=len(outages),
        union_shutdown_total=merged.total_shutdown_events(),
        top_kio_countries=_top(kio_counter),
        top_ioda_shutdown_countries=_top(ioda_sd_counter),
        top_outage_countries=_top(outage_counter),
        n_shutdown_countries=len(merged.shutdown_countries()),
        n_outage_countries=len(merged.outage_countries()),
    )
