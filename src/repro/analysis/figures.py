"""Figure data export.

Every CDF/PDF figure in the paper is backed here by an exportable series:
:func:`figure_series` computes, for each figure, a mapping from series
label to the (x, y) points a plotting tool would draw, and
:func:`write_csvs` dumps one CSV file per figure.  This is the "data
behind the figures" artifact a reproduction package ships.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Tuple

from repro.analysis.country_year import group_country_years
from repro.analysis.institutions import (
    institution_distributions,
    state_control_split,
    state_share_distributions,
)
from repro.analysis.kio_trends import kio_trends
from repro.analysis.observability import observability_table
from repro.analysis.temporal import analyze_temporal
from repro.core.pipeline import PipelineResult
from repro.kio.schema import KIOCategory
from repro.signals.kinds import SignalKind

__all__ = ["figure_series", "write_csvs"]

Points = List[Tuple[float, float]]
FigureData = Dict[str, Points]

YEARS = [2018, 2019, 2020, 2021]


def figure_series(result: PipelineResult) -> Dict[str, FigureData]:
    """All figures' plottable series, keyed by figure id."""
    merged = result.merged
    figures: Dict[str, FigureData] = {}

    trends = kio_trends(result.kio_events)
    figures["fig02_kio_categories"] = {
        category.value: [(float(year), float(count))
                         for year, count in trends.series(category)]
        for category in KIOCategory
    }
    figures["fig02_kio_categories"]["total"] = [
        (float(year), float(total))
        for year, total in sorted(trends.totals.items())]

    table = group_country_years(merged, YEARS)
    dists = institution_distributions(
        table, merged.registry, result.vdem, result.worldbank)
    for figure_id, field in (
            ("fig04_liberal_democracy", "liberal_democracy"),
            ("fig05_military_power", "military_power"),
            ("fig06a_media_bias", "media_bias"),
            ("fig06b_freedom_discussion", "freedom_discussion_men"),
            ("fig07a_gdp_per_capita", "gdp_per_capita"),
            ("fig07b_broadband", "broadband_fraction")):
        figures[figure_id] = {
            group.value: list(cdf.points())
            for group, cdf in dists[field].cdfs.items()}

    shares = state_share_distributions(table, result.state_shares)
    figures["fig08a_state_address_space"] = {
        group.value: list(cdf.points())
        for group, cdf in
        shares["state_owned_address_space"].cdfs.items()}
    figures["fig08b_state_eyeballs"] = {
        group.value: list(cdf.points())
        for group, cdf in shares["state_owned_eyeballs"].cdfs.items()}

    split = state_control_split(
        table, merged.registry, result.vdem, result.state_shares)
    for figure_id, key in (("fig09a_state_controlled", "state_controlled"),
                           ("fig09b_non_state_controlled",
                            "non_state_controlled")):
        figures[figure_id] = {
            group.value: list(cdf.points())
            for group, cdf in split[key].cdfs.items()}

    temporal = analyze_temporal(merged)
    classes = (("shutdowns", temporal.shutdowns),
               ("outages", temporal.outages))
    figures["fig10_duration_hours"] = {
        label: list(stats.durations_h.points()) for label, stats in classes}
    figures["fig11_recurrence_days"] = {
        label: list(stats.intervals_days.points())
        for label, stats in classes if stats.intervals_days is not None}
    figures["fig12_start_minute_utc"] = {
        label: list(stats.minute_utc.points()) for label, stats in classes}
    figures["fig13_start_minute_local"] = {
        label: list(stats.minute_local.points())
        for label, stats in classes}
    figures["fig14_start_hour_local"] = {
        label: list(stats.hour_local.points()) for label, stats in classes}
    figures["fig15_weekday_pdf"] = {
        label: [(float(i), p) for i, p in enumerate(stats.weekday_pdf)]
        for label, stats in classes}

    observability = observability_table(merged)
    figures["fig16_observability_pct"] = {
        "shutdowns": [
            (float(i), observability.shutdown_pct[kind])
            for i, kind in enumerate(SignalKind)
        ] + [(float(len(SignalKind)), observability.shutdown_all_pct)],
        "outages": [
            (float(i), observability.outage_pct[kind])
            for i, kind in enumerate(SignalKind)
        ] + [(float(len(SignalKind)), observability.outage_all_pct)],
    }
    return figures


def write_csvs(result: PipelineResult, directory: Path) -> List[Path]:
    """Write one CSV per figure; returns the written paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for figure_id, data in figure_series(result).items():
        path = directory / f"{figure_id}.csv"
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["series", "x", "y"])
            for series, points in data.items():
                for x, y in points:
                    writer.writerow([series, x, y])
        written.append(path)
    return written
