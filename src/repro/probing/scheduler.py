"""Probing rounds and the Active Probing signal.

:class:`ActiveProbingRun` simulates IODA's 10-minute probing cycles over a
time window for one entity's sampled blocks and produces the signal IODA
publishes: the number of blocks considered up after each round.

Ground truth enters through ``up_fraction``: the fraction of the entity's
(probeable) address space reachable during each round.  Blocks are ordered
by address, and an up-fraction ``f`` keeps the first ``f`` share of blocks
reachable — consistent with the BGP fast path, so a partial outage takes
down the *same* part of the network in both signals.

The whole run is simulated columnar: one RNG block draw covers every
round (bit-identical to per-round draws — the generator fills row by
row), and beliefs are never iterated round by round.  Because an
answered round resets a block's belief to 1.0 and every unanswered
round applies the same deterministic map, a block's belief after any
round is a table lookup on "rounds since last answer"
(:meth:`~repro.probing.trinocular.TrinocularInference.belief_iterate_tables`);
the last-answer index for every (round, block) cell is one
``maximum.accumulate``.  The per-round reference loop remains as
:meth:`ActiveProbingRun.up_count_series_scalar`, selected by
``REPRO_SCALAR_DETECT=1``; both paths are bitwise-identical.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import SignalError
from repro.flags import scalar_detect
from repro.probing.blocks import ProbedBlock
from repro.probing.trinocular import TrinocularConfig, TrinocularInference
from repro.signals.series import TimeSeries
from repro.timeutils.timestamps import TEN_MINUTES, TimeRange, bin_floor

__all__ = ["ActiveProbingRun"]


class ActiveProbingRun:
    """Simulates rounds of probing for one entity."""

    def __init__(self, blocks: Sequence[ProbedBlock],
                 config: TrinocularConfig | None = None,
                 round_width: int = TEN_MINUTES):
        if not blocks:
            raise SignalError("no probeable blocks")
        self._blocks = sorted(blocks, key=lambda b: b.slash24)
        self._inference = TrinocularInference(config)
        self._round_width = round_width
        self._rates = np.array(
            [b.response_rate for b in self._blocks], dtype=np.float64)
        # Lazy caches for the columnar path: rates are fixed for the
        # life of the run, so the answer probability and the classify-up
        # lookup table are pure functions of them (see _up_table_for).
        self._p_answer: np.ndarray | None = None
        self._up_table: np.ndarray | None = None
        self._up_table_converged = False
        self._first_down: np.ndarray | None = None

    @property
    def n_blocks(self) -> int:
        return len(self._blocks)

    @property
    def inference(self) -> TrinocularInference:
        return self._inference

    def up_count_series(self, window: TimeRange, up_fraction: np.ndarray,
                        rng: np.random.Generator) -> TimeSeries:
        """The up-block-count series over ``window``.

        ``up_fraction[i]`` is ground truth for round ``i``.  Returns a
        series binned at the round width whose value is the number of
        blocks classified UP at the end of each round.

        Columnar over the whole window (see the module docstring);
        bitwise-identical to :meth:`up_count_series_scalar`, which
        ``REPRO_SCALAR_DETECT=1`` selects instead.
        """
        if scalar_detect():
            return self.up_count_series_scalar(window, up_fraction, rng)
        start = bin_floor(window.start, self._round_width)
        n_rounds = -(-(window.end - start) // self._round_width)
        up = np.asarray(up_fraction, dtype=np.float64)
        if up.shape != (n_rounds,):
            raise SignalError(
                f"up_fraction has shape {up.shape}, expected ({n_rounds},)")

        n = self.n_blocks
        block_quantile = (np.arange(n) + 1.0) / n
        # One draw for every (round, block) cell: the generator fills
        # the matrix row-major, so row r carries the exact floats the
        # scalar loop's r-th rng.random(n) call would.
        draws = rng.random((n_rounds, n))
        block_up = block_quantile[None, :] <= up[:, None] + 1e-12
        if self._p_answer is None:
            self._p_answer = 1.0 - self._inference.miss_likelihood(
                self._rates)
        p_answer = self._p_answer
        # p_answer is 0 for down blocks and draws are in [0, 1), so
        # "answered" is the draw beating p_answer on an up block.
        answered = block_up & (draws < p_answer[None, :])

        # up_table[j, 0, i]: is block i UP j rounds after an answer;
        # up_table[j, 1, i]: is it UP after j unanswered rounds from
        # the prior.  Lookups clamp to the tables' fixed point.
        up_table = self._up_table_for(n_rounds + 1)
        idx_dtype = np.int16 if n_rounds < 32000 else np.int64
        round_index = np.arange(n_rounds, dtype=idx_dtype)[:, None]
        last_answer = np.maximum.accumulate(
            np.where(answered, round_index, idx_dtype(-1)), axis=0)
        # Never-answered cells (last_answer == -1) land on j = t + 1,
        # which is exactly their unanswered-round count from the prior.
        first_down = self._first_down
        if first_down is not None:
            # Beliefs decay monotonically between answers, so each table
            # column is True up to its first False (verified when the
            # table was built): the clamped lookup collapses to comparing
            # rounds-since-answer against that first-down level.
            limit = np.where(last_answer < 0,
                             first_down[1][None, :], first_down[0][None, :])
            up_mask = (round_index - last_answer) < limit
        else:
            j = np.minimum(round_index - last_answer,
                           idx_dtype(up_table.shape[0] - 1))
            from_prior = (last_answer < 0).astype(np.int8)
            up_mask = up_table[j, from_prior, np.arange(n)[None, :]]
        values = up_mask.sum(axis=1).astype(np.float64)
        return TimeSeries(start, self._round_width, values)

    def _up_table_for(self, max_levels: int) -> np.ndarray:
        """The classify-up lookup table, memoized across windows.

        The belief iterates are a pure function of the (fixed) response
        rates, so a table that reached its fixed point serves every
        window, and a longer-than-needed table gives identical lookups
        (levels past a request's depth are never indexed).  Only rebuilt
        when an unconverged cached table is shorter than the request.
        """
        if self._up_table is None or (
                not self._up_table_converged
                and self._up_table.shape[0] < max_levels + 1):
            tables = self._inference.belief_iterate_tables(
                self._rates, max_levels=max_levels)
            self._up_table = self._inference.batch_classify_up(tables)
            self._up_table_converged = tables.shape[0] < max_levels + 1
            self._first_down = self._first_down_of(self._up_table)
        return self._up_table

    @staticmethod
    def _first_down_of(up_table: np.ndarray) -> np.ndarray | None:
        """Per-column first level classified DOWN, or ``None``.

        Valid only when every column of the table is True up to a single
        transition (beliefs decay monotonically between answers, so this
        holds in practice); all-True columns get an unreachable sentinel.
        The structure is verified exactly against the table — a
        non-monotone table returns ``None`` and lookups fall back to the
        clamped gather.
        """
        first_down = np.where(up_table.all(axis=0),
                              np.iinfo(np.int64).max,
                              np.argmin(up_table, axis=0))
        levels = np.arange(up_table.shape[0], dtype=np.int64)[:, None, None]
        if np.array_equal(up_table, levels < first_down[None, :, :]):
            return first_down
        return None

    def up_count_series_scalar(self, window: TimeRange,
                               up_fraction: np.ndarray,
                               rng: np.random.Generator) -> TimeSeries:
        """The per-round reference implementation of
        :meth:`up_count_series`."""
        start = bin_floor(window.start, self._round_width)
        n_rounds = -(-(window.end - start) // self._round_width)
        up = np.asarray(up_fraction, dtype=np.float64)
        if up.shape != (n_rounds,):
            raise SignalError(
                f"up_fraction has shape {up.shape}, expected ({n_rounds},)")

        n = self.n_blocks
        block_quantile = (np.arange(n) + 1.0) / n
        beliefs = np.full(n, self._inference.initial_belief())
        values = np.empty(n_rounds, dtype=np.float64)
        for round_index in range(n_rounds):
            block_up = block_quantile <= up[round_index] + 1e-12
            p_answer = self._inference.answer_probability(
                self._rates, block_up)
            answered = rng.random(n) < p_answer
            beliefs = self._inference.batch_update(
                beliefs, answered, self._rates)
            values[round_index] = int(
                self._inference.batch_classify_up(beliefs).sum())
        return TimeSeries(start, self._round_width, values)

    def blocks(self) -> List[ProbedBlock]:
        """The probed blocks in address order."""
        return list(self._blocks)
