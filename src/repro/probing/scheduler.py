"""Probing rounds and the Active Probing signal.

:class:`ActiveProbingRun` simulates IODA's 10-minute probing cycles over a
time window for one entity's sampled blocks and produces the signal IODA
publishes: the number of blocks considered up after each round.

Ground truth enters through ``up_fraction``: the fraction of the entity's
(probeable) address space reachable during each round.  Blocks are ordered
by address, and an up-fraction ``f`` keeps the first ``f`` share of blocks
reachable — consistent with the BGP fast path, so a partial outage takes
down the *same* part of the network in both signals.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import SignalError
from repro.probing.blocks import ProbedBlock
from repro.probing.trinocular import TrinocularConfig, TrinocularInference
from repro.signals.series import TimeSeries
from repro.timeutils.timestamps import TEN_MINUTES, TimeRange, bin_floor

__all__ = ["ActiveProbingRun"]


class ActiveProbingRun:
    """Simulates rounds of probing for one entity."""

    def __init__(self, blocks: Sequence[ProbedBlock],
                 config: TrinocularConfig | None = None,
                 round_width: int = TEN_MINUTES):
        if not blocks:
            raise SignalError("no probeable blocks")
        self._blocks = sorted(blocks, key=lambda b: b.slash24)
        self._inference = TrinocularInference(config)
        self._round_width = round_width
        self._rates = np.array(
            [b.response_rate for b in self._blocks], dtype=np.float64)

    @property
    def n_blocks(self) -> int:
        return len(self._blocks)

    @property
    def inference(self) -> TrinocularInference:
        return self._inference

    def up_count_series(self, window: TimeRange, up_fraction: np.ndarray,
                        rng: np.random.Generator) -> TimeSeries:
        """The up-block-count series over ``window``.

        ``up_fraction[i]`` is ground truth for round ``i``.  Returns a
        series binned at the round width whose value is the number of
        blocks classified UP at the end of each round.
        """
        start = bin_floor(window.start, self._round_width)
        n_rounds = -(-(window.end - start) // self._round_width)
        up = np.asarray(up_fraction, dtype=np.float64)
        if up.shape != (n_rounds,):
            raise SignalError(
                f"up_fraction has shape {up.shape}, expected ({n_rounds},)")

        n = self.n_blocks
        block_quantile = (np.arange(n) + 1.0) / n
        beliefs = np.full(n, self._inference.initial_belief())
        values = np.empty(n_rounds, dtype=np.float64)
        for round_index in range(n_rounds):
            block_up = block_quantile <= up[round_index] + 1e-12
            p_answer = self._inference.answer_probability(
                self._rates, block_up)
            answered = rng.random(n) < p_answer
            beliefs = self._inference.batch_update(
                beliefs, answered, self._rates)
            values[round_index] = int(
                self._inference.batch_classify_up(beliefs).sum())
        return TimeSeries(start, self._round_width, values)

    def blocks(self) -> List[ProbedBlock]:
        """The probed blocks in address order."""
        return list(self._blocks)
