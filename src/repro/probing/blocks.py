"""Probed /24 blocks.

Trinocular only probes blocks with enough historically responsive addresses
to make inference feasible; each block carries a response rate ``A`` — the
probability that a single probe to the block elicits a reply while the
block is up.  Mobile-operator blocks have very low response rates (NAT
pools answer for few addresses), which is the mechanism behind IODA's
limited visibility into mobile shutdowns (§4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.topology.generator import CountryNetwork

__all__ = ["ProbedBlock", "sample_blocks"]


@dataclass(frozen=True, slots=True)
class ProbedBlock:
    """One probed /24 block."""

    slash24: int         # /24 block index
    response_rate: float  # P(single probe answered | block up)
    mobile: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.response_rate <= 1.0:
            raise ConfigurationError(
                f"response rate must be in (0, 1]: {self.response_rate}")


def sample_blocks(network: CountryNetwork, rng: np.random.Generator,
                  max_blocks: int = 256,
                  min_response_rate: float = 0.15) -> List[ProbedBlock]:
    """Select the blocks IODA would probe in a country.

    Samples up to ``max_blocks`` /24s proportionally across the country's
    non-mobile ASes, drawing each block's response rate from a Beta
    distribution and dropping blocks below Trinocular's usability floor.
    The sample preserves address-space order so severity-ordered outages
    hit the same fraction of blocks as of BGP prefixes.
    """
    index_ranges = [
        (prefix.network >> 8, (prefix.network >> 8) + prefix.num_slash24s)
        for network_as in network.ases if not network_as.mobile
        for prefix in network_as.prefixes
    ]
    if not index_ranges:
        return []
    indices = np.concatenate(
        [np.arange(lo, hi, dtype=np.int64) for lo, hi in index_ranges])
    rates = rng.beta(2.0, 3.0, size=len(indices))
    usable = rates >= min_response_rate
    indices, rates = indices[usable], rates[usable]
    if len(indices) > max_blocks:
        picks = np.linspace(0, len(indices) - 1, max_blocks).astype(np.int64)
        indices, rates = indices[picks], rates[picks]
    return [ProbedBlock(slash24=int(block), response_rate=float(rate))
            for block, rate in zip(indices, rates)]
