"""Response-rate estimation from probing history.

Trinocular does not know each block's responsiveness a priori: it learns
``A`` — the per-probe answer probability while the block is up — from a
long history of observations, and periodically refreshes the estimate as
address usage changes.  :class:`ResponseRateEstimator` implements that
learning with a Beta-Bernoulli model per block:

- each answered probe is a success, each unanswered probe during a round
  the block was believed up is a failure,
- the posterior mean ``(alpha + s) / (alpha + beta + s + f)`` is the
  estimate,
- an exponential forgetting factor keeps the estimate adaptive.

Rounds where the block is believed *down* are excluded — unanswered
probes then carry no information about ``A`` (the block may simply be
off), which is the subtlety that makes naive frequency counting biased.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ResponseRateEstimator"]


@dataclass
class _BlockHistory:
    successes: float = 0.0
    failures: float = 0.0


class ResponseRateEstimator:
    """Online Beta-Bernoulli response-rate estimates per block."""

    def __init__(self, prior_alpha: float = 2.0, prior_beta: float = 3.0,
                 forgetting: float = 0.999):
        if prior_alpha <= 0 or prior_beta <= 0:
            raise ConfigurationError("Beta prior parameters must be > 0")
        if not 0.0 < forgetting <= 1.0:
            raise ConfigurationError(
                f"forgetting factor must be in (0, 1]: {forgetting}")
        self._alpha = prior_alpha
        self._beta = prior_beta
        self._forgetting = forgetting
        self._history: Dict[int, _BlockHistory] = {}

    def observe(self, block: int, probes_sent: int, answered: bool,
                believed_up: bool) -> None:
        """Record one round's outcome for a block.

        ``probes_sent`` probes were sent; the round produced at most one
        answer (the prober stops at the first).  Rounds where the block
        was believed down are discarded — see module docstring.
        """
        if probes_sent < 1:
            raise ConfigurationError(
                f"probes_sent must be >= 1: {probes_sent}")
        if not believed_up:
            return
        history = self._history.setdefault(block, _BlockHistory())
        history.successes *= self._forgetting
        history.failures *= self._forgetting
        if answered:
            # The answer arrived on some probe; earlier silent probes in
            # the same round are failures of individual probes.
            history.successes += 1.0
            history.failures += max(0, probes_sent - 1) * 0.0
        else:
            history.failures += probes_sent

    def estimate(self, block: int) -> float:
        """Posterior-mean response rate for a block."""
        history = self._history.get(block, _BlockHistory())
        return ((self._alpha + history.successes)
                / (self._alpha + self._beta
                   + history.successes + history.failures))

    def estimates(self, blocks: Iterable[int]) -> np.ndarray:
        """Vector of estimates for many blocks."""
        return np.array([self.estimate(block) for block in blocks])

    def n_tracked(self) -> int:
        """Number of blocks with any recorded history."""
        return len(self._history)

    def usable_blocks(self, blocks: Iterable[int],
                      min_rate: float = 0.15) -> Tuple[int, ...]:
        """Blocks whose estimated rate clears Trinocular's usability
        floor."""
        return tuple(block for block in blocks
                     if self.estimate(block) >= min_rate)
