"""Trinocular-style Bayesian block-state inference.

Each probed /24 block carries a belief ``B = P(block up)``.  Every round
the prober sends up to ``probes_per_round`` ICMP echoes to the block
(stopping early on a reply).  Evidence updates the belief by Bayes' rule:

- A reply proves the block is up (no false positives are modelled for
  unsolicited replies): ``B = 1``.
- ``k`` unanswered probes multiply the up-likelihood by ``(1 - A)^k``
  where ``A`` is the block's per-probe response rate, so
  ``B' = B(1-A)^k / (B(1-A)^k + (1-B))``.

Between rounds the belief decays toward the prior, modelling state drift.
Blocks are classified ``UP`` above :attr:`TrinocularConfig.up_threshold`,
``DOWN`` below :attr:`TrinocularConfig.down_threshold`, else ``UNKNOWN``
(the three labels IODA publishes, §3.1.1).

The scalar methods are the reference implementation; the ``batch_*``
methods implement exactly the same arithmetic on numpy arrays for
fleet-scale simulation, and tests assert they agree.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["BlockState", "TrinocularConfig", "TrinocularInference"]


class BlockState(enum.Enum):
    """IODA's published block states."""

    UP = "up"
    DOWN = "down"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class TrinocularConfig:
    """Inference parameters (defaults follow the Trinocular paper's
    spirit: strong evidence needed to flip state)."""

    probes_per_round: int = 12
    up_threshold: float = 0.9
    down_threshold: float = 0.1
    prior_up: float = 0.92
    belief_drift: float = 0.02  # per-round pull toward the prior

    def __post_init__(self) -> None:
        if not (0.0 <= self.down_threshold < self.up_threshold <= 1.0):
            raise ConfigurationError(
                "need 0 <= down_threshold < up_threshold <= 1")
        if self.probes_per_round < 1:
            raise ConfigurationError("probes_per_round must be >= 1")
        if not 0.0 < self.prior_up < 1.0:
            raise ConfigurationError(f"bad prior: {self.prior_up}")


class TrinocularInference:
    """Belief tracking for probed blocks."""

    def __init__(self, config: TrinocularConfig | None = None):
        self._config = config or TrinocularConfig()

    @property
    def config(self) -> TrinocularConfig:
        return self._config

    # -- scalar reference path ------------------------------------------------

    def initial_belief(self) -> float:
        """Belief assigned before any evidence."""
        return self._config.prior_up

    def update(self, belief: float, answered: bool,
               unanswered_probes: int, response_rate: float) -> float:
        """One round's Bayes update for a single block."""
        if answered:
            return 1.0
        miss_likelihood = (1.0 - response_rate) ** unanswered_probes
        numerator = belief * miss_likelihood
        posterior = numerator / (numerator + (1.0 - belief))
        return self._drift(posterior)

    def classify(self, belief: float) -> BlockState:
        """Map a belief to the published three-way state."""
        if belief > self._config.up_threshold:
            return BlockState.UP
        if belief < self._config.down_threshold:
            return BlockState.DOWN
        return BlockState.UNKNOWN

    def _drift(self, belief: float) -> float:
        prior = self._config.prior_up
        return belief + self._config.belief_drift * (prior - belief)

    # -- vectorized batch path -------------------------------------------------

    def batch_update(self, beliefs: np.ndarray, answered: np.ndarray,
                     response_rates: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`update` over blocks.

        ``answered`` is boolean per block; unanswered blocks are treated as
        having exhausted all ``probes_per_round`` probes.
        """
        k = self._config.probes_per_round
        miss_likelihood = (1.0 - response_rates) ** k
        numerator = beliefs * miss_likelihood
        posterior = numerator / (numerator + (1.0 - beliefs))
        prior = self._config.prior_up
        drifted = posterior + self._config.belief_drift * (prior - posterior)
        return np.where(answered, 1.0, drifted)

    def batch_classify_up(self, beliefs: np.ndarray) -> np.ndarray:
        """Boolean mask of blocks classified UP."""
        return beliefs > self._config.up_threshold

    def answer_probability(self, response_rates: np.ndarray,
                           up: np.ndarray) -> np.ndarray:
        """P(at least one of the round's probes answered) per block."""
        k = self._config.probes_per_round
        p_answer = 1.0 - (1.0 - response_rates) ** k
        return np.where(up, p_answer, 0.0)

    # -- columnar whole-run path ----------------------------------------------

    def miss_likelihood(self, response_rates: np.ndarray) -> np.ndarray:
        """``(1 - rate) ** probes_per_round`` per block, computed once.

        The same power :meth:`batch_update` and
        :meth:`answer_probability` raise on every call; whole-run
        consumers hoist it out of the round loop.
        """
        return (1.0 - response_rates) ** self._config.probes_per_round

    def belief_iterate_tables(self, response_rates: np.ndarray,
                              max_levels: int) -> np.ndarray:
        """Iterates of the unanswered-round belief map, per block.

        An unanswered round applies the same deterministic map ``f`` to
        a block's belief (Bayes posterior on ``probes_per_round``
        misses, then drift toward the prior — exactly the arithmetic of
        :meth:`batch_update`), and an answered round resets the belief
        to 1.0.  A block's belief after any round is therefore a pure
        function of how many unanswered rounds have passed since the
        last answer: ``f^j(1.0)``, or ``f^j(prior)`` for blocks never
        answered.  This returns those iterates as a table of shape
        ``(levels, 2, n_blocks)`` — ``[j, 0]`` is ``f^j(1.0)`` and
        ``[j, 1]`` is ``f^j(prior)`` — stopping early once the iterates
        hit their (float-exact) fixed point, so lookups past the last
        level just clamp to it.  At most ``max_levels + 1`` levels are
        produced.
        """
        miss = self.miss_likelihood(response_rates)
        prior = self._config.prior_up
        drift = self._config.belief_drift
        n = len(response_rates)
        levels = [np.stack([np.ones(n), np.full(n, prior)])]
        for _ in range(max_levels):
            beliefs = levels[-1]
            numerator = beliefs * miss
            posterior = numerator / (numerator + (1.0 - beliefs))
            drifted = posterior + drift * (prior - posterior)
            if np.array_equal(drifted, beliefs):
                break
            levels.append(drifted)
        return np.stack(levels)
