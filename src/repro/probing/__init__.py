"""Active probing substrate (Trinocular-style).

IODA probes ~4.2M /24 blocks with ICMP at least every 10 minutes and labels
each block up / down / unknown using Trinocular's Bayesian inference
(§3.1.1).  The per-entity Active Probing signal is the count of blocks
considered up after each 10-minute round.

- :mod:`repro.probing.blocks` — probed /24 blocks with their historical
  response rates.
- :mod:`repro.probing.trinocular` — the belief-update inference (scalar
  reference implementation and the vectorized batch used at fleet scale).
- :mod:`repro.probing.scheduler` — 10-minute probing rounds over a window,
  producing the up-count time series.
"""

from repro.probing.blocks import ProbedBlock, sample_blocks
from repro.probing.trinocular import (
    BlockState,
    TrinocularConfig,
    TrinocularInference,
)
from repro.probing.scheduler import ActiveProbingRun

__all__ = [
    "ProbedBlock",
    "sample_blocks",
    "BlockState",
    "TrinocularConfig",
    "TrinocularInference",
    "ActiveProbingRun",
]
