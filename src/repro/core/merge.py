"""The merged event dataset (§4).

:class:`MergedDataset` bundles everything the analysis consumes: the
study-period, country-level filtered IODA records and KIO entries, the
match set, and the labeled events.  :func:`build_merged_dataset` applies
the paper's filtering order:

1. Restrict KIO to nationwide entries and IODA to country-scope records
   (the paper drops subnational events: India-concentrated, mobile-heavy,
   and index datasets are country-level only).
2. Restrict both to the study period.
3. Match, then label.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.labeling import LabeledEvent, label_events
from repro.core.matching import EventMatcher, Match, MatchingConfig
from repro.countries.registry import CountryRegistry
from repro.ioda.records import OutageRecord
from repro.kio.schema import KIOEvent
from repro.obs.runtime import current
from repro.signals.entities import EntityScope
from repro.timeutils.timestamps import DAY, TimeRange

__all__ = ["MergedDataset", "build_merged_dataset"]


@dataclass(frozen=True)
class MergedDataset:
    """The filtered, matched, and labeled event dataset."""

    period: TimeRange
    registry: CountryRegistry
    kio_full_network: Tuple[KIOEvent, ...]
    ioda_records: Tuple[OutageRecord, ...]
    matches: Tuple[Match, ...]
    labeled: Tuple[LabeledEvent, ...]

    # -- the sets the analyses are phrased over ---------------------------------

    def ioda_shutdowns(self) -> List[LabeledEvent]:
        """The "IODA shutdowns" set of §5.3."""
        return [e for e in self.labeled if e.is_shutdown]

    def ioda_outages(self) -> List[LabeledEvent]:
        """The "IODA outages" (spontaneous) set of §5.3."""
        return [e for e in self.labeled if not e.is_shutdown]

    def shutdown_countries(self) -> List[str]:
        """Countries with at least one shutdown (KIO or IODA) in period."""
        countries = {e.record.country_iso2 for e in self.ioda_shutdowns()}
        countries.update(self._kio_iso2(event)
                         for event in self.kio_full_network)
        return sorted(c for c in countries if c)

    def outage_countries(self) -> List[str]:
        """Countries with at least one spontaneous outage in period."""
        return sorted({e.record.country_iso2 for e in self.ioda_outages()})

    def total_shutdown_events(self) -> int:
        """Size of the union shutdown set (KIO ∪ IODA, matches deduped).

        The paper's 219 = 82 KIO + 182 IODA − 45 KIO-matched entries.
        """
        matched_kio = {m.kio_event_id for m in self.matches}
        return (len(self.kio_full_network) + len(self.ioda_shutdowns())
                - len(matched_kio & {e.event_id
                                     for e in self.kio_full_network}))

    # -- helpers ---------------------------------------------------------------

    def _kio_iso2(self, event: KIOEvent) -> str:
        return self.registry.by_name(event.country_name).iso2

    def kio_matched_count(self) -> int:
        """KIO entries matched to at least one IODA record."""
        matched = {m.kio_event_id for m in self.matches}
        return sum(1 for e in self.kio_full_network
                   if e.event_id in matched)

    def ioda_matched_count(self) -> int:
        """IODA records matched to at least one KIO entry."""
        matched = {m.ioda_record_id for m in self.matches}
        return sum(1 for r in self.ioda_records
                   if r.record_id in matched)


def build_merged_dataset(
        registry: CountryRegistry,
        kio_events: Sequence[KIOEvent],
        ioda_records: Sequence[OutageRecord],
        period: TimeRange,
        matching: MatchingConfig | None = None) -> MergedDataset:
    """Filter, match, and label; see module docstring for the rules."""
    period_days = TimeRange(period.start // DAY, -(-period.end // DAY))
    kio_filtered = tuple(
        event for event in kio_events
        if event.nationwide and event.is_full_network
        and period_days.contains(event.start_day))
    ioda_filtered = tuple(
        record for record in ioda_records
        if record.scope is EntityScope.COUNTRY
        and period.contains(record.span.start))
    matcher = EventMatcher(registry, matching)
    matches = tuple(matcher.match(kio_filtered, ioda_filtered))
    labeled = tuple(label_events(ioda_filtered, matches))
    recorder = current().provenance
    if recorder is not None:
        # One journal-only verdict per labeled record, closing the
        # lineage chain its adjudication capsule opened.
        for event in labeled:
            recorder.note("provenance.verdict", {
                "record_id": event.record.record_id,
                "label": event.label.value,
                "via_kio_match": event.via_kio_match,
                "via_cause": event.via_cause,
                "matched_kio_ids": list(event.matched_kio_ids),
            })
    return MergedDataset(
        period=period,
        registry=registry,
        kio_full_network=kio_filtered,
        ioda_records=ioda_filtered,
        matches=matches,
        labeled=labeled,
    )
