"""End-to-end orchestration.

:class:`ReproPipeline` runs the whole reproduction: generate the synthetic
world, observe it through the IODA platform and curation pipeline, compile
and harmonize the KIO snapshots, emit the auxiliary datasets, and build
the merged/labeled event dataset.  The curated-record stage dominates the
cost, so it can be cached to disk (seed-keyed) and reloaded.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from repro import io
from repro.core.matching import MatchingConfig
from repro.core.merge import MergedDataset, build_merged_dataset
from repro.datasets import (
    CoupDataset,
    DataReportalDataset,
    ElectionDataset,
    ProtestDataset,
    VDemDataset,
    WorldBankDataset,
)
from repro.ioda.curation import CurationConfig, CurationPipeline
from repro.ioda.platform import IODAPlatform, PlatformConfig
from repro.ioda.records import OutageRecord
from repro.kio.compiler import KIOCompiler, KIOCompilerConfig
from repro.kio.harmonize import Harmonizer
from repro.kio.schema import KIOEvent
from repro.kio.snapshots import AnnualSnapshot
from repro.timeutils.timestamps import TimeRange
from repro.topology.eyeballs import EyeballEstimates
from repro.topology.geolocation import GeoDatabase
from repro.topology.metrics import StateShare, compute_state_shares
from repro.topology.prefix2as import Prefix2ASSnapshot
from repro.topology.state_owned import StateOwnedASList
from repro.world.scenario import (
    STUDY_PERIOD,
    ScenarioConfig,
    ScenarioGenerator,
    WorldScenario,
)

__all__ = ["PipelineResult", "ReproPipeline"]

#: Bump when generator or curation semantics change, invalidating caches.
CACHE_VERSION = 3


@dataclass
class PipelineResult:
    """Everything the analysis layer needs."""

    scenario: WorldScenario
    curated_records: List[OutageRecord]
    kio_events: List[KIOEvent]
    merged: MergedDataset
    vdem: VDemDataset
    worldbank: WorldBankDataset
    coups: CoupDataset
    elections: ElectionDataset
    protests: ProtestDataset
    datareportal: DataReportalDataset
    state_shares: dict[str, StateShare]


class ReproPipeline:
    """Runs (and caches) the full reproduction."""

    def __init__(self, scenario_config: ScenarioConfig | None = None,
                 platform_config: PlatformConfig | None = None,
                 curation_config: CurationConfig | None = None,
                 kio_config: KIOCompilerConfig | None = None,
                 matching_config: MatchingConfig | None = None,
                 study_period: TimeRange = STUDY_PERIOD,
                 cache_dir: Optional[Path] = None):
        self._scenario_config = scenario_config or ScenarioConfig()
        self._platform_config = platform_config
        self._curation_config = curation_config
        self._kio_config = kio_config
        self._matching_config = matching_config
        self._study_period = study_period
        self._cache_dir = cache_dir

    # -- stages ----------------------------------------------------------------

    def build_scenario(self) -> WorldScenario:
        """Stage 1: the synthetic world."""
        return ScenarioGenerator(self._scenario_config).generate()

    def curate(self, scenario: WorldScenario) -> List[OutageRecord]:
        """Stage 2: IODA observation + curation (cached when possible)."""
        cache_path = self._record_cache_path()
        if cache_path is not None and cache_path.exists():
            return io.load_records(cache_path)
        platform = IODAPlatform(scenario, self._platform_config)
        pipeline = CurationPipeline(platform, self._curation_config)
        records = pipeline.run(self._study_period)
        if cache_path is not None:
            io.dump_records(records, cache_path)
        return records

    def compile_kio(self, scenario: WorldScenario) -> List[KIOEvent]:
        """Stage 3: KIO reporting → annual snapshots → harmonization."""
        compiler = KIOCompiler(
            scenario.seed, scenario.registry, self._kio_config)
        years = list(scenario.config.years)
        canonical = compiler.compile(
            scenario.shutdowns, scenario.restrictions, years)
        snapshots = [AnnualSnapshot.serialize(year, canonical)
                     for year in years]
        return Harmonizer().harmonize(snapshots)

    def run(self) -> PipelineResult:
        """Run every stage and assemble the result."""
        scenario = self.build_scenario()
        records = self.curate(scenario)
        kio_events = self.compile_kio(scenario)
        merged = build_merged_dataset(
            scenario.registry, kio_events, records, self._study_period,
            matching=self._matching_config)
        seed = scenario.seed
        prefix2as = Prefix2ASSnapshot.from_topology(scenario.topology, seed)
        geo = GeoDatabase.from_topology(scenario.topology, seed)
        eyeballs = EyeballEstimates.from_topology(scenario.topology, seed)
        state_owned = StateOwnedASList.from_topology(scenario.topology, seed)
        return PipelineResult(
            scenario=scenario,
            curated_records=records,
            kio_events=kio_events,
            merged=merged,
            vdem=VDemDataset.from_profiles(
                seed, scenario.registry, scenario.profiles),
            worldbank=WorldBankDataset.from_profiles(
                seed, scenario.registry, scenario.profiles),
            coups=CoupDataset.from_events(
                seed, scenario.registry, scenario.events),
            elections=ElectionDataset.from_events(
                seed, scenario.registry, scenario.events),
            protests=ProtestDataset.from_events(
                seed, scenario.registry, scenario.events),
            datareportal=DataReportalDataset.from_profiles(
                seed, scenario.registry, scenario.profiles),
            state_shares=compute_state_shares(
                prefix2as, geo, state_owned, eyeballs),
        )

    # -- cache -----------------------------------------------------------------

    def _record_cache_path(self) -> Optional[Path]:
        if self._cache_dir is None:
            return None
        key = (f"records-v{CACHE_VERSION}"
               f"-seed{self._scenario_config.seed}"
               f"-{self._study_period.start}-{self._study_period.end}.json")
        return Path(self._cache_dir) / key
