"""End-to-end orchestration.

:class:`ReproPipeline` runs the whole reproduction: generate the synthetic
world, observe it through the IODA platform and curation pipeline, compile
and harmonize the KIO snapshots, emit the auxiliary datasets, and build
the merged/labeled event dataset.

The observation+curation stage dominates the cost, so it runs through the
sharded executor in :mod:`repro.exec`: countries are split into
deterministic shards, cold shards run in a selectable worker pool, and
every shard's output is disk-cached content-addressed by seed, config
fingerprints, study period, and :data:`repro.exec.CACHE_VERSION` — a
changed config can never be served stale records.  Parallel runs are
byte-identical to serial ones.  Prefer the stable facade
(:func:`repro.api.run`) over constructing this class directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from repro.core.matching import MatchingConfig
from repro.exec.cachestore import CACHE_VERSION, CacheStore
from repro.exec.stats import ExecStats
from repro.exec.workers import ExecutorConfig, ShardedCurationExecutor
from repro.obs.health import HealthPolicy, HealthReport, evaluate_run
from repro.obs.profile import ProfileConfig
from repro.obs.runtime import Observability, activate
from repro.obs.telemetry import TelemetryConfig
from repro.core.merge import MergedDataset, build_merged_dataset
from repro.datasets import (
    CoupDataset,
    DataReportalDataset,
    DatasetSource,
    ElectionDataset,
    ProtestDataset,
    VDemDataset,
    WorldBankDataset,
    default_sources,
)
from repro.ioda.curation import CurationConfig
from repro.ioda.platform import PlatformConfig
from repro.ioda.records import OutageRecord
from repro.kio.compiler import KIOCompiler, KIOCompilerConfig
from repro.kio.harmonize import Harmonizer
from repro.kio.schema import KIOEvent
from repro.kio.snapshots import AnnualSnapshot
from repro.resilience import (
    BreakerBoard,
    ResilienceConfig,
    call_with_retry,
    inject,
    maybe_fault,
)
from repro.rng import substream
from repro.timeutils.timestamps import TimeRange
from repro.topology.metrics import StateShare
from repro.world.scenario import (
    STUDY_PERIOD,
    ScenarioConfig,
    ScenarioGenerator,
    WorldScenario,
)

__all__ = ["CACHE_VERSION", "PipelineResult", "ReproPipeline"]


@dataclass
class PipelineResult:
    """Everything the analysis layer needs."""

    scenario: WorldScenario
    curated_records: List[OutageRecord]
    kio_events: List[KIOEvent]
    merged: MergedDataset
    vdem: VDemDataset
    worldbank: WorldBankDataset
    coups: CoupDataset
    elections: ElectionDataset
    protests: ProtestDataset
    datareportal: DataReportalDataset
    state_shares: dict[str, StateShare]


class ReproPipeline:
    """Runs (and caches) the full reproduction."""

    def __init__(self, scenario_config: ScenarioConfig | None = None,
                 platform_config: PlatformConfig | None = None,
                 curation_config: CurationConfig | None = None,
                 kio_config: KIOCompilerConfig | None = None,
                 matching_config: MatchingConfig | None = None,
                 study_period: TimeRange = STUDY_PERIOD,
                 cache_dir: Optional[Path] = None,
                 executor: ExecutorConfig | None = None,
                 observability: Observability | None = None,
                 resilience: ResilienceConfig | None = None,
                 profile: ProfileConfig | bool | None = None,
                 health_policy: HealthPolicy | None = None,
                 telemetry: TelemetryConfig | str | float | None = None,
                 provenance: bool = False):
        self._scenario_config = scenario_config or ScenarioConfig()
        self._platform_config = platform_config
        self._curation_config = curation_config
        self._kio_config = kio_config
        self._matching_config = matching_config
        self._study_period = study_period
        self._cache_dir = cache_dir
        self._resilience = resilience
        self._executor = ShardedCurationExecutor(
            study_period=study_period,
            platform_config=platform_config,
            curation_config=curation_config,
            cache=CacheStore(Path(cache_dir)) if cache_dir else None,
            config=executor,
            resilience=resilience)
        self._observability = observability
        self._profile = (ProfileConfig() if profile is True
                         else profile or None)
        self._telemetry = TelemetryConfig.coerce(telemetry)
        self._health_policy = health_policy
        self._provenance = bool(provenance)
        self._last_obs: Optional[Observability] = None
        self._stats: Optional[ExecStats] = None
        self._health: Optional[HealthReport] = None

    @property
    def stats(self) -> Optional[ExecStats]:
        """Execution report of the most recent :meth:`run` (or None)."""
        return self._stats

    @property
    def health(self) -> Optional[HealthReport]:
        """Fidelity scorecard of the most recent :meth:`run` (or None).

        Graded by the run's health policy (default: the paper-fidelity
        policy of :func:`repro.obs.health.default_policy`); the same
        report is streamed into the run journal as a ``health`` event.
        """
        return self._health

    @property
    def observability(self) -> Optional[Observability]:
        """The observability session of the most recent :meth:`run`.

        Holds the full span tree and metrics registry — what
        ``--trace`` and ``--metrics-json`` export; :attr:`stats` is the
        condensed view derived from it.
        """
        return self._last_obs

    # -- stages ----------------------------------------------------------------

    def build_scenario(self) -> WorldScenario:
        """Stage 1: the synthetic world."""
        return ScenarioGenerator(self._scenario_config).generate()

    def curate(self, scenario: WorldScenario,
               stats: ExecStats | None = None) -> List[OutageRecord]:
        """Stage 2: IODA observation + curation.

        Delegates to the sharded executor: warm shards load from the
        content-addressed cache, cold shards run in the configured worker
        pool, and the merge is byte-identical to a serial run.
        """
        return self._executor.curate(scenario, stats)

    def compile_kio(self, scenario: WorldScenario) -> List[KIOEvent]:
        """Stage 3: KIO reporting → annual snapshots → harmonization."""
        compiler = KIOCompiler(
            scenario.seed, scenario.registry, self._kio_config)
        years = list(scenario.config.years)
        canonical = compiler.compile(
            scenario.shutdowns, scenario.restrictions, years)
        snapshots = [AnnualSnapshot.serialize(year, canonical)
                     for year in years]
        return Harmonizer().harmonize(snapshots)

    def run(self) -> PipelineResult:
        """Run every stage and assemble the result.

        Every run executes under an observability session
        (:mod:`repro.obs`): the five stages become ``stage:*`` spans,
        the executor's shard work nests under the curate stage, and hot
        paths count into the session's metrics registry.  The
        :class:`ExecStats` report surfaced as :attr:`stats` is derived
        from that span tree afterwards — same keys and rows as when the
        pipeline filled it in by hand.  Callers wanting the journal /
        Chrome-trace exports pass their own session via the
        ``observability`` constructor argument (see :mod:`repro.api`).

        Afterwards the run is graded against its health policy
        (:attr:`health`; default: paper-fidelity targets), and the
        scorecard is journaled as a ``health`` event.  With a
        ``profile`` config, every span additionally carries CPU / RSS /
        allocation readings — profiling samples OS counters only, so a
        profiled run stays byte-identical to an unprofiled one.
        """
        obs = self.build_observability()
        plan = (self._resilience.fault_plan
                if self._resilience is not None else None)
        with activate(obs), inject(plan):
            # The heartbeat sampler covers the whole run; its final
            # beat (emitted by stop) lands before the closing metrics
            # snapshot and the journal footer.
            obs.start_telemetry()
            try:
                with obs.span("run", seed=self._scenario_config.seed):
                    with obs.span("stage:scenario"):
                        scenario = self.build_scenario()
                    with obs.span("stage:curate"):
                        records = self.curate(scenario)
                    result = self.complete(scenario, records)
            finally:
                obs.stop_telemetry()
        self.finish(obs, result)
        return result

    def build_observability(self) -> Observability:
        """The run's observability session, profiling/telemetry applied.

        Returns the constructor-supplied session (or a fresh one),
        with the pipeline's profile and telemetry configs enabled on it
        exactly as :meth:`run` would.  Drivers that own the run loop —
        the streaming session (:mod:`repro.stream.session`) — call this
        then :meth:`complete`/:meth:`finish` around their own stages.
        """
        obs = (self._observability if self._observability is not None
               else Observability())
        if self._profile is not None and obs.enabled \
                and obs.profile is None:
            obs.enable_profiling(self._profile)
        if self._telemetry is not None and obs.enabled \
                and obs.telemetry is None:
            obs.enable_telemetry(self._telemetry)
        if self._provenance and obs.enabled and obs.provenance is None:
            obs.enable_provenance()
        return obs

    def complete(self, scenario: WorldScenario,
                 records: List[OutageRecord]) -> PipelineResult:
        """Stages 3–5 over already-curated records.

        Runs KIO compilation, the merge, and the auxiliary datasets —
        with their ``stage:*`` spans recorded into the *active*
        observability session — and assembles the
        :class:`PipelineResult`.  :meth:`run` calls this after batch
        curation; a :class:`~repro.stream.session.StreamSession` calls
        it at finalize over the records its engine curated
        incrementally.  Identical records in, identical result out.
        """
        from repro.obs.runtime import current

        obs = current()
        with obs.span("stage:kio"):
            kio_events = self.compile_kio(scenario)
        with obs.span("stage:merge"):
            merged = build_merged_dataset(
                scenario.registry, kio_events, records,
                self._study_period,
                matching=self._matching_config)
        with obs.span("stage:datasets"):
            return self._assemble(scenario, records, kio_events, merged)

    def finish(self, obs: Observability,
               result: PipelineResult) -> tuple[ExecStats, HealthReport]:
        """Grade and close out a run executed under ``obs``.

        Derives the :class:`ExecStats` report from the span tree,
        grades the run against the health policy, journals the health
        event, and finishes the session — the common tail of
        :meth:`run` and of a streaming finalize.
        """
        self._stats = ExecStats.from_obs(obs)
        self._health = evaluate_run(result, self._stats,
                                    self._health_policy)
        if obs.journal is not None:
            obs.journal.write(self._health.as_event())
        self._last_obs = obs
        obs.finish()
        return self._stats, self._health

    def _assemble(self, scenario: WorldScenario,
                  records: List[OutageRecord],
                  kio_events: List[KIOEvent],
                  merged: MergedDataset) -> PipelineResult:
        """Load the auxiliary sources and bundle everything.

        Every auxiliary product flows through the uniform
        :class:`~repro.datasets.DatasetSource` protocol
        (:func:`~repro.datasets.default_sources`); each source's name
        matches the :class:`PipelineResult` field it fills.  When the
        run has a resilience config, each load is retried under its own
        circuit breaker — a permanently failing source exhausts the
        budget and aborts the run (a missing dataset cannot be merged
        around, unlike a quarantined country).
        """
        board = (BreakerBoard(self._resilience.breaker)
                 if self._resilience is not None else None)
        products = {source.name: self._load_source(source, scenario, board)
                    for source in default_sources()}
        return PipelineResult(
            scenario=scenario,
            curated_records=records,
            kio_events=kio_events,
            merged=merged,
            **products,
        )

    def _load_source(self, source: DatasetSource, scenario: WorldScenario,
                     board: Optional[BreakerBoard]):
        """Load one source, retried and fault-injectable when configured.

        The source RNG substream is re-derived per attempt so a retried
        load sees exactly the generator state a first-try load would —
        retries can never shift the output bytes.
        """
        def load():
            maybe_fault("datasets.load", key=source.name)
            return source.load(
                world=scenario,
                rng=substream(scenario.seed, "dataset-source", source.name))

        if self._resilience is None:
            return load()
        return call_with_retry(
            load, policy=self._resilience.retry, key=source.name,
            site="datasets.load", breaker=board.get(source.name))
