"""A from-scratch logistic-regression shutdown classifier (§7).

The paper's future work proposes a classifier for rapid shutdown
identification.  This module implements one end-to-end on numpy: feature
extraction from curated records (the §5.3 fingerprints plus institutional
context), L2-regularized logistic regression trained by full-batch
gradient descent, and evaluation utilities.

The feature set mirrors the paper's findings:

- starts on the local hour / half hour,
- duration is a 30-minute multiple / one of the 4.5/5.5/8/10-hour spikes,
- started 00:00-06:00 local,
- started on a workday,
- all three signals dropped,
- recent event in the same country within 4 days (recurrence),
- liberal-democracy score and state-controlled address space.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.countries.registry import CountryRegistry
from repro.errors import ConfigurationError
from repro.ioda.records import OutageRecord
from repro.timeutils.timezones import (
    local_hour_of_day,
    local_minute_of_hour,
    local_weekday,
)
from repro.topology.metrics import StateShare

__all__ = ["FeatureExtractor", "LogisticModel", "TrainResult",
           "train_classifier", "evaluate"]

FEATURE_NAMES: Tuple[str, ...] = (
    "on_local_hour",
    "on_local_half_hour",
    "duration_30min_multiple",
    "duration_round_spike",
    "night_start_00_06",
    "workday_start",
    "all_signals_dropped",
    "recent_event_within_4d",
    "autocracy_score",
    "state_controlled",
)

_ROUND_SPIKES_H = (4.5, 5.5, 8.0, 10.0)


class FeatureExtractor:
    """Maps curated records to feature vectors."""

    def __init__(self, registry: CountryRegistry,
                 libdem_by_country_year: Mapping[Tuple[str, int], float],
                 state_shares: Optional[Mapping[str, StateShare]] = None):
        self._registry = registry
        self._libdem = libdem_by_country_year
        self._state_shares = state_shares or {}

    @property
    def n_features(self) -> int:
        return len(FEATURE_NAMES)

    def extract(self, records: Sequence[OutageRecord]) -> np.ndarray:
        """Feature matrix for a set of records (rows align with input).

        Recurrence features consider only records in the input set, so a
        deployment scoring a single fresh event should pass recent history
        alongside it.
        """
        starts_by_country: Dict[str, List[int]] = {}
        for record in records:
            starts_by_country.setdefault(
                record.country_iso2, []).append(record.span.start)
        for starts in starts_by_country.values():
            starts.sort()
        rows = [self._row(record, starts_by_country)
                for record in records]
        return np.array(rows, dtype=np.float64)

    def _row(self, record: OutageRecord,
             starts_by_country: Dict[str, List[int]]) -> List[float]:
        iso2 = record.country_iso2
        country = self._registry.get(iso2)
        offset = country.utc_offset
        start = record.span.start
        minute = local_minute_of_hour(start, offset)
        hour = local_hour_of_day(start, offset)
        weekday = local_weekday(start, offset)
        duration_h = record.duration_hours
        half_hours = duration_h * 2.0

        previous = [s for s in starts_by_country[iso2] if s < start]
        recent = bool(previous and start - previous[-1] <= 4 * 86400)

        year = time.gmtime(start).tm_year
        libdem = self._libdem.get((iso2, year), 0.5)
        share = self._state_shares.get(iso2)
        state_controlled = bool(share is not None and share.state_controlled)

        return [
            float(minute == 0),
            float(minute == 30),
            float(abs(half_hours - round(half_hours)) < 1e-6),
            float(any(abs(duration_h - r) < 1e-6
                      for r in _ROUND_SPIKES_H)),
            float(hour <= 6),
            float(country.workweek.is_workday(weekday)),
            float(record.visible_in_all_signals),
            float(recent),
            float(1.0 - libdem),
            float(state_controlled),
        ]


@dataclass
class LogisticModel:
    """Weights and intercept of a trained logistic regression."""

    weights: np.ndarray
    intercept: float
    feature_means: np.ndarray
    feature_scales: np.ndarray

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """P(shutdown) per row."""
        standardized = (features - self.feature_means) / self.feature_scales
        logits = standardized @ self.weights + self.intercept
        return 1.0 / (1.0 + np.exp(-logits))

    def predict(self, features: np.ndarray,
                threshold: float = 0.5) -> np.ndarray:
        """Boolean shutdown predictions."""
        return self.predict_proba(features) >= threshold

    def feature_importance(self) -> List[Tuple[str, float]]:
        """(name, weight) sorted by |weight| descending."""
        pairs = list(zip(FEATURE_NAMES, self.weights))
        return sorted(pairs, key=lambda p: abs(p[1]), reverse=True)

    def explain(self, features: np.ndarray) -> List[Tuple[str, float]]:
        """Per-feature logit contributions for one feature vector.

        The decision-provenance view of a prediction: each entry is
        ``(feature name, weight * standardized value)``, sorted by
        absolute contribution, so the intercept plus the sum of the
        second elements is exactly the logit behind
        :meth:`predict_proba`.
        """
        row = np.asarray(features, dtype=np.float64).reshape(-1)
        if row.shape[0] != len(FEATURE_NAMES):
            raise ConfigurationError(
                f"expected {len(FEATURE_NAMES)} features, "
                f"got {row.shape[0]}")
        standardized = (row - self.feature_means) / self.feature_scales
        contributions = standardized * self.weights
        pairs = [(name, float(c))
                 for name, c in zip(FEATURE_NAMES, contributions)]
        return sorted(pairs, key=lambda p: abs(p[1]), reverse=True)


@dataclass(frozen=True)
class TrainResult:
    """A trained model with its training diagnostics."""

    model: LogisticModel
    losses: Tuple[float, ...]

    @property
    def final_loss(self) -> float:
        return self.losses[-1]


def train_classifier(features: np.ndarray, labels: np.ndarray,
                     l2: float = 1e-3, learning_rate: float = 0.5,
                     n_iterations: int = 600) -> TrainResult:
    """Full-batch gradient descent on the regularized log-loss."""
    if features.ndim != 2 or len(features) != len(labels):
        raise ConfigurationError("features/labels shape mismatch")
    if len(np.unique(labels)) < 2:
        raise ConfigurationError("training needs both classes present")
    y = labels.astype(np.float64)
    means = features.mean(axis=0)
    scales = features.std(axis=0)
    scales[scales == 0] = 1.0
    x = (features - means) / scales
    n, d = x.shape
    weights = np.zeros(d)
    intercept = 0.0
    losses: List[float] = []
    for _ in range(n_iterations):
        logits = x @ weights + intercept
        probs = 1.0 / (1.0 + np.exp(-logits))
        eps = 1e-12
        loss = float(
            -np.mean(y * np.log(probs + eps)
                     + (1 - y) * np.log(1 - probs + eps))
            + 0.5 * l2 * float(weights @ weights))
        losses.append(loss)
        gradient_w = x.T @ (probs - y) / n + l2 * weights
        gradient_b = float(np.mean(probs - y))
        weights -= learning_rate * gradient_w
        intercept -= learning_rate * gradient_b
    model = LogisticModel(
        weights=weights, intercept=intercept,
        feature_means=means, feature_scales=scales)
    return TrainResult(model=model, losses=tuple(losses))


def evaluate(model: LogisticModel, features: np.ndarray,
             labels: np.ndarray,
             threshold: float = 0.5) -> Dict[str, float]:
    """Accuracy / precision / recall / F1 on a labeled set."""
    predictions = model.predict(features, threshold)
    actual = labels.astype(bool)
    tp = int(np.sum(predictions & actual))
    fp = int(np.sum(predictions & ~actual))
    fn = int(np.sum(~predictions & actual))
    tn = int(np.sum(~predictions & ~actual))
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (2 * precision * recall / (precision + recall)
          if precision + recall else 0.0)
    return {
        "accuracy": (tp + tn) / len(labels),
        "precision": precision,
        "recall": recall,
        "f1": f1,
        "n": float(len(labels)),
    }
