"""Model evaluation utilities: cross-validation and threshold sweeps.

Supports the §7 classifier work: k-fold cross-validation (so reported
accuracy is not a single lucky split) and a decision-threshold sweep (the
operational tradeoff an advocacy organization would tune — flagging too
many outages as shutdowns wastes investigators' time; missing shutdowns
defeats the purpose).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.classifier import LogisticModel, evaluate, train_classifier
from repro.errors import ConfigurationError

__all__ = ["CrossValidationResult", "ThresholdPoint", "cross_validate",
           "threshold_sweep"]


@dataclass(frozen=True)
class CrossValidationResult:
    """Aggregated k-fold metrics."""

    k: int
    fold_metrics: Tuple[Dict[str, float], ...]

    def mean(self, metric: str) -> float:
        return float(np.mean([fold[metric] for fold in self.fold_metrics]))

    def std(self, metric: str) -> float:
        return float(np.std([fold[metric] for fold in self.fold_metrics]))

    def rows(self) -> List[str]:
        return [
            f"{metric}: {self.mean(metric):.3f} ± {self.std(metric):.3f}"
            for metric in ("accuracy", "precision", "recall", "f1")
        ]


def cross_validate(features: np.ndarray, labels: np.ndarray, k: int = 5,
                   seed: int = 0) -> CrossValidationResult:
    """Stratified k-fold cross-validation of the logistic classifier.

    Stratification keeps each fold's class balance close to the
    population's — important here because shutdowns are the minority
    class (~1:3 in the merged dataset).
    """
    if k < 2:
        raise ConfigurationError(f"k must be >= 2: {k}")
    n = len(labels)
    if n < 2 * k:
        raise ConfigurationError(f"too few samples ({n}) for k={k}")
    rng = np.random.default_rng(seed)
    fold_of = np.empty(n, dtype=np.int64)
    for value in (0, 1):
        indices = np.flatnonzero(labels == value)
        rng.shuffle(indices)
        fold_of[indices] = np.arange(len(indices)) % k
    metrics: List[Dict[str, float]] = []
    for fold in range(k):
        test_mask = fold_of == fold
        train_mask = ~test_mask
        model = train_classifier(
            features[train_mask], labels[train_mask]).model
        metrics.append(evaluate(model, features[test_mask],
                                labels[test_mask]))
    return CrossValidationResult(k=k, fold_metrics=tuple(metrics))


@dataclass(frozen=True)
class ThresholdPoint:
    """Operating point of the classifier at one decision threshold."""

    threshold: float
    precision: float
    recall: float
    f1: float


def threshold_sweep(model: LogisticModel, features: np.ndarray,
                    labels: np.ndarray,
                    thresholds: Sequence[float] = tuple(
                        np.arange(0.1, 0.95, 0.1))
                    ) -> List[ThresholdPoint]:
    """Precision/recall across decision thresholds."""
    points: List[ThresholdPoint] = []
    for threshold in thresholds:
        metrics = evaluate(model, features, labels,
                           threshold=float(threshold))
        points.append(ThresholdPoint(
            threshold=float(threshold),
            precision=metrics["precision"],
            recall=metrics["recall"],
            f1=metrics["f1"],
        ))
    return points
