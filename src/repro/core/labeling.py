"""Shutdown / spontaneous-outage labeling (§4).

The paper's merged dataset labels as **shutdowns**:

1. all KIO events involving a full-network shutdown, and
2. all IODA events that either matched a KIO event or were recorded with a
   cause of government-ordered or exam-related.

All remaining IODA events are **spontaneous outages**.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.matching import Match
from repro.ioda.records import OutageRecord

__all__ = ["EventLabel", "LabeledEvent", "label_events"]


class EventLabel(enum.Enum):
    """The two classes of the merged dataset."""

    SHUTDOWN = "shutdown"
    SPONTANEOUS_OUTAGE = "spontaneous-outage"


@dataclass(frozen=True)
class LabeledEvent:
    """One IODA record with its assigned label and provenance.

    ``via_kio_match`` and ``via_cause`` record *why* an event was labeled
    a shutdown (both can hold; the paper reports 133 events tagged by
    both, 19 by matching only, 30 by cause only).
    """

    record: OutageRecord
    label: EventLabel
    via_kio_match: bool
    via_cause: bool
    matched_kio_ids: tuple[int, ...] = ()

    @property
    def is_shutdown(self) -> bool:
        return self.label is EventLabel.SHUTDOWN


def label_events(records: Sequence[OutageRecord],
                 matches: Sequence[Match]) -> List[LabeledEvent]:
    """Apply the paper's labeling rule to IODA records."""
    matched: dict[int, List[int]] = {}
    for match in matches:
        matched.setdefault(match.ioda_record_id, []).append(
            match.kio_event_id)
    labeled: List[LabeledEvent] = []
    for record in records:
        via_match = record.record_id in matched
        via_cause = record.is_cause_shutdown()
        label = (EventLabel.SHUTDOWN if via_match or via_cause
                 else EventLabel.SPONTANEOUS_OUTAGE)
        labeled.append(LabeledEvent(
            record=record,
            label=label,
            via_kio_match=via_match,
            via_cause=via_cause,
            matched_kio_ids=tuple(matched.get(record.record_id, ())),
        ))
    return labeled
