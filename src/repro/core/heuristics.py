"""The §7 shutdown triage heuristic.

The paper's future-work section sketches a tool asking four questions
about a fresh disruption:

1. Did it occur in a country that is an autocracy?
2. Did it co-occur with an election, coup, or protest?
3. Did it start on the hour in local time?
4. Did all three of IODA's signals simultaneously drop?

:class:`ShutdownTriage` scores a disruption on those four indicators (plus
the optional state-control-of-address-space indicator from §5.1.1) and
produces a graded assessment for investigators.  It is deliberately a
transparent scorecard, not a model — the classifier in
:mod:`repro.core.classifier` is the statistical counterpart.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Mapping, Optional, Set, Tuple

from repro.countries.registry import CountryRegistry
from repro.ioda.records import OutageRecord
from repro.timeutils.timezones import local_date, local_minute_of_hour
from repro.topology.metrics import StateShare

__all__ = ["TriageVerdict", "TriageAssessment", "ShutdownTriage"]


class TriageVerdict(enum.Enum):
    """Investigation priority."""

    LIKELY_SHUTDOWN = "likely-shutdown"
    POSSIBLE_SHUTDOWN = "possible-shutdown"
    LIKELY_SPONTANEOUS = "likely-spontaneous"


@dataclass(frozen=True)
class TriageAssessment:
    """Answers to the four questions plus the verdict."""

    record_id: int
    autocracy: bool
    mobilization_event_same_day: bool
    starts_on_local_hour: bool
    all_signals_dropped: bool
    state_controlled_address_space: Optional[bool]
    score: int
    verdict: TriageVerdict

    def rows(self) -> List[str]:
        def mark(flag: Optional[bool]) -> str:
            if flag is None:
                return "unknown"
            return "yes" if flag else "no"

        return [
            f"record {self.record_id}: {self.verdict.value} "
            f"(score {self.score}/4)",
            f"  1. autocracy?                  {mark(self.autocracy)}",
            f"  2. election/coup/protest day?  "
            f"{mark(self.mobilization_event_same_day)}",
            f"  3. starts on local hour?       "
            f"{mark(self.starts_on_local_hour)}",
            f"  4. all three signals dropped?  "
            f"{mark(self.all_signals_dropped)}",
            f"  +  state-controlled addresses? "
            f"{mark(self.state_controlled_address_space)}",
        ]


class ShutdownTriage:
    """Scores curated records with the paper's four questions.

    ``mobilization_days`` is the set of (iso2, local day) cells with an
    election, coup, or protest; ``libdem_by_country_year`` maps
    (iso2, year) to the liberal-democracy score.
    """

    #: Liberal-democracy score below which a country counts as autocratic
    #: (the paper's shutdown group maxes out at 0.481).
    AUTOCRACY_THRESHOLD = 0.35

    def __init__(self, registry: CountryRegistry,
                 mobilization_days: Set[Tuple[str, int]],
                 libdem_by_country_year: Mapping[Tuple[str, int], float],
                 state_shares: Optional[Mapping[str, StateShare]] = None):
        self._registry = registry
        self._mobilization_days = mobilization_days
        self._libdem = libdem_by_country_year
        self._state_shares = state_shares or {}

    def assess(self, record: OutageRecord, year: int) -> TriageAssessment:
        """Assess one curated record."""
        iso2 = record.country_iso2
        offset = self._registry.get(iso2).utc_offset
        libdem = self._libdem.get((iso2, year))
        autocracy = (libdem is not None
                     and libdem < self.AUTOCRACY_THRESHOLD)
        day = local_date(record.span.start, offset)
        mobilized = (iso2, day) in self._mobilization_days
        on_hour = local_minute_of_hour(record.span.start, offset) == 0
        all_dropped = record.visible_in_all_signals
        share = self._state_shares.get(iso2)
        state_controlled = None if share is None else share.state_controlled

        score = sum((autocracy, mobilized, on_hour, all_dropped))
        if score >= 3 or (mobilized and on_hour):
            verdict = TriageVerdict.LIKELY_SHUTDOWN
        elif score == 2:
            verdict = TriageVerdict.POSSIBLE_SHUTDOWN
        else:
            verdict = TriageVerdict.LIKELY_SPONTANEOUS
        return TriageAssessment(
            record_id=record.record_id,
            autocracy=autocracy,
            mobilization_event_same_day=mobilized,
            starts_on_local_hour=on_hour,
            all_signals_dropped=all_dropped,
            state_controlled_address_space=state_controlled,
            score=score,
            verdict=verdict,
        )
