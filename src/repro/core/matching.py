"""KIO ↔ IODA event matching (§4).

KIO entries carry local *dates*; IODA records carry UTC timestamps.  The
matcher:

1. Resolves the KIO entry's country name through the registry and converts
   its inclusive local-date range into a UTC interval using the country's
   capital timezone — 00:00:00 local on the start date through 23:59:59
   local on the end date.
2. Matches an IODA record to a KIO entry when the IODA start time falls
   inside that interval.
3. Applies the paper's correction: the window is expanded by the 24 hours
   *preceding* the KIO local start date, because KIO start dates are
   sometimes publication dates or timezone-shifted (§4).  The expansion is
   configurable so the ablation bench can measure what it buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.countries.registry import CountryRegistry
from repro.errors import MatchingError
from repro.ioda.records import OutageRecord
from repro.kio.schema import KIOEvent
from repro.obs.runtime import current
from repro.timeutils.timestamps import DAY, TimeRange

__all__ = ["MatchingConfig", "Match", "EventMatcher"]


@dataclass(frozen=True, kw_only=True)
class MatchingConfig:
    """Matching window parameters (keyword-only, stable API surface)."""

    #: Seconds of lookback added before the KIO local start (paper: 24 h).
    lookback: int = DAY

    def __post_init__(self) -> None:
        if self.lookback < 0:
            raise MatchingError(f"negative lookback: {self.lookback}")


@dataclass(frozen=True)
class Match:
    """One matched (KIO entry, IODA record) pair."""

    kio_event_id: int
    ioda_record_id: int


class EventMatcher:
    """Matches IODA outage records against KIO entries."""

    def __init__(self, registry: CountryRegistry,
                 config: MatchingConfig | None = None):
        self._registry = registry
        self._config = config or MatchingConfig()

    @property
    def config(self) -> MatchingConfig:
        return self._config

    def kio_window_utc(self, event: KIOEvent) -> TimeRange:
        """The UTC matching interval for a KIO entry.

        00:00:00 local on the start date through 23:59:59 local on the end
        date (§4), minus the configured lookback.
        """
        country = self._registry.by_name(event.country_name)
        offset = country.utc_offset.seconds
        start_utc = event.start_day * DAY - offset
        end_utc = (event.end_day + 1) * DAY - offset
        return TimeRange(start_utc - self._config.lookback, end_utc)

    def match(self, kio_events: Sequence[KIOEvent],
              ioda_records: Sequence[OutageRecord]) -> List[Match]:
        """All (KIO, IODA) pairs whose country agrees and whose IODA start
        falls inside the KIO window."""
        obs = current()
        with obs.span("matching.match", n_kio=len(kio_events),
                      n_ioda=len(ioda_records)):
            by_country: Dict[str, List[Tuple[TimeRange, KIOEvent]]] = {}
            for event in kio_events:
                country = self._registry.by_name(event.country_name)
                by_country.setdefault(country.iso2, []).append(
                    (self.kio_window_utc(event), event))
            comparisons = 0
            matches: List[Match] = []
            for record in ioda_records:
                windows = by_country.get(record.country_iso2, [])
                comparisons += len(windows)
                for window, event in windows:
                    if window.contains(record.span.start):
                        matches.append(Match(
                            kio_event_id=event.event_id,
                            ioda_record_id=record.record_id))
        metrics = obs.metrics
        metrics.counter("matching.window_comparisons").inc(comparisons)
        metrics.counter("matching.matches").inc(len(matches))
        recorder = obs.provenance
        if recorder is not None:
            # Journal-only lineage: which record matched which KIO
            # entry, under which lookback.  ``repro explain`` reads
            # this back when rendering a record's downstream chain.
            recorder.note("provenance.match", {
                "lookback": self._config.lookback,
                "n_kio": len(kio_events),
                "n_ioda": len(ioda_records),
                "matches": [[m.kio_event_id, m.ioda_record_id]
                            for m in matches],
            })
        return matches

    def matched_ioda_ids(self, matches: Sequence[Match]) -> frozenset[int]:
        """IODA record ids appearing in any match."""
        return frozenset(m.ioda_record_id for m in matches)

    def matched_kio_ids(self, matches: Sequence[Match]) -> frozenset[int]:
        """KIO event ids appearing in any match."""
        return frozenset(m.kio_event_id for m in matches)
