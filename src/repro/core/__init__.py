"""The paper's core contribution: merging, matching, and labeling.

- :mod:`repro.core.matching` — KIO↔IODA event matching with local-time
  windows and the 24-hour lookback expansion (§4).
- :mod:`repro.core.labeling` — the shutdown / spontaneous-outage labeling
  rules (§4 "Shutdown and Outage Dataset").
- :mod:`repro.core.merge` — the merged event dataset.
- :mod:`repro.core.pipeline` — end-to-end orchestration from scenario to
  merged dataset and auxiliary datasets.
- :mod:`repro.core.heuristics` — the §7 shutdown triage heuristic.
- :mod:`repro.core.classifier` — a from-scratch logistic-regression
  shutdown classifier (§7 future work).
"""

from repro.core.matching import EventMatcher, Match, MatchingConfig
from repro.core.labeling import EventLabel, LabeledEvent, label_events
from repro.core.merge import MergedDataset, build_merged_dataset
from repro.core.pipeline import PipelineResult, ReproPipeline

__all__ = [
    "EventMatcher",
    "Match",
    "MatchingConfig",
    "EventLabel",
    "LabeledEvent",
    "label_events",
    "MergedDataset",
    "build_merged_dataset",
    "PipelineResult",
    "ReproPipeline",
]
