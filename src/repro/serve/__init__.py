"""repro.serve — the async serving layer over a content-addressed store.

The ROADMAP's "serve the dashboard at millions-of-users scale" item:
a finished run is precomputed into an immutable, content-addressed
artifact store (:mod:`repro.serve.artifacts` — event feeds, signal
tile pyramids, health/summary reports; blake2b addresses double as
HTTP ETags), served by a stdlib-asyncio HTTP layer
(:mod:`repro.serve.routes` routing + :mod:`repro.serve.http`
transport) whose hot artifacts live in a bounded single-flight async
LRU (:mod:`repro.serve.cache`), and load-tested by a seeded
deterministic harness (:mod:`repro.serve.loadgen`) whose SLO report
feeds the ``repro perf`` baseline gate.

    store = api.run(seed=2023).serve("artifacts/store")
    app = ServeApp(store)                      # routes + cache
    report = run_loadgen(store, config=LoadgenConfig(mix="dashboard"))

CLI: ``repro serve build`` / ``repro serve run`` /
``repro serve loadgen``.
"""

from repro.serve.artifacts import ArtifactStore, DEFAULT_TILE_BINS, \
    DEFAULT_ZOOMS, ZOOM_BASE, build_store, tile_count
from repro.serve.cache import DEFAULT_SERVE_CACHE_SIZE, AsyncLRU
from repro.serve.http import ServeServer, serve_forever
from repro.serve.loadgen import LoadgenConfig, MIXES, SLOReport, \
    run_loadgen
from repro.serve.routes import LATENCY_BUCKETS, Response, ServeApp

__all__ = [
    "ArtifactStore",
    "AsyncLRU",
    "DEFAULT_SERVE_CACHE_SIZE",
    "DEFAULT_TILE_BINS",
    "DEFAULT_ZOOMS",
    "LATENCY_BUCKETS",
    "LoadgenConfig",
    "MIXES",
    "Response",
    "SLOReport",
    "ServeApp",
    "ServeServer",
    "ZOOM_BASE",
    "build_store",
    "run_loadgen",
    "serve_forever",
    "tile_count",
]
