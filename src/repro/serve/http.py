"""A minimal asyncio HTTP/1.1 transport for :class:`ServeApp`.

Stdlib-only by design (the repo bakes in no server framework): an
:func:`asyncio.start_server` loop parses request lines and headers,
hands each request to :meth:`ServeApp.handle`, and writes the response
with ``Content-Length`` framing.  Keep-alive is honoured (HTTP/1.1
default; ``Connection: close`` respected), request bodies are not —
every route is GET/HEAD, so a request with a body is answered 411/400
territory we simply treat as a parse error.

``port=0`` binds an ephemeral port (the bound address is on
:attr:`ServeServer.address` after :meth:`~ServeServer.start`), which is
how the load harness and the CI smoke spawn a private server without
port coordination.

    server = ServeServer(app)
    await server.start()
    ...
    await server.stop()

or, from synchronous code, :func:`serve_forever` (the CLI's
``repro serve run``).
"""

from __future__ import annotations

import asyncio
from typing import Optional, Tuple

from repro.serve.routes import Response, ServeApp

__all__ = ["ServeServer", "serve_forever"]

_MAX_REQUEST_BYTES = 65536

_REASONS = {200: "OK", 304: "Not Modified", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            500: "Internal Server Error"}


class ServeServer:
    """One :class:`ServeApp` bound to a TCP listener."""

    def __init__(self, app: ServeApp, *, host: str = "127.0.0.1",
                 port: int = 0):
        self.app = app
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    async def start(self) -> "ServeServer":
        self._server = await asyncio.start_server(
            self._connection, self._host, self._port)
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- per-connection loop ----------------------------------------------------

    async def _connection(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers = request
                try:
                    response = await self.app.handle(method, target,
                                                     headers)
                except Exception:
                    response = Response(500, b"internal server error",
                                        {"Content-Type": "text/plain"})
                keep_alive = headers.get("connection", "").lower() \
                    != "close"
                self._write_response(writer, method, response,
                                     keep_alive)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        try:
            raw = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return None
        if len(raw) > _MAX_REQUEST_BYTES:
            return None
        try:
            head = raw.decode("latin-1")
            request_line, *header_lines = head.split("\r\n")
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            return None
        headers = {}
        for line in header_lines:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), target, headers

    def _write_response(self, writer: asyncio.StreamWriter,
                        method: str, response: Response,
                        keep_alive: bool) -> None:
        reason = _REASONS.get(response.status, "Unknown")
        lines = [f"HTTP/1.1 {response.status} {reason}"]
        for name, value in response.headers.items():
            lines.append(f"{name}: {value}")
        lines.append(f"Content-Length: {len(response.body)}")
        lines.append("Connection: "
                     + ("keep-alive" if keep_alive else "close"))
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head if method == "HEAD"
                     else head + response.body)


def serve_forever(app: ServeApp, *, host: str = "127.0.0.1",
                  port: int = 8099) -> None:
    """Run the server until interrupted (the CLI entry point)."""

    async def main() -> None:
        server = await ServeServer(app, host=host, port=port).start()
        bound_host, bound_port = server.address
        print(f"serving {app.store.root} on "
              f"http://{bound_host}:{bound_port}")
        try:
            await asyncio.Event().wait()
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
