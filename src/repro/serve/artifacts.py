"""The content-addressed artifact store behind the serving layer.

``repro serve build`` walks a finished run once and precomputes every
servable surface into a directory of immutable JSON objects:

- ``events/all`` and ``events/country/<ISO2>`` — the curated outage
  records (full ordered lists; the event routes slice cursor pages out
  of them),
- ``tiles/<ISO2>/<kind>/z<z>/<i>`` — per-country, per-signal series
  tiles at several zoom levels (zoom ``z`` splits the study period into
  ``ZOOM_BASE**z`` tiles, each mean-downsampled to at most
  ``tile_bins`` points),
- ``tiles/index`` — the tile pyramid's geometry (countries, kinds,
  zooms, period) a dashboard needs to navigate it,
- ``health`` and ``summary`` — the run's fidelity scorecard and
  headline counts.

Every object is stored under a blake2b content address computed with
the same :func:`repro.exec.cachestore.fingerprint` that keys the shard
cache and the run registry — and that address **is** the artifact's
HTTP ETag: the serving routes return it verbatim on every 200 and
honour ``If-None-Match`` with a 304, so conditional revalidation is a
string compare against the store's own addressing scheme.  The
``manifest.json`` at the store root maps resource names to addresses
and byte sizes.

The store is write-once: :meth:`ArtifactStore.create` →
:meth:`~_StoreBuilder.put` → :meth:`~_StoreBuilder.finish` builds it,
:meth:`ArtifactStore.open` serves it.  :func:`build_store` is the
one-shot builder over a :class:`~repro.api.RunResult` (or bare
``PipelineResult``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, \
    Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError, ServeError
from repro.exec.cachestore import fingerprint
from repro.io import record_to_dict
from repro.signals.entities import Entity
from repro.signals.kinds import SignalKind
from repro.timeutils.timestamps import TimeRange
from repro.world.scenario import STUDY_PERIOD

__all__ = ["ArtifactStore", "build_store", "DEFAULT_TILE_BINS",
           "DEFAULT_ZOOMS", "ZOOM_BASE", "tile_count"]

#: Maximum points per tile: one dashboard-panel's worth of resolution.
DEFAULT_TILE_BINS = 512

#: Zoom levels the builder precomputes (coarse → fine).
DEFAULT_ZOOMS: Tuple[int, ...] = (0, 1, 2)

#: Each zoom level splits the period into ``ZOOM_BASE**z`` tiles.
ZOOM_BASE = 4

_MANIFEST_VERSION = 1


def tile_count(zoom: int) -> int:
    """Tiles covering the period at ``zoom``."""
    return ZOOM_BASE ** zoom


def _canonical_bytes(payload: Any) -> bytes:
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


class _StoreBuilder:
    """The write side of an :class:`ArtifactStore` (write-once)."""

    def __init__(self, root: Path):
        self._root = root
        self._objects = root / "objects"
        self._objects.mkdir(parents=True, exist_ok=True)
        self._resources: Dict[str, Dict[str, Any]] = {}
        self._finished = False

    def put(self, resource: str, payload: Any) -> str:
        """Store ``payload`` under ``resource``; return its address."""
        if self._finished:
            raise ServeError("artifact store is already finished")
        body = _canonical_bytes(payload)
        etag = fingerprint(body.decode("utf-8"))
        path = self._objects / f"{etag}.json"
        if not path.exists():
            path.write_bytes(body)
        self._resources[resource] = {"etag": etag, "bytes": len(body)}
        return etag

    def finish(self, meta: Optional[Mapping[str, Any]] = None
               ) -> "ArtifactStore":
        """Write the manifest and return the opened read-side store."""
        if self._finished:
            raise ServeError("artifact store is already finished")
        self._finished = True
        manifest = {
            "version": _MANIFEST_VERSION,
            "created": time.time(),
            "meta": dict(meta or {}),
            "resources": {name: self._resources[name]
                          for name in sorted(self._resources)},
        }
        (self._root / "manifest.json").write_text(
            json.dumps(manifest, sort_keys=True, indent=1),
            encoding="utf-8")
        return ArtifactStore.open(self._root)


class ArtifactStore:
    """The read side: resource names → content-addressed JSON objects."""

    def __init__(self, root: Path, manifest: Mapping[str, Any]):
        self._root = root
        self._manifest = manifest
        self._resources: Mapping[str, Mapping[str, Any]] = \
            manifest["resources"]

    # -- construction -----------------------------------------------------------

    @staticmethod
    def create(root: Union[str, Path]) -> _StoreBuilder:
        """A builder writing a fresh store under ``root``."""
        return _StoreBuilder(Path(root))

    @classmethod
    def open(cls, root: Union[str, Path]) -> "ArtifactStore":
        root = Path(root)
        manifest_path = root / "manifest.json"
        if not manifest_path.is_file():
            raise ServeError(
                f"no artifact store at {root} (missing manifest.json; "
                "build one with `repro serve build`)")
        try:
            manifest = json.loads(manifest_path.read_text("utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ServeError(
                f"corrupt artifact store manifest: {manifest_path}"
            ) from exc
        if manifest.get("version") != _MANIFEST_VERSION:
            raise ServeError(
                f"unsupported artifact store version: "
                f"{manifest.get('version')!r}")
        return cls(root, manifest)

    # -- reads ------------------------------------------------------------------

    @property
    def root(self) -> Path:
        return self._root

    @property
    def manifest(self) -> Mapping[str, Any]:
        return self._manifest

    @property
    def meta(self) -> Mapping[str, Any]:
        return self._manifest.get("meta", {})

    def resources(self) -> List[str]:
        """Every resource name, sorted."""
        return sorted(self._resources)

    def __contains__(self, resource: str) -> bool:
        return resource in self._resources

    def etag(self, resource: str) -> str:
        """The content address (= HTTP ETag) of ``resource``."""
        try:
            return self._resources[resource]["etag"]
        except KeyError:
            raise ServeError(f"unknown resource: {resource!r}") from None

    def read_bytes(self, resource: str) -> Tuple[bytes, str]:
        """``(body, etag)`` for ``resource``; the body is the stored
        canonical JSON, served verbatim."""
        etag = self.etag(resource)
        path = self._root / "objects" / f"{etag}.json"
        try:
            return path.read_bytes(), etag
        except OSError as exc:
            raise ServeError(
                f"artifact object missing for {resource!r}: {path}"
            ) from exc

    def read_json(self, resource: str) -> Any:
        body, _ = self.read_bytes(resource)
        return json.loads(body)


# -- tile math -----------------------------------------------------------------


def _downsample(values: np.ndarray, max_bins: int) -> Tuple[int, np.ndarray]:
    """Mean-downsample to at most ``max_bins``; return (group, means)."""
    n = len(values)
    group = max(1, -(-n // max_bins))
    pad = (-n) % group
    if pad:
        padded = np.concatenate([values, np.full(pad, np.nan)])
    else:
        padded = values
    grouped = padded.reshape(-1, group)
    with np.errstate(invalid="ignore"):
        means = np.nanmean(grouped, axis=1)
    return group, np.nan_to_num(means, nan=0.0)


def _tile_payload(iso2: str, kind: SignalKind, zoom: int, index: int,
                  native: "np.ndarray", native_start: int,
                  native_width: int, period: TimeRange,
                  tile_bins: int) -> Dict[str, Any]:
    tiles = tile_count(zoom)
    duration = period.end - period.start
    tile_dur = -(-duration // tiles)
    t_start = period.start + index * tile_dur
    t_end = min(period.end, t_start + tile_dur)
    lo = max(0, (t_start - native_start) // native_width)
    hi = max(lo, -(-(t_end - native_start) // native_width))
    window = native[lo:hi]
    group, means = _downsample(window, tile_bins)
    return {
        "entity": f"country/{iso2}",
        "kind": kind.value,
        "zoom": zoom,
        "index": index,
        "start": int(native_start + lo * native_width),
        "width": int(group * native_width),
        "values": [round(float(v), 6) for v in means],
    }


# -- the one-shot builder ------------------------------------------------------


def build_store(result: Any, root: Union[str, Path], *,
                page_size: int = 50,
                tile_bins: int = DEFAULT_TILE_BINS,
                zooms: Sequence[int] = DEFAULT_ZOOMS,
                max_countries: Optional[int] = None,
                period: Optional[TimeRange] = None,
                platform: Optional[Any] = None) -> ArtifactStore:
    """Precompute a run's servable surfaces into a store under ``root``.

    ``result`` is a :class:`~repro.api.RunResult` (or any object with
    ``curated_records`` and ``scenario`` — a bare ``PipelineResult``
    works; a ``health`` attribute, when present, becomes the ``health``
    artifact).  Tiles cover ``period`` (default: the study period) for
    every country with curated records (capped at ``max_countries``,
    most-events first) across all three signals at each zoom in
    ``zooms``.  ``platform`` overrides the :class:`IODAPlatform` built
    from the result's scenario — pass the pipeline's own to reuse its
    warm signal cache.
    """
    if page_size <= 0:
        raise ConfigurationError(
            f"page_size must be positive: {page_size}")
    if tile_bins <= 0:
        raise ConfigurationError(
            f"tile_bins must be positive: {tile_bins}")
    zooms = tuple(sorted(set(int(z) for z in zooms)))
    if any(z < 0 for z in zooms) or not zooms:
        raise ConfigurationError(f"invalid zoom levels: {zooms}")
    records = sorted(result.curated_records,
                     key=lambda r: (r.span.start, r.country_iso2))
    period = period if period is not None else STUDY_PERIOD
    if platform is None:
        from repro.ioda.platform import IODAPlatform
        platform = IODAPlatform(result.scenario)

    builder = ArtifactStore.create(root)

    # -- events ----------------------------------------------------------------
    by_country: Dict[str, List[Any]] = {}
    for record in records:
        by_country.setdefault(record.country_iso2, []).append(record)
    all_payload = {"total": len(records),
                   "records": [record_to_dict(r) for r in records]}
    builder.put("events/all", all_payload)
    for iso2 in sorted(by_country):
        country_records = by_country[iso2]
        builder.put(f"events/country/{iso2}", {
            "country": iso2,
            "total": len(country_records),
            "records": [record_to_dict(r) for r in country_records],
        })

    # -- tiles -----------------------------------------------------------------
    ranked = sorted(by_country,
                    key=lambda c: (-len(by_country[c]), c))
    countries = sorted(ranked[:max_countries]
                       if max_countries is not None else ranked)
    kinds = tuple(SignalKind)
    for iso2 in countries:
        entity = Entity.country(iso2)
        for kind in kinds:
            native = platform.signal(entity, kind, period)
            for zoom in zooms:
                for index in range(tile_count(zoom)):
                    builder.put(
                        f"tiles/{iso2}/{kind.value}/z{zoom}/{index}",
                        _tile_payload(iso2, kind, zoom, index,
                                      native.values, native.start,
                                      native.width, period, tile_bins))
    builder.put("tiles/index", {
        "countries": countries,
        "kinds": [k.value for k in kinds],
        "zooms": list(zooms),
        "zoom_base": ZOOM_BASE,
        "tile_bins": tile_bins,
        "period": {"start": period.start, "end": period.end},
    })

    # -- reports ---------------------------------------------------------------
    health = getattr(result, "health", None)
    if health is not None:
        builder.put("health", health.as_dict())
    builder.put("summary", _summary(records, by_country, countries,
                                    period))

    return builder.finish(meta={
        "page_size": page_size,
        "tile_bins": tile_bins,
        "zooms": list(zooms),
        "countries": len(countries),
        "records": len(records),
        "period": {"start": period.start, "end": period.end},
    })


def _summary(records: Sequence[Any], by_country: Mapping[str, Sequence],
             tile_countries: Iterable[str],
             period: TimeRange) -> Dict[str, Any]:
    causes: Dict[str, int] = {}
    for record in records:
        cause = record.cause if record.cause else "unknown"
        causes[cause] = causes.get(cause, 0) + 1
    return {
        "total_events": len(records),
        "countries": len(by_country),
        "tile_countries": sorted(tile_countries),
        "causes": {k: causes[k] for k in sorted(causes)},
        "period": {"start": period.start, "end": period.end},
        "top_countries": sorted(
            by_country, key=lambda c: (-len(by_country[c]), c))[:10],
    }
