"""The serving layer's request handling, transport-independent.

:class:`ServeApp` maps GET/HEAD targets onto an
:class:`~repro.serve.artifacts.ArtifactStore`:

- ``/healthz`` — liveness (store root + resource count),
- ``/v1/summary``, ``/v1/health``, ``/v1/manifest`` — run reports,
- ``/v1/tiles`` — the tile pyramid's index,
- ``/v1/tiles/<ISO2>/<kind>/<z>/<i>`` — one signal tile,
- ``/v1/events`` — the cursor-paginated event feed
  (``?country=&from=&until=&limit=&cursor=``), speaking exactly the
  :class:`~repro.ioda.api.IODAClient` cursor contract: tokens are
  minted/checked by the *same* :func:`~repro.ioda.api.encode_cursor` /
  :func:`~repro.ioda.api.decode_cursor` pair, bound to the filters and
  to the events artifact's content address (the feed revision), and any
  mismatch is a :class:`~repro.errors.CursorError` → 400,
- ``/metrics`` — the app's own registry as OpenMetrics text.

Every 200 carries an ``ETag`` that *is* a content address: whole
artifacts reply with the store's blake2b address verbatim, event pages
with a fingerprint over (artifact address, filters, position), so
``If-None-Match`` revalidation (→ 304) is a pure string compare.  Hot
artifacts are read through the single-flight
:class:`~repro.serve.cache.AsyncLRU` — the store read happens in
:func:`asyncio.to_thread`, so concurrent identical requests coalesce
into one disk read and never block the event loop.

Per-request latency lands in ``serve.request.latency.<family>``
histograms and ``serve.requests{route=,status=}`` counters on the
app's :class:`~repro.obs.MetricsRegistry` — the numbers the load
harness turns into the SLO report.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import CursorError, ServeError, TimeRangeError
from repro.exec.cachestore import fingerprint
from repro.ioda.api import decode_cursor, encode_cursor
from repro.obs.metrics import MetricsRegistry
from repro.serve.artifacts import ArtifactStore
from repro.serve.cache import DEFAULT_SERVE_CACHE_SIZE, AsyncLRU

__all__ = ["Response", "ServeApp", "LATENCY_BUCKETS"]

#: Sub-second histogram bounds for request latency (seconds) — the
#: default buckets start at 1ms, far too coarse for warm cache hits.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5)

_JSON = "application/json"
_TEXT = "text/plain; charset=utf-8"
_OPENMETRICS = ("application/openmetrics-text; version=1.0.0; "
                "charset=utf-8")


@dataclass(frozen=True)
class Response:
    """One transport-independent response."""

    status: int
    body: bytes = b""
    headers: Mapping[str, str] = field(default_factory=dict)

    @property
    def etag(self) -> Optional[str]:
        """The unquoted ETag, when the response carries one."""
        raw = self.headers.get("ETag")
        return raw.strip('"') if raw else None

    def json(self) -> Any:
        return json.loads(self.body)


def _error(status: int, message: str, family: str) -> Tuple[Response, str]:
    body = json.dumps({"error": message}).encode("utf-8")
    return Response(status, body, {"Content-Type": _JSON}), family


def _if_none_match(headers: Mapping[str, str]) -> Tuple[str, ...]:
    raw = headers.get("if-none-match", "")
    if not raw:
        return ()
    tags = []
    for part in raw.split(","):
        part = part.strip()
        if part.startswith("W/"):
            part = part[2:]
        tags.append(part.strip('"'))
    return tuple(tags)


class ServeApp:
    """GET/HEAD routing over one artifact store (one event loop)."""

    def __init__(self, store: ArtifactStore, *,
                 cache_size: int = DEFAULT_SERVE_CACHE_SIZE,
                 metrics: Optional[MetricsRegistry] = None):
        self._store = store
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = AsyncLRU(cache_size, metrics=self.metrics)
        self._manifest_body = json.dumps(
            store.manifest, sort_keys=True,
            separators=(",", ":")).encode("utf-8")
        self._manifest_etag = fingerprint(
            self._manifest_body.decode("utf-8"))

    @property
    def store(self) -> ArtifactStore:
        return self._store

    # -- entry point ------------------------------------------------------------

    async def handle(self, method: str, target: str,
                     headers: Optional[Mapping[str, str]] = None
                     ) -> Response:
        """Serve one request; never raises for client-side errors."""
        headers = {k.lower(): v for k, v in (headers or {}).items()}
        started = time.perf_counter()
        if method not in ("GET", "HEAD"):
            response, family = _error(405, f"method not allowed: {method}",
                                      "other")
        else:
            try:
                response, family = await self._route(target, headers)
            except CursorError as exc:
                response, family = _error(400, str(exc), "events")
            except (TimeRangeError, ValueError) as exc:
                response, family = _error(400, str(exc), "events")
            except ServeError as exc:
                response, family = _error(404, str(exc), "other")
        if method == "HEAD" and response.body:
            response = Response(response.status, b"", response.headers)
        elapsed = time.perf_counter() - started
        self.metrics.histogram(f"serve.request.latency.{family}",
                               buckets=LATENCY_BUCKETS).observe(elapsed)
        self.metrics.counter("serve.requests", route=family,
                             status=response.status).inc()
        return response

    # -- routing ----------------------------------------------------------------

    async def _route(self, target: str, headers: Mapping[str, str]
                     ) -> Tuple[Response, str]:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)
        if path == "/healthz":
            body = json.dumps({
                "status": "ok",
                "resources": len(self._store.resources()),
            }).encode("utf-8")
            return self._reply(body, fingerprint(body.decode("utf-8")),
                               headers, _JSON), "health"
        if path == "/metrics":
            body = self.metrics.to_openmetrics().encode("utf-8")
            return self._reply(body, fingerprint(body.decode("utf-8")),
                               headers, _OPENMETRICS), "metrics"
        if path == "/v1/manifest":
            return self._reply(self._manifest_body, self._manifest_etag,
                               headers, _JSON), "manifest"
        if path == "/v1/summary":
            return await self._artifact("summary", headers), "summary"
        if path == "/v1/health":
            return await self._artifact("health", headers), "health"
        if path == "/v1/tiles":
            return await self._artifact("tiles/index", headers), "tiles"
        if path.startswith("/v1/tiles/"):
            return await self._tile(path, headers), "tiles"
        if path == "/v1/events":
            return await self._events(query, headers), "events"
        raise ServeError(f"no such route: {path}")

    # -- artifact responses ------------------------------------------------------

    async def _cached_bytes(self, resource: str) -> Tuple[bytes, str]:
        if resource not in self._store:
            raise ServeError(f"unknown resource: {resource!r}")

        async def load() -> Tuple[bytes, str]:
            return await asyncio.to_thread(self._store.read_bytes,
                                           resource)

        return await self.cache.get_or_create(("bytes", resource), load)

    async def _artifact(self, resource: str,
                        headers: Mapping[str, str]) -> Response:
        body, etag = await self._cached_bytes(resource)
        return self._reply(body, etag, headers, _JSON)

    async def _tile(self, path: str,
                    headers: Mapping[str, str]) -> Response:
        # /v1/tiles/<ISO2>/<kind>/<z>/<i>
        parts = path.split("/")[3:]
        if len(parts) != 4:
            raise ServeError(f"malformed tile path: {path}")
        iso2, kind, zoom, index = parts
        try:
            zoom_n, index_n = int(zoom), int(index)
        except ValueError:
            raise ServeError(f"malformed tile path: {path}") from None
        resource = f"tiles/{iso2.upper()}/{kind}/z{zoom_n}/{index_n}"
        body, etag = await self._cached_bytes(resource)
        return self._reply(body, etag, headers, _JSON)

    # -- the event feed ----------------------------------------------------------

    async def _cached_events(self, resource: str
                             ) -> Tuple[List[Dict[str, Any]], str]:
        async def load() -> Tuple[List[Dict[str, Any]], str]:
            body, etag = await asyncio.to_thread(
                self._store.read_bytes, resource)
            return json.loads(body)["records"], etag

        if resource not in self._store:
            raise ServeError(f"unknown resource: {resource!r}")
        return await self.cache.get_or_create(("events", resource), load)

    async def _events(self, query: Mapping[str, List[str]],
                      headers: Mapping[str, str]) -> Response:
        country = _single(query, "country")
        from_ts = _int_param(query, "from")
        until_ts = _int_param(query, "until")
        limit = _int_param(query, "limit")
        limit = 50 if limit is None else limit
        if limit <= 0:
            raise TimeRangeError(f"limit must be positive: {limit}")
        cursor = _single(query, "cursor")
        resource = (f"events/country/{country.upper()}" if country
                    else "events/all")
        if resource not in self._store:
            # An unknown country has no per-country artifact: an empty
            # feed, not a 404 — mirroring IODAClient's filter behaviour.
            records: List[Dict[str, Any]] = []
            etag = self._store.etag("events/all")
        else:
            records, etag = await self._cached_events(resource)
        # The cursor binds to the filters and to the artifact's content
        # address — the store's feed revision.  Same contract (and same
        # codec) as IODAClient._query_key.
        query_key = (f"{etag}.{country.upper() if country else '-'}"
                     f".{'-' if from_ts is None else from_ts}"
                     f".{'-' if until_ts is None else until_ts}")
        start = decode_cursor(cursor, query_key) if cursor else 0
        if from_ts is not None or until_ts is not None:
            records = [
                r for r in records
                if (from_ts is None or r["start"] >= from_ts)
                and (until_ts is None or r["start"] < until_ts)
            ]
        page = records[start:start + limit]
        has_more = start + limit < len(records)
        payload = {
            "events": page,
            "total": len(records),
            "cursor": (encode_cursor(start + limit, query_key)
                       if has_more else None),
        }
        body = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        page_etag = fingerprint(etag, country, from_ts, until_ts,
                                start, limit)
        return self._reply(body, page_etag, headers, _JSON)

    # -- shared response assembly -------------------------------------------------

    def _reply(self, body: bytes, etag: str,
               headers: Mapping[str, str],
               content_type: str) -> Response:
        base = {"Content-Type": content_type, "ETag": f'"{etag}"'}
        tags = _if_none_match(headers)
        if tags and ("*" in tags or etag in tags):
            return Response(304, b"", base)
        return Response(200, body, base)


def _single(query: Mapping[str, List[str]], name: str) -> Optional[str]:
    values = query.get(name)
    return values[-1] if values else None


def _int_param(query: Mapping[str, List[str]],
               name: str) -> Optional[int]:
    raw = _single(query, name)
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        raise TimeRangeError(
            f"query parameter {name!r} must be an integer: {raw!r}"
        ) from None
