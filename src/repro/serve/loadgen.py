"""The load-generation harness: seeded client mixes → an SLO report.

Replays realistic dashboard traffic against a :class:`ServeApp` —
in-process, or over real TCP sockets — at configurable concurrency,
and distils the result into an :class:`SLOReport` whose statistics
feed the ``repro perf`` baseline machinery.

**Determinism contract.**  Every client ``i`` draws its behaviour from
a private ``random.Random(seed * 7919 + i)`` and never from wall time
or response timing, so the *request plan* — which targets are fetched,
which are conditional re-fetches — is a pure function of
``(mix, concurrency, requests_per_client, seed)`` plus the store's
content.  The request and response **counts** (total, 200s, 304s,
errors) are therefore exactly reproducible across machines, transports
and interleavings, which is what lets the SLO baseline pin them as
*fidelity* values (exact-matched in CI) while latencies and cache
hit-rates ride in the banded/trend perf half.

Three mixes model the paper-era dashboard traffic shapes:

- ``dashboard`` — a bootstrap index fetch, then tile pans, country
  event pages, and conditional re-fetches of already-seen URLs with
  ``If-None-Match`` (the 304 revalidation path),
- ``events`` — cursor walks of the event feed (the paper's curators
  paging through candidates), restarting on exhaustion,
- ``zoom`` — coarse-to-fine tile chains (z0 → z1 → z2), the
  drill-into-an-outage gesture.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import ConfigurationError, ServeError
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.serve.artifacts import ArtifactStore
from repro.serve.http import ServeServer
from repro.serve.routes import LATENCY_BUCKETS, ServeApp

__all__ = ["LoadgenConfig", "SLOReport", "run_loadgen", "MIXES"]

MIXES = ("dashboard", "events", "zoom")

_EVENT_LIMIT = 25


@dataclass(frozen=True)
class LoadgenConfig:
    """One load burst's shape (all of it baseline config)."""

    mix: str = "dashboard"
    concurrency: int = 256
    requests_per_client: int = 40
    seed: int = 1

    def __post_init__(self) -> None:
        if self.mix not in MIXES:
            raise ConfigurationError(
                f"unknown mix {self.mix!r}; pick one of {MIXES}")
        if self.concurrency < 1:
            raise ConfigurationError(
                f"concurrency must be >= 1: {self.concurrency}")
        if self.requests_per_client < 2:
            raise ConfigurationError(
                "requests_per_client must be >= 2 (the first request "
                f"is the index bootstrap): {self.requests_per_client}")

    def as_dict(self) -> Dict[str, Any]:
        return {"mix": self.mix, "concurrency": self.concurrency,
                "requests_per_client": self.requests_per_client,
                "seed": self.seed}


# -- transports ----------------------------------------------------------------


class _InProcessTransport:
    """Calls :meth:`ServeApp.handle` directly (no sockets)."""

    def __init__(self, app: ServeApp):
        self._app = app

    async def open(self) -> None:
        return None

    async def close(self) -> None:
        return None

    async def request(self, target: str,
                      headers: Optional[Mapping[str, str]] = None
                      ) -> Tuple[int, Mapping[str, str], bytes]:
        response = await self._app.handle("GET", target, headers)
        return response.status, dict(response.headers), response.body


class _TCPTransport:
    """One keep-alive HTTP/1.1 connection per client."""

    def __init__(self, host: str, port: int):
        self._host = host
        self._port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def open(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def request(self, target: str,
                      headers: Optional[Mapping[str, str]] = None
                      ) -> Tuple[int, Mapping[str, str], bytes]:
        assert self._reader is not None and self._writer is not None
        lines = [f"GET {target} HTTP/1.1", f"Host: {self._host}"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        self._writer.write(
            ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        await self._writer.drain()
        status_line = await self._reader.readline()
        status = int(status_line.split(b" ", 2)[1])
        response_headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            response_headers[name.strip().lower()] = value.strip()
        length = int(response_headers.get("content-length", "0"))
        body = (await self._reader.readexactly(length) if length
                else b"")
        return status, response_headers, body


# -- client behaviours ---------------------------------------------------------


def _family(target: str) -> str:
    path = target.split("?", 1)[0]
    if path.startswith("/v1/events"):
        return "events"
    if path.startswith("/v1/tiles"):
        return "tiles"
    if path.startswith("/v1/summary"):
        return "summary"
    if path.startswith("/v1/health") or path.startswith("/healthz"):
        return "health"
    if path.startswith("/v1/manifest"):
        return "manifest"
    if path.startswith("/metrics"):
        return "metrics"
    return "other"


class _Client:
    """One simulated browser session."""

    def __init__(self, index: int, config: LoadgenConfig,
                 transport: Any, tally: "_Tally"):
        self._rng = random.Random(config.seed * 7919 + index)
        self._config = config
        self._transport = transport
        self._tally = tally
        # URL → unquoted ETag, for conditional re-fetches.
        self._seen: Dict[str, str] = {}
        self._index: Optional[Mapping[str, Any]] = None

    async def run(self) -> None:
        await self._transport.open()
        try:
            body = await self._fetch("/v1/tiles")
            self._index = json.loads(body) if body else None
            steps = {
                "dashboard": self._dashboard_step,
                "events": self._events_step,
                "zoom": self._zoom_step,
            }[self._config.mix]
            budget = self._config.requests_per_client - 1
            while budget > 0:
                budget -= await steps(budget)
        finally:
            await self._transport.close()

    async def _fetch(self, target: str,
                     conditional: bool = False) -> bytes:
        headers: Dict[str, str] = {}
        if conditional:
            headers["If-None-Match"] = f'"{self._seen[target]}"'
        started = time.perf_counter()
        status, response_headers, body = \
            await self._transport.request(target, headers or None)
        elapsed = time.perf_counter() - started
        etag = response_headers.get(
            "etag", response_headers.get("ETag", "")).strip('"')
        if status == 200 and etag:
            self._seen[target] = etag
        self._tally.record(_family(target), status, elapsed)
        return body

    # -- per-mix steps (each returns the number of requests spent) -----------

    def _tile_target(self) -> str:
        index = self._index or {}
        countries = index.get("countries") or ["-"]
        kinds = index.get("kinds") or ["bgp"]
        zooms = index.get("zooms") or [0]
        base = index.get("zoom_base", 4)
        country = self._rng.choice(countries)
        kind = self._rng.choice(kinds)
        zoom = self._rng.choice(zooms)
        tile = self._rng.randrange(base ** zoom)
        return f"/v1/tiles/{country}/{kind}/{zoom}/{tile}"

    def _events_target(self, country: Optional[str],
                       cursor: Optional[str] = None) -> str:
        target = f"/v1/events?limit={_EVENT_LIMIT}"
        if country:
            target += f"&country={country}"
        if cursor:
            target += f"&cursor={cursor}"
        return target

    def _pick_country(self) -> Optional[str]:
        countries = (self._index or {}).get("countries") or []
        if not countries or self._rng.random() < 0.2:
            return None
        return self._rng.choice(countries)

    async def _dashboard_step(self, budget: int) -> int:
        roll = self._rng.random()
        if roll < 0.50:
            await self._fetch(self._tile_target())
        elif roll < 0.75:
            await self._fetch(self._events_target(self._pick_country()))
        elif self._seen:
            # Revalidate something already on screen: the 304 path.
            target = self._rng.choice(sorted(self._seen))
            await self._fetch(target, conditional=True)
        else:
            await self._fetch("/v1/summary")
        return 1

    async def _events_step(self, budget: int) -> int:
        country = self._pick_country()
        cursor: Optional[str] = None
        spent = 0
        while spent < budget:
            body = await self._fetch(self._events_target(country,
                                                         cursor))
            spent += 1
            cursor = json.loads(body).get("cursor") if body else None
            if cursor is None:
                break
        return spent

    async def _zoom_step(self, budget: int) -> int:
        index = self._index or {}
        countries = index.get("countries") or ["-"]
        kinds = index.get("kinds") or ["bgp"]
        zooms = sorted(index.get("zooms") or [0])
        base = index.get("zoom_base", 4)
        country = self._rng.choice(countries)
        kind = self._rng.choice(kinds)
        tile = 0
        spent = 0
        for zoom in zooms:
            if spent >= budget:
                break
            await self._fetch(f"/v1/tiles/{country}/{kind}"
                              f"/{zoom}/{tile}")
            spent += 1
            tile = tile * base + self._rng.randrange(base)
        return max(spent, 1)


# -- tallying and the report ---------------------------------------------------


class _Tally:
    """Client-side latency histograms and response counts."""

    def __init__(self) -> None:
        self.histograms: Dict[str, Histogram] = {}
        self.statuses: Dict[int, int] = {}

    def record(self, family: str, status: int, elapsed: float) -> None:
        histogram = self.histograms.get(family)
        if histogram is None:
            histogram = self.histograms[family] = \
                Histogram(LATENCY_BUCKETS)
        histogram.observe(elapsed)
        self.statuses[status] = self.statuses.get(status, 0) + 1


@dataclass(frozen=True)
class SLOReport:
    """One load burst's outcome, ready for ``repro perf`` gating."""

    config: Dict[str, Any]
    elapsed_seconds: float
    requests: int
    ok: int
    not_modified: int
    errors: int
    latency: Dict[str, Dict[str, Optional[float]]]  # family → p50/p99
    cache: Dict[str, float] = field(default_factory=dict)
    transport: str = "inprocess"

    @property
    def throughput_rps(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.requests / self.elapsed_seconds

    @property
    def cache_hit_rate(self) -> float:
        looked = self.cache.get("hits", 0) + self.cache.get("misses", 0)
        return self.cache.get("hits", 0) / looked if looked else 0.0

    def statistics(self) -> Dict[str, float]:
        """The flat mapping :meth:`PerfBaseline.capture` splits.

        Deterministic request/response counts go in as fidelity values
        (exact-matched); latencies as banded ``perf.*``; hit-rate and
        throughput as trend-only ``cache.*``.
        """
        stats: Dict[str, float] = {
            "serve.requests.total": float(self.requests),
            "serve.responses.ok": float(self.ok),
            "serve.responses.not_modified": float(self.not_modified),
            "serve.responses.errors": float(self.errors),
            "perf.serve.total_seconds": self.elapsed_seconds,
        }
        for family in sorted(self.latency):
            quantiles = self.latency[family]
            for q in ("p50", "p99"):
                value = quantiles.get(q)
                if value is not None:
                    stats[f"perf.serve.latency_{q}.{family}"] = value
        stats["cache.serve.hit_rate"] = self.cache_hit_rate
        stats["cache.serve.throughput_rps"] = self.throughput_rps
        for key in ("hits", "misses", "coalesced", "evictions"):
            stats[f"cache.serve.{key}"] = float(
                self.cache.get(key, 0))
        return stats

    def as_dict(self) -> Dict[str, Any]:
        return {
            "config": dict(self.config),
            "transport": self.transport,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "requests": self.requests,
            "ok": self.ok,
            "not_modified": self.not_modified,
            "errors": self.errors,
            "throughput_rps": round(self.throughput_rps, 3),
            "latency": self.latency,
            "cache": dict(self.cache),
            "cache_hit_rate": round(self.cache_hit_rate, 6),
        }

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=2) + "\n",
                        encoding="utf-8")
        return path

    def rows(self) -> List[str]:
        lines = [
            f"loadgen         mix={self.config.get('mix')} "
            f"clients={self.config.get('concurrency')} "
            f"requests={self.requests} "
            f"({self.ok} ok, {self.not_modified} not-modified, "
            f"{self.errors} errors) in {self.elapsed_seconds:.2f}s "
            f"[{self.transport}]",
            f"  throughput    {self.throughput_rps:,.0f} req/s",
            f"  cache         hit-rate {self.cache_hit_rate:.1%} "
            f"({self.cache.get('hits', 0):.0f} hits, "
            f"{self.cache.get('misses', 0):.0f} misses, "
            f"{self.cache.get('coalesced', 0):.0f} coalesced, "
            f"{self.cache.get('evictions', 0):.0f} evictions)",
        ]
        for family in sorted(self.latency):
            quantiles = self.latency[family]
            p50, p99 = quantiles.get("p50"), quantiles.get("p99")
            count = quantiles.get("count", 0)
            lines.append(
                f"  {family:<13} p50 {_ms(p50)}  p99 {_ms(p99)}  "
                f"({count:.0f} requests)")
        return lines


def _ms(value: Optional[float]) -> str:
    return "n/a" if value is None else f"{value * 1e3:.2f}ms"


# -- the harness entry point ---------------------------------------------------


def run_loadgen(store: Optional[ArtifactStore] = None, *,
                app: Optional[ServeApp] = None,
                url: Optional[str] = None,
                config: LoadgenConfig = LoadgenConfig(),
                tcp: bool = False,
                cache_size: Optional[int] = None) -> SLOReport:
    """Run one load burst and return its :class:`SLOReport`.

    Pass a ``store`` (an app is built over it) or a ready ``app``;
    ``tcp=True`` spawns a private :class:`ServeServer` on an ephemeral
    port and drives it over real sockets.  ``url`` instead targets an
    already-running external server (cache counters are then absent
    from the report — the server's registry is not reachable).
    """
    if url is None and app is None and store is None:
        raise ServeError("pass a store, an app, or a server url")
    if url is not None:
        # External server: its app (and cache counters) are out of
        # reach; any store/app passed alongside would sit idle.
        app = None
    elif app is None:
        kwargs = {} if cache_size is None else {"cache_size": cache_size}
        app = ServeApp(store, **kwargs)
    return asyncio.run(_run_async(app, url, config, tcp))


async def _run_async(app: Optional[ServeApp], url: Optional[str],
                     config: LoadgenConfig, tcp: bool) -> SLOReport:
    server: Optional[ServeServer] = None
    if url is not None:
        split = url.split("://", 1)[-1]
        host, _, port = split.partition(":")
        transports = [_TCPTransport(host, int(port or "80"))
                      for _ in range(config.concurrency)]
        transport_name = "tcp"
    elif tcp:
        assert app is not None
        server = await ServeServer(app).start()
        host, port_n = server.address
        transports = [_TCPTransport(host, port_n)
                      for _ in range(config.concurrency)]
        transport_name = "tcp"
    else:
        assert app is not None
        transports = [_InProcessTransport(app)
                      for _ in range(config.concurrency)]
        transport_name = "inprocess"

    tally = _Tally()
    clients = [_Client(i, config, transports[i], tally)
               for i in range(config.concurrency)]
    started = time.perf_counter()
    try:
        await asyncio.gather(*(c.run() for c in clients))
    finally:
        if server is not None:
            await server.stop()
    elapsed = time.perf_counter() - started

    latency: Dict[str, Dict[str, Optional[float]]] = {}
    for family, histogram in sorted(tally.histograms.items()):
        quantiles = histogram.percentiles((50, 99))
        latency[family] = {
            "count": float(histogram.count),
            "p50": quantiles[50],
            "p99": quantiles[99],
        }
    cache: Dict[str, float] = {}
    if app is not None:
        cache = {"hits": float(app.cache.hits),
                 "misses": float(app.cache.misses),
                 "coalesced": float(app.cache.coalesced),
                 "evictions": float(app.cache.evictions)}
    requests = sum(tally.statuses.values())
    return SLOReport(
        config=config.as_dict(),
        elapsed_seconds=elapsed,
        requests=requests,
        ok=tally.statuses.get(200, 0),
        not_modified=tally.statuses.get(304, 0),
        errors=sum(n for status, n in tally.statuses.items()
                   if status >= 400),
        latency=latency,
        cache=cache,
        transport=transport_name,
    )
