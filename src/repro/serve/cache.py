"""The serving layer's hot-artifact cache: a single-flight async LRU.

The asyncio sibling of :class:`repro.ioda.signalcache.SignalCache`,
with the same two load-bearing properties translated to the event
loop:

- **Single-flight loads.**  Concurrent requests for the same key
  coalesce into one ``factory`` invocation: the first caller becomes
  the *leader* and awaits the load; followers await an
  :class:`asyncio.Event` and re-check the store once it fires.  A
  leader that fails — or is cancelled mid-load — never poisons its
  followers: the pending entry is removed and the event set, so the
  next follower through the loop takes ownership and retries.
  Failures are never cached.
- **Bounded LRU.**  The store is an :class:`~collections.OrderedDict`
  capped at ``maxsize``; inserts past the bound evict the least
  recently used entry.

Unlike its thread sibling there is no lock: every mutation happens
between awaits on one event loop, so the dict operations are already
atomic.  The await point *matters*, though — a factory that never
yields completes before a second request can arrive, and nothing
coalesces.  The serving routes therefore load artifacts through
:func:`asyncio.to_thread` (a real await), which is also what keeps a
slow disk read from stalling the accept loop.

Hits, misses, evictions, and coalesced waits are counted both locally
(cheap introspection) and into a :class:`~repro.obs.MetricsRegistry`
as ``serve.cache.*`` — the counters the load harness uses to *prove*
single-flight behaviour and the SLO baseline records as its hit-rate.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from typing import Any, Awaitable, Callable, Dict, Hashable, Optional

from repro.errors import ConfigurationError
from repro.obs.runtime import current

__all__ = ["DEFAULT_SERVE_CACHE_SIZE", "AsyncLRU"]

#: Default LRU bound.  The canonical store's hot set — the tile pyramid
#: plus per-country event lists for every country with curated records —
#: is a few hundred artifacts; dashboard-mix traffic concentrates on a
#: fraction of that.
DEFAULT_SERVE_CACHE_SIZE = 256


class AsyncLRU:
    """A bounded single-flight LRU for one asyncio event loop."""

    def __init__(self, maxsize: int = DEFAULT_SERVE_CACHE_SIZE, *,
                 metrics: Optional[Any] = None):
        if maxsize < 1:
            raise ConfigurationError(
                f"serve cache size must be >= 1: {maxsize}")
        self._maxsize = maxsize
        self._store: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._pending: Dict[Hashable, asyncio.Event] = {}
        self._metrics = metrics
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._coalesced = 0

    # -- introspection ----------------------------------------------------------

    @property
    def maxsize(self) -> int:
        return self._maxsize

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def evictions(self) -> int:
        return self._evictions

    @property
    def coalesced(self) -> int:
        """Requests that waited on another request's in-flight load."""
        return self._coalesced

    def __len__(self) -> int:
        return len(self._store)

    def _counter(self, name: str):
        metrics = (self._metrics if self._metrics is not None
                   else current().metrics)
        return metrics.counter(name)

    # -- the one operation ------------------------------------------------------

    async def get_or_create(self, key: Hashable,
                            factory: Callable[[], Awaitable[Any]]) -> Any:
        """The value for ``key``, loading via ``factory`` on a miss.

        Concurrent callers with the same key share one ``factory``
        invocation.  A failed or cancelled leader propagates its
        exception only to itself; waiters retry and one of them takes
        ownership, so an error is never cached and followers are never
        poisoned.
        """
        while True:
            if key in self._store:
                self._store.move_to_end(key)
                self._hits += 1
                self._counter("serve.cache.hits").inc()
                return self._store[key]
            pending = self._pending.get(key)
            if pending is not None:
                # Another task is loading this key; wait for it to
                # settle, then loop: normally a hit, or — if the leader
                # failed — no pending entry, and this task leads.
                self._coalesced += 1
                self._counter("serve.cache.coalesced").inc()
                await pending.wait()
                continue
            pending = self._pending[key] = asyncio.Event()
            try:
                value = await factory()
            except BaseException:
                # Covers cancellation too: unblock the followers so
                # one of them can take over.
                self._pending.pop(key, None)
                pending.set()
                raise
            self._store[key] = value
            self._store.move_to_end(key)
            self._misses += 1
            self._counter("serve.cache.misses").inc()
            while len(self._store) > self._maxsize:
                self._store.popitem(last=False)
                self._evictions += 1
                self._counter("serve.cache.evictions").inc()
            self._pending.pop(key, None)
            pending.set()
            return value
