"""Fixed-offset timezones for localizing event times.

The paper converts IODA's UTC timestamps to local time using the timezone of
a country's capital city (§4, §5.3).  Since the analysis only needs wall-clock
minute/hour/weekday, we model timezones as *fixed* UTC offsets — DST is
deliberately ignored, matching the paper's capital-city approximation, and
several of the most shutdown-prone countries (Iran being the notable
exception) do not observe DST at all.

Offsets are stored in minutes so that half-hour (+330 for India, +390 for
Myanmar) and 45-minute (+345 for Nepal) zones are exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TimeRangeError
from repro.timeutils.timestamps import DAY, HOUR

__all__ = [
    "FixedOffset",
    "to_local",
    "local_minute_of_hour",
    "local_hour_of_day",
    "local_weekday",
    "local_date",
    "local_midnight_utc",
]

_MINUTE = 60


@dataclass(frozen=True, slots=True)
class FixedOffset:
    """A timezone expressed as a fixed offset from UTC, in minutes.

    >>> FixedOffset(390).label
    'UTC+06:30'
    """

    minutes: int

    def __post_init__(self) -> None:
        if not -14 * 60 <= self.minutes <= 14 * 60:
            raise TimeRangeError(
                f"UTC offset out of range: {self.minutes} minutes")

    @property
    def seconds(self) -> int:
        """The offset in seconds (positive east of Greenwich)."""
        return self.minutes * _MINUTE

    @property
    def label(self) -> str:
        """Human-readable ``UTC±HH:MM`` label."""
        sign = "+" if self.minutes >= 0 else "-"
        magnitude = abs(self.minutes)
        return f"UTC{sign}{magnitude // 60:02d}:{magnitude % 60:02d}"

    def __str__(self) -> str:
        return self.label


def to_local(ts: int, offset: FixedOffset) -> int:
    """Shift a UTC timestamp into local wall-clock seconds.

    The result is *not* a Unix timestamp; it is a clock reading expressed in
    seconds so that the usual modular arithmetic extracts local fields.
    """
    return ts + offset.seconds


def local_minute_of_hour(ts: int, offset: FixedOffset) -> int:
    """Local wall-clock minute (0..59) at UTC instant ``ts``."""
    return (to_local(ts, offset) % HOUR) // _MINUTE


def local_hour_of_day(ts: int, offset: FixedOffset) -> int:
    """Local wall-clock hour (0..23) at UTC instant ``ts``."""
    return (to_local(ts, offset) % DAY) // HOUR


def local_weekday(ts: int, offset: FixedOffset) -> int:
    """Local day of week at ``ts``; Monday is 0 (ISO convention).

    The Unix epoch (1970-01-01) was a Thursday, i.e. ISO weekday 3.
    """
    days_since_epoch = to_local(ts, offset) // DAY
    return (days_since_epoch + 3) % 7


def local_date(ts: int, offset: FixedOffset) -> int:
    """The local calendar day containing ``ts``, identified by the *local*
    midnight expressed as days since the epoch.

    Two events share a value iff they happened on the same local date.  Used
    for the day-level contingency analysis (Table 4).
    """
    return to_local(ts, offset) // DAY


def local_midnight_utc(ts: int, offset: FixedOffset) -> int:
    """The UTC timestamp of the most recent local midnight at/before ``ts``.

    KIO entries carry only local *dates*; to compare against IODA's UTC
    timestamps the merge pipeline anchors each KIO date at its local
    midnight expressed back in UTC.
    """
    local_day_start = (to_local(ts, offset) // DAY) * DAY
    return local_day_start - offset.seconds
