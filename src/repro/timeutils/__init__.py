"""Time handling for the outage/shutdown pipeline.

Everything in the simulator and analysis operates on Unix timestamps
(integer seconds, UTC).  This subpackage provides:

- :mod:`repro.timeutils.timestamps` — construction/formatting of UTC
  timestamps and fixed-width binning (IODA uses 5- and 10-minute bins).
- :mod:`repro.timeutils.timezones` — fixed UTC-offset timezones used to
  convert event times to the local time of a country's capital, including
  half-hour and 45-minute offsets (e.g., Myanmar +6:30, Nepal +5:45).
- :mod:`repro.timeutils.calendars` — weekday arithmetic and workweek
  customs (e.g., Friday-Saturday weekends).
"""

from repro.timeutils.timestamps import (
    FIVE_MINUTES,
    TEN_MINUTES,
    HOUR,
    DAY,
    WEEK,
    TimeRange,
    bin_floor,
    bin_index,
    bin_range,
    format_utc,
    parse_utc,
    utc,
)
from repro.timeutils.timezones import (
    FixedOffset,
    local_date,
    local_hour_of_day,
    local_minute_of_hour,
    local_weekday,
    to_local,
)
from repro.timeutils.calendars import (
    WEEKDAY_NAMES,
    Workweek,
    day_of_week,
    is_workday,
)

__all__ = [
    "FIVE_MINUTES",
    "TEN_MINUTES",
    "HOUR",
    "DAY",
    "WEEK",
    "TimeRange",
    "bin_floor",
    "bin_index",
    "bin_range",
    "format_utc",
    "parse_utc",
    "utc",
    "FixedOffset",
    "local_date",
    "local_hour_of_day",
    "local_minute_of_hour",
    "local_weekday",
    "to_local",
    "WEEKDAY_NAMES",
    "Workweek",
    "day_of_week",
    "is_workday",
]
