"""Weekday arithmetic and workweek customs.

§5.3 of the paper notes that several countries with many shutdowns (Syria,
Iraq, Iran, Sudan, Algeria) do not include Friday in the customary workweek,
which explains the Friday deficit in shutdown start days (Figure 15).  The
paper could not find a reliable global workweek dataset; our synthetic world
carries the workweek as ground truth per country, and the analysis code can
optionally use it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet

__all__ = ["WEEKDAY_NAMES", "Weekday", "Workweek", "day_of_week", "is_workday"]

#: Abbreviated weekday names indexed by ISO weekday number (Monday = 0).
WEEKDAY_NAMES = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")


class Weekday(enum.IntEnum):
    """ISO weekday numbers (Monday = 0 .. Sunday = 6)."""

    MONDAY = 0
    TUESDAY = 1
    WEDNESDAY = 2
    THURSDAY = 3
    FRIDAY = 4
    SATURDAY = 5
    SUNDAY = 6


@dataclass(frozen=True)
class Workweek:
    """The customary working days of a country.

    Two customs dominate globally and both occur in our country registry:

    - ``MON_FRI``: Saturday/Sunday weekend (most countries).
    - ``SUN_THU``: Friday/Saturday weekend (much of the Middle East and
      North Africa, which together account for the majority of shutdowns
      in the paper's dataset).
    """

    workdays: FrozenSet[int] = field(
        default_factory=lambda: frozenset(range(5)))

    def __post_init__(self) -> None:
        if not self.workdays or not all(0 <= d <= 6 for d in self.workdays):
            raise ValueError(f"invalid workdays: {sorted(self.workdays)}")

    def is_workday(self, weekday: int) -> bool:
        """Whether ISO weekday ``weekday`` is a working day."""
        return weekday in self.workdays

    @property
    def weekend(self) -> FrozenSet[int]:
        """The complement of the workdays."""
        return frozenset(range(7)) - self.workdays


#: Monday-Friday workweek (Saturday/Sunday weekend).
MON_FRI = Workweek(frozenset({0, 1, 2, 3, 4}))
#: Sunday-Thursday workweek (Friday/Saturday weekend).
SUN_THU = Workweek(frozenset({6, 0, 1, 2, 3}))


def day_of_week(days_since_epoch: int) -> int:
    """ISO weekday of a day index as produced by
    :func:`repro.timeutils.timezones.local_date`."""
    return (days_since_epoch + 3) % 7


def is_workday(days_since_epoch: int, workweek: Workweek) -> bool:
    """Whether the given local day index is a working day under
    ``workweek``."""
    return workweek.is_workday(day_of_week(days_since_epoch))
