"""UTC timestamps and fixed-width time bins.

The simulator and the analysis code both operate on integer Unix timestamps
(seconds since the epoch, UTC).  IODA's signals are binned: BGP and Telescope
use 5-minute bins, Active Probing uses 10-minute rounds.  The helpers here
implement the binning arithmetic used throughout the package.
"""

from __future__ import annotations

import calendar
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Iterator

from repro.errors import TimeRangeError

__all__ = [
    "FIVE_MINUTES",
    "TEN_MINUTES",
    "HOUR",
    "DAY",
    "WEEK",
    "utc",
    "parse_utc",
    "format_utc",
    "bin_floor",
    "bin_ceil",
    "bin_index",
    "bin_range",
    "TimeRange",
]

#: Seconds in a 5-minute IODA bin (BGP, Telescope signals).
FIVE_MINUTES = 5 * 60
#: Seconds in a 10-minute IODA active-probing round.
TEN_MINUTES = 10 * 60
#: Seconds in an hour.
HOUR = 60 * 60
#: Seconds in a day.
DAY = 24 * HOUR
#: Seconds in a week.
WEEK = 7 * DAY


def utc(year: int, month: int, day: int, hour: int = 0, minute: int = 0,
        second: int = 0) -> int:
    """Return the Unix timestamp for a UTC calendar date/time.

    >>> utc(2018, 1, 1)
    1514764800
    """
    return calendar.timegm((year, month, day, hour, minute, second, 0, 0, 0))


def parse_utc(text: str) -> int:
    """Parse ``YYYY-MM-DD`` or ``YYYY-MM-DD HH:MM[:SS]`` as UTC.

    Raises :class:`TimeRangeError` if the string is not in either format.
    """
    for fmt in ("%Y-%m-%d %H:%M:%S", "%Y-%m-%d %H:%M", "%Y-%m-%d",
                "%Y-%m-%dT%H:%M:%S", "%Y-%m-%dT%H:%M"):
        try:
            parsed = time.strptime(text, fmt)
        except ValueError:
            continue
        return calendar.timegm(parsed)
    raise TimeRangeError(f"unparseable UTC timestamp: {text!r}")


def format_utc(ts: int) -> str:
    """Format a Unix timestamp as ``YYYY-MM-DD HH:MM:SS`` (UTC)."""
    moment = datetime.fromtimestamp(ts, tz=timezone.utc)
    return moment.strftime("%Y-%m-%d %H:%M:%S")


def bin_floor(ts: int, width: int) -> int:
    """Round ``ts`` down to the start of its bin of ``width`` seconds."""
    if width <= 0:
        raise TimeRangeError(f"bin width must be positive, got {width}")
    return ts - (ts % width)


def bin_ceil(ts: int, width: int) -> int:
    """Round ``ts`` up to the next bin boundary (identity on boundaries)."""
    floored = bin_floor(ts, width)
    if floored == ts:
        return ts
    return floored + width


def bin_index(ts: int, start: int, width: int) -> int:
    """Return the index of the bin containing ``ts`` for a series starting
    at ``start`` with bins of ``width`` seconds."""
    if ts < start:
        raise TimeRangeError(
            f"timestamp {ts} precedes series start {start}")
    if width <= 0:
        raise TimeRangeError(f"bin width must be positive, got {width}")
    return (ts - start) // width


def bin_range(start: int, end: int, width: int) -> Iterator[int]:
    """Yield the start timestamps of all bins in ``[start, end)``.

    ``start`` is floored to a bin boundary first; the final bin is the one
    containing ``end - 1``.
    """
    if end <= start:
        raise TimeRangeError(f"empty bin range: start={start} end={end}")
    cursor = bin_floor(start, width)
    while cursor < end:
        yield cursor
        cursor += width


@dataclass(frozen=True, slots=True)
class TimeRange:
    """A half-open interval ``[start, end)`` of Unix timestamps.

    Used for study periods, event spans, and matching windows.  Instances
    are immutable and hashable so they can key caches.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise TimeRangeError(
                f"TimeRange end {self.end} precedes start {self.start}")

    @property
    def duration(self) -> int:
        """Length of the interval in seconds."""
        return self.end - self.start

    def contains(self, ts: int) -> bool:
        """Whether ``ts`` falls inside ``[start, end)``."""
        return self.start <= ts < self.end

    def overlaps(self, other: "TimeRange") -> bool:
        """Whether the two half-open intervals share any instant."""
        return self.start < other.end and other.start < self.end

    def intersect(self, other: "TimeRange") -> "TimeRange | None":
        """The overlapping sub-interval, or ``None`` if disjoint."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if lo >= hi:
            return None
        return TimeRange(lo, hi)

    def expand(self, before: int = 0, after: int = 0) -> "TimeRange":
        """A copy widened by ``before`` seconds earlier and ``after`` later.

        The merge pipeline uses this to add the 24-hour lookback window when
        matching IODA events against date-granular KIO entries.
        """
        return TimeRange(self.start - before, self.end + after)

    def days(self) -> Iterator[int]:
        """Yield the UTC midnight timestamp of each day the range touches."""
        cursor = bin_floor(self.start, DAY)
        while cursor < self.end:
            yield cursor
            cursor += DAY

    def __str__(self) -> str:
        return f"[{format_utc(self.start)} .. {format_utc(self.end)})"
