"""IODA observation calendar: data-quality gaps and downtime.

The paper's curated list is incomplete from August to November 2021
(collection issues and inconsistent investigation) and empty from November
2021 to early February 2022 while IODA migrated between institutions —
which is why the study period ends on 2021-08-01 (§3.1.2).

:class:`ObservationCalendar` makes those windows first-class: a curation
run handed a calendar will not record events whose investigation falls in
an ``OFFLINE`` gap and records only a fraction of events in ``DEGRADED``
gaps.  The default study period avoids the gaps entirely; the calendar
exists so that anyone extending the period sees the same bias the paper's
authors protected themselves from.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.rng import substream
from repro.timeutils.timestamps import TimeRange, utc

__all__ = ["GapKind", "ObservationGap", "ObservationCalendar",
           "IODA_CALENDAR"]


class GapKind(enum.Enum):
    """Severity of an observation gap."""

    DEGRADED = "degraded"   # collection issues; spotty investigation
    OFFLINE = "offline"     # platform down entirely


@dataclass(frozen=True)
class ObservationGap:
    """One gap in IODA's coverage."""

    span: TimeRange
    kind: GapKind
    reason: str

    #: Fraction of events still investigated during a DEGRADED gap.
    DEGRADED_COVERAGE = 0.3


@dataclass(frozen=True)
class ObservationCalendar:
    """The set of known gaps."""

    gaps: Tuple[ObservationGap, ...] = ()

    def gap_at(self, ts: int) -> Optional[ObservationGap]:
        """The gap containing ``ts``, if any."""
        for gap in self.gaps:
            if gap.span.contains(ts):
                return gap
        return None

    def observes(self, ts: int, seed: int) -> bool:
        """Whether an event starting at ``ts`` would be investigated.

        Deterministic per (timestamp, seed), so repeated runs agree.
        """
        gap = self.gap_at(ts)
        if gap is None:
            return True
        if gap.kind is GapKind.OFFLINE:
            return False
        rng = substream(seed, "calendar", ts)
        return bool(rng.random() < ObservationGap.DEGRADED_COVERAGE)

    def clean_subperiods(self, period: TimeRange) -> List[TimeRange]:
        """The gap-free sub-intervals of ``period``."""
        boundaries = [period.start]
        for gap in sorted(self.gaps, key=lambda g: g.span.start):
            clipped = gap.span.intersect(period)
            if clipped is None:
                continue
            boundaries.extend([clipped.start, clipped.end])
        boundaries.append(period.end)
        subperiods = []
        for start, end in zip(boundaries[::2], boundaries[1::2]):
            if end > start:
                subperiods.append(TimeRange(start, end))
        return subperiods


#: The real IODA gaps the paper documents.
IODA_CALENDAR = ObservationCalendar(gaps=(
    ObservationGap(
        span=TimeRange(utc(2021, 8, 1), utc(2021, 11, 1)),
        kind=GapKind.DEGRADED,
        reason="data collection issues and inconsistent investigation"),
    ObservationGap(
        span=TimeRange(utc(2021, 11, 1), utc(2022, 2, 7)),
        kind=GapKind.OFFLINE,
        reason="infrastructure migration between institutions"),
))
