"""The DataWorks review pass (§3.1.2).

The paper's team contracted DataWorks to review the historical curated
records, filling missing fields (start/end times, which signals showed
visible drops) with a quality-assurance sample re-checked by the authors.

:class:`DataWorksReviewer` reproduces that second-pass review: it replays
each record's window through the platform, re-derives the per-signal
visibility flags from the signals, fills any flag that disagrees with the
evidence, and reports what it changed.  Running it over a well-curated
list should produce few corrections — the review's agreement rate is
itself a data-quality metric.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.ioda.platform import IODAPlatform
from repro.ioda.records import OutageRecord
from repro.signals.entities import Entity, EntityScope
from repro.signals.kinds import SignalKind
from repro.timeutils.timestamps import HOUR, TimeRange

__all__ = ["ReviewOutcome", "DataWorksReviewer"]


@dataclass(frozen=True)
class ReviewOutcome:
    """Result of reviewing one record."""

    record: OutageRecord
    corrected: bool
    corrections: Tuple[str, ...] = ()


class DataWorksReviewer:
    """Re-derives visibility flags from signals and fixes disagreements."""

    def __init__(self, platform: IODAPlatform,
                 depth_thresholds: Dict[SignalKind, float] | None = None,
                 context: int = 12 * HOUR,
                 margin: float = 0.08):
        self._platform = platform
        self._thresholds = depth_thresholds or {
            SignalKind.BGP: 0.12,
            SignalKind.ACTIVE_PROBING: 0.15,
            SignalKind.TELESCOPE: 0.50,
        }
        self._context = context
        #: A recorded flag is only overturned when the re-derived depth is
        #: decisively on the other side of the threshold; borderline calls
        #: defer to the original curator's judgment.
        self._margin = margin

    def review(self, record: OutageRecord) -> ReviewOutcome:
        """Review one record against the signals."""
        entity = self._entity(record)
        window = record.span.expand(before=self._context,
                                    after=self._context)
        corrections: List[str] = []
        reviewed_flags = dict(record.human_visible)
        for kind in SignalKind:
            depth = self._depth(entity, kind, record.span, window)
            recorded = record.human_visible[kind]
            threshold = self._thresholds[kind]
            if recorded and depth < threshold - self._margin:
                observed = False
            elif not recorded and depth >= threshold + self._margin:
                observed = True
            else:
                continue
            reviewed_flags[kind] = observed
            corrections.append(
                f"{kind.label}: recorded {recorded}, signals show "
                f"{observed} (depth {depth:.2f})")
        if not corrections:
            return ReviewOutcome(record=record, corrected=False)
        # Never flip a record to fully invisible — the record's existence
        # attests that reviewers saw something; keep the strongest flag.
        if not any(reviewed_flags.values()):
            best = max(
                SignalKind,
                key=lambda k: self._depth(entity, k, record.span, window))
            reviewed_flags[best] = True
        reviewed = replace(record, human_visible=reviewed_flags)
        return ReviewOutcome(record=reviewed, corrected=True,
                             corrections=tuple(corrections))

    def review_all(self, records: Sequence[OutageRecord]
                   ) -> Tuple[List[OutageRecord], List[ReviewOutcome]]:
        """Review every record; return (reviewed records, corrections)."""
        reviewed: List[OutageRecord] = []
        changed: List[ReviewOutcome] = []
        for record in records:
            outcome = self.review(record)
            reviewed.append(outcome.record)
            if outcome.corrected:
                changed.append(outcome)
        return reviewed, changed

    def agreement_rate(self, records: Sequence[OutageRecord]) -> float:
        """Fraction of records the review leaves untouched."""
        if not records:
            return 1.0
        _, changed = self.review_all(records)
        return 1.0 - len(changed) / len(records)

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _entity(record: OutageRecord) -> Entity:
        if record.scope is EntityScope.REGION and record.region_names:
            return Entity(EntityScope.REGION, record.region_names[0])
        return Entity.country(record.country_iso2)

    def _visibly_down(self, entity: Entity, kind: SignalKind,
                      span: TimeRange, window: TimeRange) -> bool:
        return (self._depth(entity, kind, span, window)
                >= self._thresholds[kind])

    def _depth(self, entity: Entity, kind: SignalKind, span: TimeRange,
               window: TimeRange) -> float:
        series = self._platform.signal(entity, kind, window)
        before = series.slice(TimeRange(window.start, span.start))
        during = series.slice(span)
        baseline = float(np.median(before.values))
        if baseline <= 0 or len(during) == 0:
            return 0.0
        if len(during) >= 3:
            smoothed = np.convolve(
                during.values, np.full(3, 1.0 / 3.0), mode="valid")
            low = float(smoothed.min())
        else:
            low = float(during.values.min())
        return max(0.0, 1.0 - low / baseline)
