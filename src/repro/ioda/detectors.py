"""Per-signal alert detector configurations (§3.1.1).

====================  ==========  ==================
Signal                Threshold   History window
====================  ==========  ==================
BGP                   99%         24 hours
Active Probing        80%         7 days
Telescope             25%         7 days
====================  ==========  ==================

The telescope threshold is far lower because the signal's variance is far
higher; the BGP threshold is razor thin because routing visibility is
nearly constant absent real events.
"""

from __future__ import annotations

from typing import Mapping

from repro.signals.alerts import AlertDetector, DetectorConfig
from repro.signals.kinds import SignalKind
from repro.timeutils.timestamps import DAY, HOUR

__all__ = ["DETECTOR_CONFIGS", "DETECTORS", "detector_for"]

DETECTOR_CONFIGS: Mapping[SignalKind, DetectorConfig] = {
    SignalKind.BGP: DetectorConfig(
        threshold=0.99, history_seconds=24 * HOUR,
        min_history_fraction=0.5),
    SignalKind.ACTIVE_PROBING: DetectorConfig(
        threshold=0.80, history_seconds=7 * DAY,
        min_history_fraction=0.3),
    SignalKind.TELESCOPE: DetectorConfig(
        threshold=0.25, history_seconds=7 * DAY,
        min_history_fraction=0.3),
}

DETECTORS: Mapping[SignalKind, AlertDetector] = {
    kind: AlertDetector(config)
    for kind, config in DETECTOR_CONFIGS.items()
}


def detector_for(kind: SignalKind) -> AlertDetector:
    """The configured detector for a signal kind."""
    return DETECTORS[kind]
