"""The IODA platform: signals, alerts, dashboard, and curation.

This subpackage reproduces the measurement side of §3.1:

- :mod:`repro.ioda.platform` — generates the three per-entity signals
  (BGP / Active Probing / Telescope) over observation windows, projecting
  ground-truth disruptions through the substrate simulators, and applies
  measurement-infrastructure artifacts.
- :mod:`repro.ioda.detectors` — the per-signal automated alert
  configurations (99% / 80% / 25% of trailing medians).
- :mod:`repro.ioda.records` — the curated outage record schema (Table 1).
- :mod:`repro.ioda.dashboard` — the alert dashboard and IODA-URL helper.
- :mod:`repro.ioda.curation` — the curation pipeline (§3.1.2): two-signal
  corroboration, external-source corroboration, control-group artifact
  rejection, and start/end/scope determination from signals.
- :mod:`repro.ioda.dataworks` — the DataWorks second-pass review that
  re-derives visibility flags from the signals and fixes disagreements.
"""

from repro.ioda.platform import IODAPlatform, PlatformConfig
from repro.ioda.detectors import DETECTORS, detector_for
from repro.ioda.records import ConfirmationStatus, OutageRecord
from repro.ioda.dashboard import Dashboard, ioda_url
from repro.ioda.curation import CurationConfig, CurationPipeline
from repro.ioda.dataworks import DataWorksReviewer, ReviewOutcome

__all__ = [
    "DataWorksReviewer",
    "ReviewOutcome",
    "IODAPlatform",
    "PlatformConfig",
    "DETECTORS",
    "detector_for",
    "ConfirmationStatus",
    "OutageRecord",
    "Dashboard",
    "ioda_url",
    "CurationConfig",
    "CurationPipeline",
]
