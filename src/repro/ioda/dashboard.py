"""The IODA outage dashboard: alert listing and URL helpers.

The paper's curators start from the dashboard's recent-alert list (§3.1.2);
:class:`Dashboard` reproduces that view over a platform and a set of
observation windows, listing alert episodes per entity and signal.

Each listing pulls whole series through the incremental detection core
(:func:`repro.stream.detect.stream_episodes`): the batch view is the
streaming engine fed one maximal chunk, so dashboards, batch curation,
and live streams all share one detector implementation, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.ioda.detectors import detector_for
from repro.ioda.platform import IODAPlatform
from repro.signals.alerts import AlertEpisode
from repro.signals.entities import Entity, EntityScope
from repro.signals.kinds import SignalKind
from repro.stream.detect import stream_episodes
from repro.timeutils.timestamps import TimeRange

__all__ = ["Dashboard", "DashboardEntry", "ioda_url"]

_BASE_URL = "https://ioda.example.org/dashboard"


def ioda_url(entity: Entity, span: TimeRange) -> str:
    """The dashboard URL a curator would record for an outage."""
    scope_path = {
        EntityScope.COUNTRY: "country",
        EntityScope.REGION: "region",
        EntityScope.AS: "asn",
    }[entity.scope]
    return (f"{_BASE_URL}/{scope_path}/{entity.identifier}"
            f"?from={span.start}&until={span.end}")


@dataclass(frozen=True)
class DashboardEntry:
    """One row of the recent-alerts view."""

    entity: Entity
    signal: SignalKind
    episode: AlertEpisode

    @property
    def url(self) -> str:
        return ioda_url(self.entity, self.episode.span)


class Dashboard:
    """Alert listing over a platform."""

    def __init__(self, platform: IODAPlatform):
        self._platform = platform

    def entries(self, entity: Entity,
                window: TimeRange) -> List[DashboardEntry]:
        """All alert episodes for one entity within a window."""
        listed: List[DashboardEntry] = []
        for kind in SignalKind:
            series = self._platform.signal(entity, kind, window)
            for episode in stream_episodes(series, detector_for(kind).config):
                listed.append(DashboardEntry(
                    entity=entity, signal=kind, episode=episode))
        listed.sort(key=lambda e: e.episode.span.start)
        return listed

    def episodes_by_signal(
            self, entity: Entity, window: TimeRange
    ) -> Dict[SignalKind, List[AlertEpisode]]:
        """Alert episodes grouped per signal (curation's working view)."""
        grouped: Dict[SignalKind, List[AlertEpisode]] = {}
        for kind in SignalKind:
            series = self._platform.signal(entity, kind, window)
            grouped[kind] = stream_episodes(series, detector_for(kind).config)
        return grouped
