"""Memoized signal storage for the IODA platform.

:class:`IODAPlatform.signal` is deterministic per
``(entity, kind, window)`` — the docstring has always promised that
repeated queries observe consistent data — yet every query regenerated
the series from scratch.  The curation control-group check in
particular re-pulls the same control countries' signals for
overlapping candidates, and dashboard-style consumers replay identical
windows constantly.  :class:`SignalCache` pays that generation cost
once: a bounded LRU over fully generated :class:`TimeSeries` keyed by
the query coordinates.

Two properties matter more than raw speed:

- **Mutation safety.**  ``TimeSeries.values`` is a mutable ndarray
  view, and the platform's artifact step writes through it in place
  (``series.values[:] = np.round(...)``).  The cache therefore never
  shares an array with a caller: entries are stored as private copies
  and every lookup returns a fresh copy, so no caller can corrupt a
  later query's bytes.
- **Single-flight generation.**  Under the thread backend the platform
  (and this cache) are shared across shards.  Concurrent queries for
  the *same* key collapse into one generation — the first caller
  computes outside the lock while the rest wait on an event — and
  queries for *different* keys generate in parallel.  If the owning
  caller fails, a waiter takes over rather than caching the failure.

Hits, misses, and evictions are counted both locally (cheap
introspection without an observability session) and into the active
:mod:`repro.obs` metrics registry as ``platform.signal.cache.*``,
which is how they surface in ``ExecStats`` / ``--stats --json``.

The cache is *bypassed* while a fault plan is active — that check
lives in the platform, mirroring the shard-cache rule: a chaos run
must never be served a payload generated outside its fault scope, nor
plant one for a later clean run.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Hashable, Tuple

from repro.errors import ConfigurationError
from repro.obs.runtime import current
from repro.signals.series import TimeSeries

__all__ = ["DEFAULT_SIGNAL_CACHE_SIZE", "SignalCache"]

#: Default LRU bound.  Sized from the canonical-seed access trace: the
#: exact-repeat queries of a full curation run recur either within a
#: few hundred distinct keys (the control-group pattern) or several
#: thousand keys apart (cross-candidate coincidences no reasonable
#: bound retains), so growing past this buys nothing until absurd
#: sizes while each entry can hold a multi-day window (~10 KB).
DEFAULT_SIGNAL_CACHE_SIZE = 512

#: Query coordinates: (iso2, region_name | None, kind, start, end).
CacheKey = Tuple[Hashable, ...]


class _InFlight:
    """One in-progress generation other threads can wait on."""

    __slots__ = ("event",)

    def __init__(self) -> None:
        self.event = threading.Event()


class SignalCache:
    """A bounded, thread-safe LRU of generated :class:`TimeSeries`."""

    def __init__(self, maxsize: int = DEFAULT_SIGNAL_CACHE_SIZE):
        if maxsize < 1:
            raise ConfigurationError(
                f"signal cache size must be >= 1: {maxsize} "
                "(disable the cache instead of bounding it at zero)")
        self._maxsize = maxsize
        self._lock = threading.Lock()
        self._store: "OrderedDict[CacheKey, TimeSeries]" = OrderedDict()
        self._pending: Dict[CacheKey, _InFlight] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- introspection ----------------------------------------------------------

    @property
    def maxsize(self) -> int:
        return self._maxsize

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def evictions(self) -> int:
        return self._evictions

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    # -- the one operation ------------------------------------------------------

    def get_or_create(self, key: CacheKey,
                      factory: Callable[[], TimeSeries]) -> TimeSeries:
        """The series for ``key``, generating via ``factory`` on a miss.

        Always returns a series whose value array is private to the
        caller.  Concurrent callers with the same key share one
        ``factory`` invocation; a failed invocation propagates to its
        owner while waiters retry (taking ownership themselves), so an
        exception is never cached.
        """
        while True:
            with self._lock:
                cached = self._store.get(key)
                if cached is not None:
                    self._store.move_to_end(key)
                    self._hits += 1
                    current().metrics.counter(
                        "platform.signal.cache.hits").inc()
                    return _copy(cached)
                pending = self._pending.get(key)
                if pending is None:
                    pending = self._pending[key] = _InFlight()
                    owner = True
                else:
                    owner = False
            if not owner:
                # Another thread is generating this key; when it
                # finishes we loop back and (normally) hit.  If it
                # failed, the retry finds no pending entry and this
                # thread becomes the owner.
                pending.event.wait()
                continue
            try:
                series = factory()
            except BaseException:
                with self._lock:
                    self._pending.pop(key, None)
                pending.event.set()
                raise
            with self._lock:
                self._store[key] = _copy(series)
                self._store.move_to_end(key)
                self._misses += 1
                metrics = current().metrics
                metrics.counter("platform.signal.cache.misses").inc()
                while len(self._store) > self._maxsize:
                    self._store.popitem(last=False)
                    self._evictions += 1
                    metrics.counter(
                        "platform.signal.cache.evictions").inc()
                self._pending.pop(key, None)
            pending.event.set()
            # The freshly generated series is already private to this
            # caller — the cache stored its own copy above.
            return series


def _copy(series: TimeSeries) -> TimeSeries:
    return TimeSeries(series.start, series.width, series.values.copy())
