"""The curated outage record (Table 1 of the paper).

Every field of the paper's record schema is represented: start and end
times, country, per-signal automated-alert flags, per-signal
visible-by-human flags, scope, the IODA dashboard URL, the cause, the
confirmation status, and free-form additional information.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.errors import CurationError
from repro.signals.entities import EntityScope
from repro.signals.kinds import SignalKind
from repro.timeutils.timestamps import TimeRange, format_utc

__all__ = ["ConfirmationStatus", "OutageRecord"]


class ConfirmationStatus(enum.Enum):
    """How solid the external corroboration of the record is."""

    CONFIRMED = "Confirmed"
    LIKELY = "Likely"
    UNCONFIRMED = "Unconfirmed"


@dataclass(frozen=True)
class OutageRecord:
    """One row of the manually curated IODA outage dataset.

    ``auto_alerts`` and ``human_visible`` map each signal to whether IODA
    generated an automated alert and whether a reviewer could see a
    significant drop, respectively (the six TRUE/FALSE columns of
    Table 1).  ``cause`` is free text distilled from reporting
    ("Government-ordered", "Exam-related", "Cable cut", ...) or ``None``
    when no explanation was found.
    """

    record_id: int
    country_iso2: str
    span: TimeRange
    scope: EntityScope
    auto_alerts: Mapping[SignalKind, bool]
    human_visible: Mapping[SignalKind, bool]
    ioda_url: str
    cause: Optional[str] = None
    confirmation: ConfirmationStatus = ConfirmationStatus.UNCONFIRMED
    more_info: Tuple[str, ...] = ()
    region_names: Tuple[str, ...] = ()
    asns: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        missing = [kind for kind in SignalKind
                   if kind not in self.auto_alerts
                   or kind not in self.human_visible]
        if missing:
            raise CurationError(
                f"record {self.record_id} missing signal flags: {missing}")
        if not any(self.human_visible.values()):
            raise CurationError(
                f"record {self.record_id} has no humanly visible signal; "
                "it should not have been recorded")

    @property
    def lineage_key(self) -> Tuple[str, int]:
        """``(country, record id)`` — how provenance capsules address a
        record while its id is still local to the country (before
        :func:`repro.ioda.curation.finalize_records` renumbers it)."""
        return (self.country_iso2, self.record_id)

    @property
    def start(self) -> int:
        return self.span.start

    @property
    def end(self) -> int:
        return self.span.end

    @property
    def duration_hours(self) -> float:
        return self.span.duration / 3600.0

    @property
    def n_signals_visible(self) -> int:
        """How many of the three signals showed the outage to a reviewer."""
        return sum(1 for visible in self.human_visible.values() if visible)

    @property
    def visible_in_all_signals(self) -> bool:
        """Whether all three signals dropped (the "All" bar of Fig 16)."""
        return self.n_signals_visible == len(SignalKind)

    def is_cause_shutdown(self) -> bool:
        """Whether the recorded cause labels this a shutdown (§4)."""
        if self.cause is None:
            return False
        lowered = self.cause.lower()
        return "government" in lowered or "exam" in lowered

    def as_row(self) -> Mapping[str, str]:
        """Render the record as the flat tabular row of Table 1."""
        row = {
            "Start time": format_utc(self.span.start),
            "End time": format_utc(self.span.end),
            "Country": self.country_iso2,
            "Scope": self.scope.value,
            "IODA URL": self.ioda_url,
            "Cause": self.cause or "",
            "Confirmation Status": self.confirmation.value,
            "More Info": "; ".join(self.more_info),
        }
        for kind in SignalKind:
            row[f"IODA {kind.label} Auto Alert"] = (
                "TRUE" if self.auto_alerts[kind] else "FALSE")
            row[f"IODA {kind.label} visible by human"] = (
                "TRUE" if self.human_visible[kind] else "FALSE")
        return row
