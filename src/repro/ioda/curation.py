"""The outage curation pipeline (§3.1.2).

The curators' decision procedure, implemented over simulated signals:

1. **Investigation windows.**  Investigations are triggered by dashboard
   alerts, reports from partner organizations, or news coverage.  We open a
   window around every period in which *something* happened (real
   disruptions, measurement artifacts, plus configurable random background
   checks).  The trigger only decides where to look; every recorded detail
   — whether an outage is recorded at all, its start/end, scope, and
   per-signal flags — is derived exclusively from the signals.

2. **Candidate construction.**  Alert episodes from the three signals are
   clustered by temporal overlap into candidates; a *human-visible* drop
   requires a sustained (≥2 bins) episode of signal-specific depth, a
   stricter bar than the automated alerts.

3. **Recording rule.**  A candidate is recorded iff (i) at least two
   signals show temporally overlapping human-visible drops, or (ii) one
   signal shows a drop and an external source (Kentik / Cloudflare Radar
   style) corroborates the event.

4. **Control-group check.**  Before recording, the same signals are pulled
   for unrelated control countries; if a similar drop appears across
   disparate controls the candidate is rejected as an IODA infrastructure
   artifact.

5. **Start/end.**  The start is the time the first (visible) signal drops;
   the end is the time the last signal recovers — exactly the paper's
   field-population rule.

6. **Scope descent.**  If nothing is visible at the country level, the
   curator inspects sub-national region views and records a region-scope
   outage if visible there (AS descent available behind a flag).

7. **Cause attribution.**  A news oracle models the curators' reading of
   media/advocacy reporting: causes of real events are discovered with
   configurable probability; discovered intentional causes are recorded as
   "Government-ordered" / "Exam-related".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, \
    Sequence, Tuple

import numpy as np

from repro.ioda.calendar import ObservationCalendar
from repro.ioda.dashboard import Dashboard, ioda_url
from repro.ioda.platform import IODAPlatform
from repro.ioda.records import ConfirmationStatus, OutageRecord
from repro.obs.provenance import DrawCursor
from repro.obs.runtime import current
from repro.rng import substream
from repro.signals.alerts import AlertEpisode
from repro.signals.entities import Entity, EntityScope
from repro.signals.kinds import SignalKind
from repro.timeutils.timestamps import DAY, HOUR, TimeRange, bin_floor
from repro.world.disruptions import Cause
from repro.world.scenario import WorldScenario

__all__ = ["CandidateOutcome", "CurationConfig", "CurationPipeline",
           "WindowAdjudication", "finalize_records"]


def finalize_records(
        per_country: Iterable[Sequence[OutageRecord]]) -> List[OutageRecord]:
    """Merge per-country record lists into the canonical curated dataset.

    Countries are curated independently (each with its own RNG substream
    and record ids local to the country), so the same per-country lists
    come out of a serial run and a sharded parallel run.  This step makes
    the global dataset: record ids are reassigned sequentially in
    country-iteration order, then the list is sorted by (start, country)
    exactly as :meth:`CurationPipeline.run` always has.  Feeding the
    per-country lists in the same country order therefore yields
    byte-identical output regardless of how the work was scheduled.

    When a provenance recorder is active, the renumbering is also
    journaled as a ``provenance.manifest`` event mapping each global
    record id back to the capsule minted when the record was
    adjudicated (capsules are keyed by the country-local id, the only
    id that exists at decision time).
    """
    recorder = current().provenance
    ids = itertools.count(1)
    records: List[OutageRecord] = []
    mapping: List[Tuple[int, str, int]] = []
    for country_records in per_country:
        for record in country_records:
            global_id = next(ids)
            if recorder is not None:
                mapping.append((global_id,) + record.lineage_key)
            records.append(replace(record, record_id=global_id))
    records.sort(key=lambda r: (r.span.start, r.country_iso2))
    current().metrics.counter("curation.records_finalized") \
        .inc(len(records))
    if recorder is not None:
        recorder.manifest(mapping)
    return records


@dataclass(frozen=True, kw_only=True)
class CurationConfig:
    """Curation thresholds and window shaping.

    Keyword-only: the constructor surface is part of the stable
    :mod:`repro.api` contract, so fields may be added without breaking
    positional callers.
    """

    #: History lead ahead of a trigger so detectors have baselines.
    window_lead: int = int(3.5 * DAY)
    #: Slack after a trigger.
    window_tail: int = 12 * HOUR
    #: Observation period (events outside are not investigated).
    min_visible_bins: int = 2
    #: Relative drop a reviewer needs to call a signal visibly down.
    human_depth: Mapping[SignalKind, float] = field(
        default_factory=lambda: {
            SignalKind.BGP: 0.12,
            SignalKind.ACTIVE_PROBING: 0.15,
            SignalKind.TELESCOPE: 0.50,
        })
    #: Max gap between per-signal episodes merged into one candidate.
    cluster_gap: int = 90 * 60
    #: How far beyond the anchor episode overlapping drops may extend.
    anchor_margin: int = 15 * 60
    #: Number of control countries consulted per candidate.
    n_controls: int = 4
    #: Fraction of controls that must show a similar drop to reject.
    control_reject_fraction: float = 0.5
    #: Probability the news oracle uncovers the cause of a shutdown.
    p_discover_shutdown_cause: float = 0.85
    #: Probability the news oracle uncovers the cause of an outage.
    p_discover_outage_cause: float = 0.55
    #: Probability an external tracker corroborates a real, single-signal
    #: event (scaled by severity).
    p_external_corroboration: float = 0.6
    #: Random background investigation windows per country (whole period).
    background_windows_per_country: float = 0.0
    #: Whether to descend to AS views when country and region show nothing.
    descend_to_asns: bool = False


_CAUSE_TEXT: Mapping[Cause, str] = {
    Cause.GOVERNMENT_ORDERED: "Government-ordered",
    Cause.EXAM: "Exam-related",
    Cause.CABLE_CUT: "Cable cut",
    Cause.POWER_OUTAGE: "Power outage",
    Cause.NATURAL_DISASTER: "Natural disaster",
    Cause.MISCONFIGURATION: "Routing misconfiguration",
    Cause.DDOS: "DDoS attack",
}


@dataclass(frozen=True)
class _Candidate:
    """A cross-signal cluster of alert episodes."""

    span: TimeRange
    episodes: Mapping[SignalKind, Tuple[AlertEpisode, ...]]

    def signals_present(self) -> Tuple[SignalKind, ...]:
        return tuple(k for k, eps in self.episodes.items() if eps)


@dataclass(frozen=True)
class CandidateOutcome:
    """How one candidate (or descent finding) was adjudicated.

    ``outcome`` is ``"recorded"`` (with the curated record),
    ``"dismissed"`` (investigated, not recorded), or ``"unobserved"``
    (fell in an observation-calendar gap, §3.1.2).  ``signals`` are the
    human-visible signal kinds at adjudication time — the set the
    streaming engine reports on lifecycle ``close`` events.
    ``capsule_id`` is the provenance capsule minted for the decision
    when a recorder was active (``None`` otherwise); it is journal-only
    metadata and never affects the record itself.
    """

    span: TimeRange
    signals: Tuple[SignalKind, ...]
    outcome: str
    record: Optional[OutageRecord] = None
    capsule_id: Optional[str] = None


@dataclass(frozen=True)
class WindowAdjudication:
    """The full result of adjudicating one investigation window.

    ``records`` is exactly what the batch path appends for the window
    (country-level records, then any scope-descent records), in order.
    ``outcomes`` adds the per-candidate verdicts the streaming engine
    turns into lifecycle events; ``descended`` says whether the curator
    fell through to sub-national views.  Frozen and picklable, so
    process-backend stream workers ship it home unchanged.
    """

    records: Tuple[OutageRecord, ...]
    outcomes: Tuple[CandidateOutcome, ...]
    descended: bool


class CurationPipeline:
    """Builds the curated outage list from platform signals."""

    def __init__(self, platform: IODAPlatform,
                 config: CurationConfig | None = None,
                 calendar: ObservationCalendar | None = None):
        self._platform = platform
        self._scenario: WorldScenario = platform.scenario
        self._config = config or CurationConfig()
        self._calendar = calendar or ObservationCalendar()
        self._dashboard = Dashboard(platform)

    @property
    def config(self) -> CurationConfig:
        return self._config

    @property
    def platform(self) -> IODAPlatform:
        return self._platform

    # -- top level ---------------------------------------------------------------

    def run(self, period: TimeRange) -> List[OutageRecord]:
        """Curate all outages observable within ``period``.

        Countries are processed independently — each country's random
        draws come from its own ``("curation", iso2)`` substream — so the
        result is identical whether the loop below runs here or the
        countries are fanned out across shards by :mod:`repro.exec`.
        """
        windows = self.country_windows(period)
        return finalize_records(
            self.investigate_country(iso2, windows[iso2], period)
            for iso2 in sorted(windows))

    def investigate_country(self, iso2: str,
                            windows: Sequence[TimeRange],
                            period: TimeRange) -> List[OutageRecord]:
        """Curate one country's investigation windows.

        Record ids are local to the country (1, 2, ...); callers that
        assemble a multi-country dataset renumber them via
        :func:`finalize_records`.
        """
        obs = current()
        with obs.span("curate.country", country=iso2,
                      windows=len(windows)):
            rng = substream(self._scenario.seed, "curation", iso2)
            record_ids = itertools.count(1)
            # One RNG-draw cursor per country so capsules can cite the
            # exact substream coordinate of each probabilistic verdict;
            # only consumed when a provenance recorder is active.
            draws = DrawCursor()
            records: List[OutageRecord] = []
            for window in windows:
                records.extend(
                    self._investigate(iso2, window, period, rng,
                                      record_ids, draws))
        metrics = obs.metrics
        metrics.counter("curation.windows_investigated").inc(len(windows))
        metrics.counter("curation.records_curated", country=iso2) \
            .inc(len(records))
        return records

    def investigate(self, iso2: str, window: TimeRange,
                    period: TimeRange) -> List[OutageRecord]:
        """Investigate one country window; return any recorded outages."""
        return self.investigate_country(iso2, [window], period)

    def _investigate(self, iso2: str, window: TimeRange, period: TimeRange,
                     rng: np.random.Generator,
                     record_ids: Iterator[int],
                     draws: Optional[DrawCursor] = None
                     ) -> List[OutageRecord]:
        entity = Entity.country(iso2)
        episodes = self._dashboard.episodes_by_signal(entity, window)
        return list(self.adjudicate_window(
            iso2, window, period, episodes, rng, record_ids,
            draws=draws).records)

    def adjudicate_window(self, iso2: str, window: TimeRange,
                          period: TimeRange,
                          episodes: Dict[SignalKind, List[AlertEpisode]],
                          rng: np.random.Generator,
                          record_ids: Iterator[int],
                          draws: Optional[DrawCursor] = None
                          ) -> WindowAdjudication:
        """Adjudicate one window given its per-signal alert episodes.

        This is the batch `_investigate` loop with the dashboard pull
        factored out — the streaming engine accumulates the episodes
        incrementally and calls here once the watermark closes the
        window, consuming ``rng`` draws and record ids in exactly the
        order the batch path does, so the records come out identical.

        When the active session has a provenance recorder, every
        candidate's decision chain is sealed into a lineage capsule and
        the outcome carries its capsule id; the capsules are journal-only
        and the records are byte-identical either way.  ``draws`` is the
        country's RNG-draw cursor (threaded across windows so capsule
        coordinates are chunking-independent); it is only consumed when
        a recorder is active.
        """
        entity = Entity.country(iso2)
        obs = current()
        recorder = obs.provenance
        if recorder is None:
            draws = None
        candidates = self._cluster(episodes)
        obs.metrics.counter("curation.candidates_clustered") \
            .inc(len(candidates))
        records: List[OutageRecord] = []
        outcomes: List[CandidateOutcome] = []
        found_visible = False
        for candidate in candidates:
            signals = tuple(self.visible_signals_of(candidate))
            if not self._calendar.observes(candidate.span.start,
                                           self._scenario.seed):
                # Nobody was investigating at the time (§3.1.2 gaps);
                # mark it handled so the descent does not re-find it.
                found_visible = True
                capsule_id = None
                if recorder is not None:
                    capsule_id = recorder.emit(self._capsule_payload(
                        iso2, entity, window, candidate, "unobserved",
                        "calendar_gap", None))
                obs.metrics.counter("curation.decision.unobserved",
                                    reason="calendar_gap").inc()
                outcomes.append(CandidateOutcome(
                    candidate.span, signals, "unobserved",
                    capsule_id=capsule_id))
                continue
            trail: Optional[Dict] = {} if recorder is not None else None
            record, reason = self._adjudicate(
                iso2, entity, candidate, period, rng, record_ids,
                trail=trail, draws=draws)
            outcome = "recorded" if record is not None else "dismissed"
            capsule_id = None
            if recorder is not None:
                capsule_id = recorder.emit(self._capsule_payload(
                    iso2, entity, window, candidate, outcome, reason,
                    trail))
            obs.metrics.counter(f"curation.decision.{outcome}",
                                reason=reason).inc()
            if record is not None:
                found_visible = True
                records.append(record)
                outcomes.append(CandidateOutcome(
                    candidate.span, signals, "recorded", record,
                    capsule_id=capsule_id))
            else:
                outcomes.append(CandidateOutcome(
                    candidate.span, signals, "dismissed",
                    capsule_id=capsule_id))
        descended = not found_visible
        if descended:
            for record, capsule_id in self._descend(iso2, window, period,
                                                    rng, record_ids,
                                                    draws=draws):
                records.append(record)
                outcomes.append(CandidateOutcome(
                    record.span,
                    tuple(k for k in SignalKind if record.human_visible[k]),
                    "recorded", record, capsule_id=capsule_id))
        return WindowAdjudication(
            records=tuple(records), outcomes=tuple(outcomes),
            descended=descended)

    def _capsule_payload(self, iso2: str, entity: Entity, window: TimeRange,
                         candidate: _Candidate, outcome: str, reason: str,
                         trail: Optional[Dict]) -> Dict:
        """Assemble the content-addressed lineage-capsule payload.

        Carries only decision evidence — no timestamps or run-local
        state — so identical decisions hash identically across runs,
        backends, and stream chunkings.
        """
        payload: Dict = {
            "stage": "adjudicate",
            "country_iso2": iso2,
            "entity": entity.identifier,
            "window_start": window.start,
            "span": {"start": candidate.span.start,
                     "end": candidate.span.end},
            "signals": sorted(k.value for k in candidate.signals_present()),
            "outcome": outcome,
            "reason": reason,
            "alert": {
                kind.value: {
                    "episodes": len(eps),
                    "max_depth": round(max(e.depth for e in eps), 9),
                    "span": [min(e.span.start for e in eps),
                             max(e.span.end for e in eps)],
                }
                for kind, eps in candidate.episodes.items() if eps},
            "rng": {"substream": ["curation", iso2]},
        }
        if trail:
            payload.update(trail)
        return payload

    def cluster_episodes(
            self, episodes: Dict[SignalKind, List[AlertEpisode]]
    ) -> List[_Candidate]:
        """Cluster per-signal episodes into candidates (pure, no RNG).

        The streaming engine calls this on every watermark advance to
        refresh its provisional open-event view; unlike
        :meth:`adjudicate_window` it does not touch metrics, the RNG, or
        record ids, so provisional views never perturb the final run.
        """
        return self._cluster(episodes)

    def visible_signals_of(
            self, candidate: _Candidate) -> Dict[SignalKind, List[AlertEpisode]]:
        """The anchored human-visible episodes of a candidate (pure)."""
        return self._anchor_overlapping(self._visible_signals(candidate))

    def observes(self, timestamp: int) -> bool:
        """Whether the observation calendar covers ``timestamp`` (pure)."""
        return self._calendar.observes(timestamp, self._scenario.seed)

    # -- investigation windows -----------------------------------------------------

    def country_windows(
            self, period: TimeRange) -> Dict[str, List[TimeRange]]:
        """Merged investigation windows per country.

        This is the unit of work the sharded executor distributes.  The
        windows depend only on the scenario and config, so any caller
        computes the same map — but the executor computes it exactly
        once per run (it needs the full map for shard weighting) and
        hands each shard just its own countries' slice; shards never
        recompute the world-wide map.
        """
        return {iso2: list(windows)
                for iso2, windows in self._grouped_windows(period).items()}

    def _investigation_windows(
            self, period: TimeRange) -> Iterable[Tuple[str, TimeRange]]:
        """(country, window) pairs to investigate, merged per country."""
        for iso2, windows in sorted(
                self._grouped_windows(period).items()):
            for window in windows:
                yield iso2, window

    def _grouped_windows(
            self, period: TimeRange) -> Dict[str, List[TimeRange]]:
        triggers: Dict[str, List[TimeRange]] = {}
        for disruption in self._scenario.all_disruptions():
            if not period.contains(disruption.span.start):
                continue
            triggers.setdefault(disruption.country_iso2, []).append(
                disruption.span)
        artifact_sample = self._artifact_sample_countries()
        for artifact in self._scenario.artifacts:
            if not artifact.span.overlaps(period):
                continue
            for iso2 in artifact_sample:
                triggers.setdefault(iso2, []).append(artifact.span)
        for iso2, spans in self._background_windows(period).items():
            triggers.setdefault(iso2, []).extend(spans)

        return {iso2: self._merge_windows(triggers[iso2], period)
                for iso2 in sorted(triggers)}

    def _merge_windows(self, spans: Sequence[TimeRange],
                       period: TimeRange) -> List[TimeRange]:
        expanded = sorted(
            (TimeRange(max(period.start - self._config.window_lead,
                           span.start - self._config.window_lead),
                       min(period.end + DAY,
                           span.end + self._config.window_tail))
             for span in spans),
            key=lambda s: s.start)
        merged: List[TimeRange] = []
        for span in expanded:
            if merged and span.start <= merged[-1].end:
                merged[-1] = TimeRange(
                    merged[-1].start, max(merged[-1].end, span.end))
            else:
                merged.append(span)
        return merged

    def _artifact_sample_countries(self) -> List[str]:
        """A spread of countries whose dashboards would surface a global
        artifact (one per region, deterministic)."""
        seen_regions = {}
        for country in self._scenario.registry:
            seen_regions.setdefault(country.region, country.iso2)
        return sorted(seen_regions.values())

    def _background_windows(
            self, period: TimeRange) -> Dict[str, List[TimeRange]]:
        rate = self._config.background_windows_per_country
        windows: Dict[str, List[TimeRange]] = {}
        if rate <= 0:
            return windows
        for country in self._scenario.registry:
            rng = substream(self._scenario.seed, "background", country.iso2)
            for _ in range(int(rng.poisson(rate))):
                start = int(period.start + rng.integers(
                    0, max(1, period.duration - DAY)))
                start = bin_floor(start, 300)
                windows.setdefault(country.iso2, []).append(
                    TimeRange(start, start + 6 * HOUR))
        return windows

    # -- clustering ------------------------------------------------------------------

    def _cluster(self, episodes: Dict[SignalKind, List[AlertEpisode]]
                 ) -> List[_Candidate]:
        """Cluster per-signal episodes into cross-signal candidates."""
        tagged: List[Tuple[SignalKind, AlertEpisode]] = [
            (kind, episode)
            for kind, kind_episodes in episodes.items()
            for episode in kind_episodes]
        tagged.sort(key=lambda item: item[1].span.start)
        candidates: List[_Candidate] = []
        cluster: List[Tuple[SignalKind, AlertEpisode]] = []
        cluster_end = None
        for kind, episode in tagged:
            if (cluster_end is not None
                    and episode.span.start
                    <= cluster_end + self._config.cluster_gap):
                cluster.append((kind, episode))
                cluster_end = max(cluster_end, episode.span.end)
            else:
                if cluster:
                    candidates.append(self._candidate(cluster))
                cluster = [(kind, episode)]
                cluster_end = episode.span.end
        if cluster:
            candidates.append(self._candidate(cluster))
        return candidates

    @staticmethod
    def _candidate(cluster: List[Tuple[SignalKind, AlertEpisode]]
                   ) -> _Candidate:
        by_signal: Dict[SignalKind, List[AlertEpisode]] = {
            kind: [] for kind in SignalKind}
        for kind, episode in cluster:
            by_signal[kind].append(episode)
        span = TimeRange(
            min(e.span.start for _, e in cluster),
            max(e.span.end for _, e in cluster))
        return _Candidate(
            span=span,
            episodes={k: tuple(v) for k, v in by_signal.items()})

    # -- adjudication -------------------------------------------------------------------

    def _adjudicate(self, iso2: str, entity: Entity, candidate: _Candidate,
                    period: TimeRange, rng: np.random.Generator,
                    record_ids: Iterator[int],
                    trail: Optional[Dict] = None,
                    draws: Optional[DrawCursor] = None
                    ) -> Tuple[Optional[OutageRecord], str]:
        """Adjudicate one candidate; return ``(record, reason)``.

        ``reason`` names the decision point that settled the candidate
        (``low_visibility``, ``no_corroboration``, ``control_artifact``,
        ... for dismissals; ``multi_signal``/``corroborated`` for
        records).  ``trail``, when provided, accumulates the evidence
        each decision point saw — the body of the provenance capsule.
        The RNG is consumed identically whether or not a trail is
        collected.
        """
        if not period.contains(candidate.span.start):
            return None, "outside_period"
        if not self._calendar.observes(candidate.span.start,
                                       self._scenario.seed):
            return None, "calendar_gap"
        visible = self._anchor_overlapping(self._visible_signals(candidate))
        if trail is not None:
            trail["visibility"] = {
                "visible": sorted(k.value for k in visible),
                "required": 2}
        if not visible:
            return None, "low_visibility"
        corroborated = False
        if len(visible) < 2:
            corroborated = self._externally_corroborated(
                iso2, candidate, rng, trail=trail, draws=draws)
            if not corroborated:
                return None, "no_corroboration"
        elif trail is not None:
            trail["corroboration"] = {"checked": False}
        if self._is_infrastructure_artifact(iso2, candidate, visible,
                                            trail=trail):
            return None, "control_artifact"
        record = self._record(iso2, entity, candidate, visible, corroborated,
                              rng, record_ids, trail=trail, draws=draws)
        return record, ("corroborated" if corroborated else "multi_signal")

    def _anchor_overlapping(
            self, visible: Dict[SignalKind, List[AlertEpisode]]
    ) -> Dict[SignalKind, List[AlertEpisode]]:
        """Keep only episodes that overlap the deepest drop.

        The paper's recording rule demands drops "overlapping in time";
        anchoring on the deepest episode discards shallow flickers that
        happen to share a candidate cluster (they would otherwise pollute
        the recorded start/end and let two unrelated single-signal blips
        masquerade as two-signal corroboration).
        """
        all_episodes = [e for eps in visible.values() for e in eps]
        if not all_episodes:
            return {}
        anchor = max(all_episodes, key=lambda e: (e.depth, e.n_bins))
        margin = self._config.anchor_margin
        window = anchor.span.expand(before=margin, after=margin)
        anchored: Dict[SignalKind, List[AlertEpisode]] = {}
        for kind, episodes in visible.items():
            keep = [e for e in episodes if e.span.overlaps(window)]
            if keep:
                anchored[kind] = keep
        return anchored

    def _visible_signals(
            self, candidate: _Candidate
    ) -> Dict[SignalKind, List[AlertEpisode]]:
        """Per signal, the episodes a human reviewer would call visibly
        down (sustained and deep enough).  Signals with none are absent."""
        visible: Dict[SignalKind, List[AlertEpisode]] = {}
        for kind in SignalKind:
            qualifying = [
                episode for episode in candidate.episodes.get(kind, ())
                if episode.n_bins >= self._config.min_visible_bins
                and episode.depth >= self._config.human_depth[kind]]
            if qualifying:
                visible[kind] = qualifying
        return visible

    def _externally_corroborated(self, iso2: str, candidate: _Candidate,
                                 rng: np.random.Generator,
                                 trail: Optional[Dict] = None,
                                 draws: Optional[DrawCursor] = None) -> bool:
        """Whether Kentik/Cloudflare-Radar style trackers confirm.

        External trackers observed the real world, so corroboration
        probability is a function of what actually happened: severe, long
        events get noticed; noise does not.  A draw is consumed only
        when a real event overlaps — the trail records its substream
        coordinate so the verdict can be replayed.
        """
        overlapping = [
            d for d in self._scenario.disruptions_in(
                candidate.span.expand(before=2 * HOUR, after=2 * HOUR),
                country_iso2=iso2)
        ]
        if not overlapping:
            overlapping = [
                d for d in self._scenario.country_disruptions(iso2)
                if d.span.overlaps(candidate.span)]
        if not overlapping:
            if trail is not None:
                trail["corroboration"] = {
                    "checked": True, "overlapping": 0,
                    "corroborated": False}
            return False
        strongest = max(overlapping, key=lambda d: d.severity)
        p = (self._config.p_external_corroboration
             * strongest.severity
             * min(1.0, strongest.span.duration / (2 * HOUR)))
        index = draws.take() if draws is not None else None
        corroborated = bool(rng.random() < p)
        if trail is not None:
            trail["corroboration"] = {
                "checked": True,
                "overlapping": len(overlapping),
                "p": round(p, 9),
                "draw": {"substream": ["curation", iso2], "index": index},
                "corroborated": corroborated}
        return corroborated

    def _is_infrastructure_artifact(self, iso2: str, candidate: _Candidate,
                                    visible: Iterable[SignalKind],
                                    trail: Optional[Dict] = None) -> bool:
        """Control-group check: similar simultaneous drop elsewhere?"""
        controls = self._control_countries(iso2)
        if not controls:
            if trail is not None:
                trail["control"] = {
                    "controls": [], "n_similar": 0,
                    "reject_fraction":
                        self._config.control_reject_fraction,
                    "artifact": False}
            return False
        check_window = candidate.span.expand(before=6 * HOUR, after=2 * HOUR)
        n_similar = 0
        for control in controls:
            if self._control_shows_drop(control, check_window, visible):
                n_similar += 1
        artifact = (n_similar / len(controls)
                    >= self._config.control_reject_fraction)
        if trail is not None:
            trail["control"] = {
                "controls": list(controls),
                "n_similar": n_similar,
                "reject_fraction": self._config.control_reject_fraction,
                "artifact": artifact}
        return artifact

    def _control_countries(self, iso2: str) -> List[str]:
        """Deterministic cross-region control group excluding ``iso2``."""
        home_region = self._scenario.registry.get(iso2).region
        picks: List[str] = []
        for country in self._scenario.registry:
            if country.iso2 == iso2 or country.region == home_region:
                continue
            if all(self._scenario.registry.get(p).region != country.region
                   for p in picks):
                picks.append(country.iso2)
            if len(picks) >= self._config.n_controls:
                break
        return picks

    def _control_shows_drop(self, iso2: str, window: TimeRange,
                            signals: Iterable[SignalKind]) -> bool:
        """Whether a control country mirrors the candidate's drop.

        To count as "the same drop elsewhere" the control must dip in
        *every* signal the candidate is visible in — an infrastructure
        artifact depresses the same data source for everyone, whereas a
        control's unrelated noise rarely lines up across signals.
        """
        for kind in signals:
            series = self._platform.signal(
                Entity.country(iso2), kind, window)
            _, values = series.arrays()
            if len(values) < 4:
                return False
            baseline = float(np.median(values))
            if baseline <= 0:
                return False
            # A reviewer compares *sustained* levels, not single noisy
            # bins: smooth over adjacent bins before taking the low point.
            smoothed = np.convolve(values, np.full(3, 1.0 / 3.0),
                                   mode="valid")
            depth = 1.0 - float(smoothed.min()) / baseline
            if depth < self._config.human_depth[kind]:
                return False
        return True

    # -- record construction ----------------------------------------------------------------

    def _record(self, iso2: str, entity: Entity, candidate: _Candidate,
                visible: Dict[SignalKind, List[AlertEpisode]],
                corroborated: bool, rng: np.random.Generator,
                record_ids: Iterator[int],
                trail: Optional[Dict] = None,
                draws: Optional[DrawCursor] = None) -> OutageRecord:
        starts = [min(e.span.start for e in episodes)
                  for episodes in visible.values()]
        ends = [max(e.span.end for e in episodes)
                for episodes in visible.values()]
        span = TimeRange(min(starts), max(ends))
        auto = {kind: bool(candidate.episodes.get(kind))
                for kind in SignalKind}
        human = {kind: kind in visible for kind in SignalKind}
        cause, more_info = self._attribute_cause(iso2, span, rng,
                                                 trail=trail, draws=draws)
        if corroborated or cause is not None:
            confirmation = ConfirmationStatus.CONFIRMED
        elif len(visible) >= 2:
            confirmation = ConfirmationStatus.LIKELY
        else:
            confirmation = ConfirmationStatus.UNCONFIRMED
        record = OutageRecord(
            record_id=next(record_ids),
            country_iso2=iso2,
            span=span,
            scope=entity.scope,
            auto_alerts=auto,
            human_visible=human,
            ioda_url=ioda_url(entity, span),
            cause=cause,
            confirmation=confirmation,
            more_info=more_info,
            region_names=((entity.identifier.split("-", 1)[1],)
                          if entity.scope is EntityScope.REGION else ()),
        )
        if trail is not None:
            trail["record"] = {
                "local_id": record.record_id,
                "span": {"start": span.start, "end": span.end},
                "confirmation": record.confirmation.value,
                "scope": record.scope.value}
        return record

    def _attribute_cause(self, iso2: str, span: TimeRange,
                         rng: np.random.Generator,
                         trail: Optional[Dict] = None,
                         draws: Optional[DrawCursor] = None
                         ) -> Tuple[Optional[str], Tuple[str, ...]]:
        """The news oracle: what reporting would the curators find?"""
        overlapping = [
            d for d in self._scenario.country_disruptions(iso2)
            if d.span.overlaps(
                span.expand(before=2 * HOUR, after=2 * HOUR))]
        if not overlapping:
            if trail is not None:
                trail["cause"] = {"overlapping": 0, "cause": None}
            return None, ()
        truth = max(overlapping, key=lambda d: d.severity)
        p_discover = (self._config.p_discover_shutdown_cause
                      if truth.intentional
                      else self._config.p_discover_outage_cause)
        index = draws.take() if draws is not None else None
        discovered = bool(rng.random() < p_discover)
        if trail is not None:
            trail["cause"] = {
                "overlapping": len(overlapping),
                "p_discover": round(p_discover, 9),
                "draw": {"substream": ["curation", iso2], "index": index},
                "cause": None}
        if not discovered:
            return None, ()
        cause = _CAUSE_TEXT[truth.cause]
        if trail is not None:
            trail["cause"]["cause"] = cause
        info = [f"https://news.example.org/{iso2.lower()}/"
                f"{truth.disruption_id}"]
        if truth.trigger_event_id is not None:
            info.append("Related mobilization event reported; "
                        f"event id {truth.trigger_event_id}")
        return cause, tuple(info)

    # -- scope descent --------------------------------------------------------------------

    def _descend(self, iso2: str, window: TimeRange, period: TimeRange,
                 rng: np.random.Generator,
                 record_ids: Iterator[int],
                 draws: Optional[DrawCursor] = None
                 ) -> List[Tuple[OutageRecord, Optional[str]]]:
        """Inspect region (and optionally AS) views when the country view
        shows nothing.  Returns ``(record, capsule_id)`` pairs; capsule
        ids are ``None`` when no provenance recorder is active."""
        obs = current()
        recorder = obs.provenance
        results: List[Tuple[OutageRecord, Optional[str]]] = []
        network = self._scenario.topology.get(iso2)
        affected_regions: List[Tuple[str, _Candidate, List[SignalKind]]] = []
        for region in network.regions:
            entity = Entity.region(iso2, region.name)
            episodes = self._dashboard.episodes_by_signal(entity, window)
            for candidate in self._cluster(episodes):
                if not period.contains(candidate.span.start):
                    continue
                if not self._calendar.observes(candidate.span.start,
                                               self._scenario.seed):
                    continue
                visible = self._anchor_overlapping(
                    self._visible_signals(candidate))
                if len(visible) >= 2:
                    affected_regions.append(
                        (region.name, candidate, visible))
        # One record per affected region, matching the paper's "record all
        # affected regions" while our schema keeps one region per row.
        for region_name, candidate, visible in affected_regions:
            entity = Entity.region(iso2, region_name)
            trail: Optional[Dict] = {} if recorder is not None else None
            if trail is not None:
                trail["visibility"] = {
                    "visible": sorted(k.value for k in visible),
                    "required": 2}
                trail["corroboration"] = {"checked": False}
            if self._is_infrastructure_artifact(iso2, candidate, visible,
                                                trail=trail):
                if recorder is not None:
                    recorder.emit(self._capsule_payload(
                        iso2, entity, window, candidate, "dismissed",
                        "control_artifact", trail))
                obs.metrics.counter("curation.decision.dismissed",
                                    reason="control_artifact").inc()
                continue
            record = self._record(iso2, entity, candidate, visible,
                                  False, rng, record_ids,
                                  trail=trail, draws=draws)
            capsule_id = None
            if recorder is not None:
                capsule_id = recorder.emit(self._capsule_payload(
                    iso2, entity, window, candidate, "recorded",
                    "region_descent", trail))
            obs.metrics.counter("curation.decision.recorded",
                                reason="region_descent").inc()
            results.append((record, capsule_id))
        return results
