"""Signal generation: projecting ground truth through the substrates.

:class:`IODAPlatform` is the measurement system.  Given a
:class:`~repro.world.scenario.WorldScenario`, it can produce, for any
entity and observation window, the three signals IODA publishes:

- **BGP** — visible /24s per 5-minute bin, via the vectorized
  :func:`repro.bgp.view.visible_slash24_series` over the entity's
  prefixes.
- **Active Probing** — up /24 blocks per 10-minute round, via
  :class:`repro.probing.scheduler.ActiveProbingRun` over a sampled set of
  non-mobile blocks (mobile networks are invisible to probing, §4).
- **Telescope** — unique source IPs per 5-minute bin, via
  :func:`repro.telescope.counter.unique_source_series`.

Ground truth enters only as per-bin *up fractions*: each disruption
overlapping the window removes its affected share of the entity's address
space for its duration, with the shares differing per signal exactly where
the measurement physics differ (mobile-only events do not move the probing
signal).  Measurement artifacts multiply the affected signal globally.
Every stage is columnar — up fractions, artifact multipliers, and the
three substrates all produce whole value arrays; no per-bin Python loop
runs between ground truth and a published :class:`TimeSeries`.

Signals are deterministic per (seed, entity, window start) so repeated
queries — e.g. the curation pipeline's control-group checks — observe
consistent data.  That determinism is what makes them *memoizable*: the
platform keeps a bounded :class:`~repro.ioda.signalcache.SignalCache` of
fully generated series, so a repeated query is served a defensive copy
instead of being regenerated (``signal_cache_size=0`` disables it; runs
with an active fault plan bypass it automatically, mirroring the
shard-cache chaos rule).  Cached and uncached queries return
byte-identical values.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.bgp.view import visible_slash24_series
from repro.errors import ConfigurationError, SignalError
from repro.ioda.signalcache import DEFAULT_SIGNAL_CACHE_SIZE, SignalCache
from repro.probing.blocks import ProbedBlock, sample_blocks
from repro.probing.scheduler import ActiveProbingRun
from repro.resilience.faults import active_plan, maybe_fault
from repro.rng import substream
from repro.signals.entities import Entity, EntityScope
from repro.signals.kinds import SignalKind
from repro.signals.series import TimeSeries
from repro.telescope.counter import unique_source_series
from repro.timeutils.timestamps import TimeRange, bin_floor
from repro.topology.generator import CountryNetwork
from repro.world.disruptions import Cause, GroundTruthDisruption
from repro.world.scenario import WorldScenario

__all__ = ["PlatformConfig", "IODAPlatform"]

#: Cause-specific per-signal severity damping.  A power outage leaves many
#: routers announcing from UPS/generator power, so BGP visibility falls far
#: less than data-plane reachability; link-saturating DDoS likewise rarely
#: tears down BGP sessions.  Telescope traffic needs live end hosts, so it
#: follows the data plane.
_SIGNAL_DAMPING: Mapping[Cause, Mapping[SignalKind, float]] = {
    Cause.POWER_OUTAGE: {SignalKind.BGP: 0.45},
    Cause.DDOS: {SignalKind.BGP: 0.35},
}


@dataclass(frozen=True)
class PlatformConfig:
    """Measurement-layer knobs."""

    n_full_feed_peers: int = 24
    bgp_peer_miss_rate: float = 0.02
    max_probed_blocks: int = 128
    telescope_overdispersion: float = 4.0

    def __post_init__(self) -> None:
        if self.n_full_feed_peers < 2:
            raise ConfigurationError("need at least 2 full-feed peers")
        if self.max_probed_blocks < 8:
            raise ConfigurationError("need at least 8 probed blocks")


@dataclass
class _CountryCache:
    network: CountryNetwork
    prefix_sizes: Tuple[int, ...]
    blocks: List[ProbedBlock]
    mobile_addr_share: float
    region_shares: Mapping[str, float]
    as_addr_shares: Mapping[int, float]


class IODAPlatform:
    """The simulated IODA measurement platform."""

    def __init__(self, scenario: WorldScenario,
                 config: PlatformConfig | None = None, *,
                 signal_cache_size: Optional[int] = None):
        """``signal_cache_size`` bounds the memoized-signal LRU
        (default :data:`~repro.ioda.signalcache.DEFAULT_SIGNAL_CACHE_SIZE`;
        ``0`` disables memoization entirely, for A/B comparison)."""
        self._scenario = scenario
        self._config = config or PlatformConfig()
        self._cache: Dict[str, _CountryCache] = {}
        self._country_lock = threading.Lock()
        size = (DEFAULT_SIGNAL_CACHE_SIZE if signal_cache_size is None
                else signal_cache_size)
        if size < 0:
            raise ConfigurationError(
                f"signal_cache_size must be >= 0: {size}")
        self._signal_cache = SignalCache(size) if size else None
        # ActiveProbingRun is deterministic given its block list (all
        # randomness arrives via the per-query rng), so one instance per
        # (country, kept-block-count) serves every window and keeps its
        # belief-iterate tables warm.
        self._probing_runs: Dict[Tuple[str, int], ActiveProbingRun] = {}
        # Per-(country, kind, region) disruption impact arrays: the
        # affected share of each disruption is window-independent, so
        # _up_fraction only intersects spans per query (see
        # _disruption_shares).
        self._share_cache: Dict[
            Tuple[str, SignalKind, Optional[str]],
            Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self._disruptions_by_country: Dict[
            str, List[GroundTruthDisruption]] = {}
        for disruption in scenario.all_disruptions():
            self._disruptions_by_country.setdefault(
                disruption.country_iso2, []).append(disruption)

    @property
    def scenario(self) -> WorldScenario:
        return self._scenario

    @property
    def config(self) -> PlatformConfig:
        return self._config

    @property
    def signal_cache(self) -> Optional[SignalCache]:
        """The memoized-signal LRU, or None when disabled."""
        return self._signal_cache

    # -- public query interface ------------------------------------------------

    def signal(self, entity: Entity, kind: SignalKind,
               window: TimeRange) -> TimeSeries:
        """One signal for one entity over a window.

        This is the platform's fault-injection site: under an active
        :class:`~repro.resilience.FaultPlan` *and* an open fault scope
        (the retry machinery opens one per attempt of each unit of
        work), a query may raise a typed
        :class:`~repro.errors.TransientSourceError` before any
        computation happens.  Outside a scope the hook is inert, so
        scheduling-time queries never fault.
        """
        maybe_fault("platform.signal")
        iso2 = entity.country_iso2
        if iso2 is None:
            return self._as_signal(entity, kind, window)
        region = (entity.identifier.split("-", 1)[1]
                  if entity.scope is EntityScope.REGION else None)
        return self._country_series(iso2, kind, window, region)

    def signals(self, entity: Entity,
                window: TimeRange) -> Dict[SignalKind, TimeSeries]:
        """All three signals for one entity over a window."""
        return {kind: self.signal(entity, kind, window)
                for kind in SignalKind}

    def country_signals(self, iso2: str,
                        window: TimeRange) -> Dict[SignalKind, TimeSeries]:
        """Convenience: all three country-level signals."""
        return self.signals(Entity.country(iso2), window)

    # -- internals: caches ------------------------------------------------------

    def _country_series(self, iso2: str, kind: SignalKind,
                        window: TimeRange,
                        region_name: Optional[str]) -> TimeSeries:
        """A country/region entity's signal, memoized when possible.

        The cache key is the full query coordinate — entity (country +
        optional region), kind, and the raw window bounds.  The window
        start keys the RNG substream, so two windows that merely share
        bins are distinct entries by construction.  Chaos runs bypass
        the cache entirely: a fault must be able to fire on every
        query, and a series generated inside one run's fault scope must
        never be replayed outside it (the same rule the shard cache
        follows).
        """
        cache = self._country(iso2)
        if self._signal_cache is None or active_plan() is not None:
            return self._entity_signal(cache, kind, window, region_name)
        key = (cache.network.country.iso2, region_name, kind,
               window.start, window.end)
        return self._signal_cache.get_or_create(
            key,
            lambda: self._entity_signal(cache, kind, window, region_name))

    def _country(self, iso2: str) -> _CountryCache:
        iso2 = iso2.upper()
        cached = self._cache.get(iso2)
        if cached is not None:
            return cached
        # Double-checked: thread-backend shards share this platform, and
        # building a country cache samples probing blocks — expensive
        # enough that two threads must not both pay for it (the dict
        # read/write above/below is atomic under the GIL either way).
        with self._country_lock:
            cached = self._cache.get(iso2)
            if cached is not None:
                return cached
            network = self._scenario.topology.get(iso2)
            prefix_sizes = tuple(
                prefix.num_slash24s
                for network_as in network.ases
                for prefix in network_as.prefixes)
            total24 = max(1, network.total_slash24s)
            mobile24 = sum(a.num_slash24s for a in network.ases if a.mobile)
            block_rng = substream(self._scenario.seed, "probing-blocks",
                                  iso2)
            blocks = sample_blocks(
                network, block_rng,
                max_blocks=self._config.max_probed_blocks)
            cache = _CountryCache(
                network=network,
                prefix_sizes=prefix_sizes,
                blocks=blocks,
                mobile_addr_share=mobile24 / total24,
                region_shares={r.name: r.share for r in network.regions},
                as_addr_shares={
                    int(a.asn): a.num_slash24s / total24
                    for a in network.ases},
            )
            self._cache[iso2] = cache
            return cache

    # -- internals: up-fraction construction -------------------------------------

    def _up_fraction(self, cache: _CountryCache, kind: SignalKind,
                     window: TimeRange, bin_width: int,
                     region_name: Optional[str]) -> np.ndarray:
        start = bin_floor(window.start, bin_width)
        n_bins = -(-(window.end - start) // bin_width)
        down = np.zeros(n_bins, dtype=np.float64)
        starts, ends, shares = self._disruption_shares(
            cache, kind, region_name)
        # Same half-open overlap test as TimeRange.overlaps, batched.
        for k in np.flatnonzero((starts < window.end)
                                & (ends > window.start)):
            first = max(0, (int(starts[k]) - start) // bin_width)
            last = min(n_bins, -(-(int(ends[k]) - start) // bin_width))
            down[first:last] += shares[k]
        return np.clip(1.0 - down, 0.0, 1.0)

    def _disruption_shares(self, cache: _CountryCache, kind: SignalKind,
                           region_name: Optional[str]
                           ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(start, end, share) arrays of a country's disruptions with a
        nonzero affected share, memoized — the share depends only on the
        disruption, signal kind and queried entity, never the window."""
        iso2 = cache.network.country.iso2
        key = (iso2, kind, region_name)
        entry = self._share_cache.get(key)
        if entry is None:
            spans = [(d.span.start, d.span.end, share)
                     for d in self._disruptions_by_country.get(iso2, [])
                     if (share := self._affected_share(
                         cache, d, kind, region_name)) > 0.0]
            entry = (
                np.array([s[0] for s in spans], dtype=np.int64),
                np.array([s[1] for s in spans], dtype=np.int64),
                np.array([s[2] for s in spans], dtype=np.float64))
            self._share_cache[key] = entry
        return entry

    def _affected_share(self, cache: _CountryCache,
                        disruption: GroundTruthDisruption, kind: SignalKind,
                        region_name: Optional[str]) -> float:
        """Fraction of the *queried entity's* signal the disruption removes.

        The entity is the country when ``region_name`` is None, else one
        region.  Mobile-only disruptions do not move Active Probing at all
        (probed blocks exclude mobile space).
        """
        if disruption.mobile_only and kind is SignalKind.ACTIVE_PROBING:
            return 0.0
        severity = disruption.severity
        severity *= _SIGNAL_DAMPING.get(disruption.cause, {}).get(kind, 1.0)
        if disruption.mobile_only:
            severity *= cache.mobile_addr_share

        if region_name is not None:
            # Region-level view.
            if disruption.scope is EntityScope.REGION:
                return (severity
                        if disruption.region_name == region_name else 0.0)
            if disruption.scope is EntityScope.COUNTRY:
                return severity
            # AS-scope events spread across regions by address share.
            return severity * cache.as_addr_shares.get(
                disruption.asn or -1, 0.0)

        # Country-level view.
        if disruption.scope is EntityScope.COUNTRY:
            return severity
        if disruption.scope is EntityScope.REGION:
            return severity * cache.region_shares.get(
                disruption.region_name or "", 0.0)
        return severity * cache.as_addr_shares.get(disruption.asn or -1, 0.0)

    def _artifact_multiplier(self, kind: SignalKind, window: TimeRange,
                             bin_width: int) -> np.ndarray:
        start = bin_floor(window.start, bin_width)
        n_bins = -(-(window.end - start) // bin_width)
        factor = np.ones(n_bins, dtype=np.float64)
        for artifact in self._scenario.artifacts:
            if artifact.signal is not kind:
                continue
            if not artifact.span.overlaps(window):
                continue
            first = max(0, (artifact.span.start - start) // bin_width)
            last = min(n_bins, -(-(artifact.span.end - start) // bin_width))
            factor[first:last] *= (1.0 - artifact.depth)
        return factor

    # -- internals: per-signal generation -----------------------------------------

    def _entity_signal(self, cache: _CountryCache, kind: SignalKind,
                       window: TimeRange,
                       region_name: Optional[str]) -> TimeSeries:
        iso2 = cache.network.country.iso2
        bin_width = kind.bin_width
        up = self._up_fraction(cache, kind, window, bin_width, region_name)
        scale = (cache.region_shares.get(region_name, 0.0)
                 if region_name is not None else 1.0)
        rng = substream(self._scenario.seed, "platform", kind.value, iso2,
                        region_name or "", window.start)
        if kind is SignalKind.BGP:
            series = visible_slash24_series(
                window, self._scaled_prefixes(cache, scale), up, rng,
                n_full_feed_peers=self._config.n_full_feed_peers,
                miss_rate=self._config.bgp_peer_miss_rate)
        elif kind is SignalKind.ACTIVE_PROBING:
            blocks = cache.blocks
            if region_name is not None:
                keep = max(8, int(len(blocks) * scale))
                blocks = blocks[:keep]
            if not blocks:
                series = TimeSeries.zeros(window, bin_width)
            else:
                key = (iso2, len(blocks))
                run = self._probing_runs.get(key)
                if run is None:
                    run = ActiveProbingRun(blocks)
                    self._probing_runs[key] = run
                series = run.up_count_series(window, up, rng)
        else:
            intensity = cache.network.ibr_intensity * max(scale, 0.02)
            series = unique_source_series(
                window, intensity, up,
                cache.network.country.utc_offset.seconds, rng,
                overdispersion=self._config.telescope_overdispersion)
        factor = self._artifact_multiplier(kind, window, bin_width)
        series.values[:] = np.round(series.values * factor)
        return series

    @staticmethod
    def _scaled_prefixes(cache: _CountryCache, scale: float) -> List[int]:
        if scale >= 1.0:
            return list(cache.prefix_sizes)
        keep = max(1, int(len(cache.prefix_sizes) * scale))
        return list(cache.prefix_sizes[:keep])

    def _as_signal(self, entity: Entity, kind: SignalKind,
                   window: TimeRange) -> TimeSeries:
        """AS-level signals: derived from the owning country's view.

        The underlying country series goes through the memoized path —
        an AS query shares its cache entry with the country-level query
        for the same kind and window (``scale`` copies, so the in-place
        rounding below cannot reach the cached array).
        """
        asn = int(entity.identifier)
        network_as = self._scenario.topology.find_as(asn)
        if network_as is None:
            raise SignalError(f"unknown ASN {asn}")
        cache = self._country(network_as.record.country_iso2)
        share = cache.as_addr_shares.get(asn, 0.0)
        country_series = self._country_series(
            cache.network.country.iso2, kind, window, region_name=None)
        scaled = country_series.scale(max(share, 0.01))
        scaled.values[:] = np.round(scaled.values)
        return scaled
