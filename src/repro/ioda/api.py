"""IODA-style public query API.

The real IODA exposes signals, alerts and events through a public REST
API that the paper's authors queried alongside the dashboard (§3.1.2).
:class:`IODAClient` is the equivalent programmatic facade over the
simulated platform: time-windowed signal queries, alert listings, and a
paginated event feed over a curated record list — the interface a
downstream tool (like the paper's proposed rapid-response triage) would
build against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TimeRangeError
from repro.ioda.dashboard import Dashboard, DashboardEntry
from repro.ioda.platform import IODAPlatform
from repro.ioda.records import OutageRecord
from repro.signals.entities import Entity
from repro.signals.kinds import SignalKind
from repro.timeutils.timestamps import TimeRange

__all__ = ["SignalPayload", "EventPage", "IODAClient"]


@dataclass(frozen=True)
class SignalPayload:
    """One signal's data as the API would return it."""

    entity: str
    signal: str
    from_ts: int
    until_ts: int
    step: int
    values: Tuple[float, ...]


@dataclass(frozen=True)
class EventPage:
    """One page of the curated-event feed."""

    events: Tuple[OutageRecord, ...]
    next_offset: Optional[int]
    total: int


class IODAClient:
    """Programmatic query interface over the platform."""

    def __init__(self, platform: IODAPlatform,
                 records: Sequence[OutageRecord] = ()):
        self._platform = platform
        self._dashboard = Dashboard(platform)
        self._records = sorted(records, key=lambda r: r.span.start)

    # -- signals --------------------------------------------------------------

    def get_signal(self, entity: Entity, signal: SignalKind,
                   from_ts: int, until_ts: int) -> SignalPayload:
        """Signal values for an entity over [from_ts, until_ts)."""
        if until_ts <= from_ts:
            raise TimeRangeError(
                f"until ({until_ts}) must exceed from ({from_ts})")
        series = self._platform.signal(
            entity, signal, TimeRange(from_ts, until_ts))
        return SignalPayload(
            entity=str(entity),
            signal=signal.value,
            from_ts=series.start,
            until_ts=series.end,
            step=series.width,
            values=tuple(float(v) for v in series.values),
        )

    def get_all_signals(self, entity: Entity, from_ts: int,
                        until_ts: int) -> Dict[str, SignalPayload]:
        """All three signals keyed by signal name."""
        return {kind.value: self.get_signal(entity, kind, from_ts,
                                            until_ts)
                for kind in SignalKind}

    # -- alerts ----------------------------------------------------------------

    def get_alerts(self, entity: Entity, from_ts: int,
                   until_ts: int) -> List[DashboardEntry]:
        """Alert episodes for an entity over a window."""
        return self._dashboard.entries(
            entity, TimeRange(from_ts, until_ts))

    # -- events -----------------------------------------------------------------

    def get_events(self, country_iso2: Optional[str] = None,
                   from_ts: Optional[int] = None,
                   until_ts: Optional[int] = None,
                   offset: int = 0, limit: int = 50) -> EventPage:
        """Paginated curated-event feed with optional filters."""
        if limit <= 0:
            raise TimeRangeError(f"limit must be positive: {limit}")
        filtered = [
            record for record in self._records
            if (country_iso2 is None
                or record.country_iso2 == country_iso2.upper())
            and (from_ts is None or record.span.start >= from_ts)
            and (until_ts is None or record.span.start < until_ts)
        ]
        page = filtered[offset:offset + limit]
        next_offset = (offset + limit
                       if offset + limit < len(filtered) else None)
        return EventPage(events=tuple(page), next_offset=next_offset,
                         total=len(filtered))
