"""IODA-style public query API.

The real IODA exposes signals, alerts and events through a public REST
API that the paper's authors queried alongside the dashboard (§3.1.2).
:class:`IODAClient` is the equivalent programmatic facade over the
simulated platform: time-windowed signal queries, alert listings, and a
cursor-paginated event feed over a curated record list — the interface
a downstream tool (like the paper's proposed rapid-response triage)
would build against.

The feed can be **live**: built over a streaming session
(:meth:`repro.stream.session.StreamSession.client`), the client reads
its records through a ``feed`` callable and binds every cursor to the
session's ``revision`` (the watermark), so a cursor minted before the
stream advanced fails loudly with :class:`~repro.errors.CursorError`
instead of silently paging a shifted feed.
"""

from __future__ import annotations

import base64
import binascii
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, \
    Union

from repro.errors import CursorError, TimeRangeError
from repro.exec.cachestore import fingerprint
from repro.resilience.faults import maybe_fault
from repro.ioda.dashboard import Dashboard, DashboardEntry
from repro.ioda.platform import IODAPlatform
from repro.ioda.records import OutageRecord
from repro.signals.entities import Entity
from repro.signals.kinds import SignalKind
from repro.timeutils.timestamps import TimeRange

__all__ = ["SignalPayload", "EventPage", "IODAClient", "encode_cursor",
           "decode_cursor"]


def encode_cursor(position: int, query_key: str) -> str:
    """Mint an opaque cursor token for ``position`` within a query.

    ``query_key`` identifies the exact query (filters + feed revision)
    the cursor binds to; :func:`decode_cursor` refuses the token under
    any other key.  Shared by :class:`IODAClient` and the serving
    layer's event routes (:mod:`repro.serve.routes`) so their cursor
    contracts are literally the same code.
    """
    token = f"v1:{position}:{query_key}".encode("ascii")
    return base64.urlsafe_b64encode(token).decode("ascii")


def decode_cursor(cursor: str, query_key: str) -> int:
    """Recover the page position from a cursor minted under ``query_key``.

    Raises :class:`~repro.errors.CursorError` on tampered, truncated,
    or unsupported-version tokens, and on any key mismatch (different
    filters, different client, or a moved feed revision).
    """
    try:
        token = base64.urlsafe_b64decode(cursor.encode("ascii"))
        version, position, key = token.decode("ascii").split(":", 2)
    except (binascii.Error, UnicodeDecodeError, ValueError) as exc:
        raise CursorError(f"malformed cursor: {cursor!r}") from exc
    if version != "v1":
        raise CursorError(f"unsupported cursor version: {version!r}")
    if key != query_key:
        raise CursorError(
            "cursor was issued for a different query or feed "
            "revision; restart pagination without a cursor")
    try:
        return int(position)
    except ValueError as exc:
        raise CursorError(f"malformed cursor: {cursor!r}") from exc


@dataclass(frozen=True)
class SignalPayload:
    """One signal's data as the API would return it."""

    entity: str
    signal: str
    from_ts: int
    until_ts: int
    step: int
    values: Tuple[float, ...]


@dataclass(frozen=True)
class EventPage:
    """One page of the curated-event feed.

    ``cursor`` is the only way to fetch the next page: pass it back via
    ``get_events(..., cursor=page.cursor)``.  It is opaque — bound to
    the query's filters and the feed revision, so a cursor minted by
    one query cannot silently page through another.  ``None`` means the
    feed is exhausted.
    """

    events: Tuple[OutageRecord, ...]
    total: int
    cursor: Optional[str] = None


class IODAClient:
    """Programmatic query interface over the platform.

    ``records`` is a static curated dataset (the common, post-run
    case).  A **live** client instead passes ``feed`` — a callable
    returning the records curated so far — plus ``revision``, a value
    (or zero-argument callable) identifying the feed's current state;
    cursors bind to the revision at mint time and raise
    :class:`~repro.errors.CursorError` once it moves.
    """

    def __init__(self, platform: IODAPlatform,
                 records: Sequence[OutageRecord] = (), *,
                 feed: Optional[Callable[[], Sequence[OutageRecord]]]
                 = None,
                 revision: Union[Callable[[], Any], Any, None] = None):
        if feed is not None and records:
            raise ValueError("pass either records or a live feed=, "
                             "not both")
        self._platform = platform
        self._dashboard = Dashboard(platform)
        self._feed = feed
        self._revision = revision
        self._records = sorted(records, key=lambda r: r.span.start)
        # The only hashed ingredient of a query key is the platform
        # config, which cannot change after construction — fingerprint
        # it once here so paging never re-hashes (see _query_key).
        self._base_key = fingerprint(platform.config)

    # -- signals --------------------------------------------------------------

    def get_signal(self, entity: Entity, signal: SignalKind,
                   from_ts: int, until_ts: int) -> SignalPayload:
        """Signal values for an entity over [from_ts, until_ts)."""
        if until_ts <= from_ts:
            raise TimeRangeError(
                f"until ({until_ts}) must exceed from ({from_ts})")
        series = self._platform.signal(
            entity, signal, TimeRange(from_ts, until_ts))
        return SignalPayload(
            entity=str(entity),
            signal=signal.value,
            from_ts=series.start,
            until_ts=series.end,
            step=series.width,
            values=tuple(float(v) for v in series.values),
        )

    def get_all_signals(self, entity: Entity, from_ts: int,
                        until_ts: int) -> Dict[str, SignalPayload]:
        """All three signals keyed by signal name."""
        return {kind.value: self.get_signal(entity, kind, from_ts,
                                            until_ts)
                for kind in SignalKind}

    # -- alerts ----------------------------------------------------------------

    def get_alerts(self, entity: Entity, from_ts: int,
                   until_ts: int) -> List[DashboardEntry]:
        """Alert episodes for an entity over a window."""
        return self._dashboard.entries(
            entity, TimeRange(from_ts, until_ts))

    # -- events -----------------------------------------------------------------

    def get_events(self, country_iso2: Optional[str] = None,
                   from_ts: Optional[int] = None,
                   until_ts: Optional[int] = None, *,
                   limit: int = 50,
                   cursor: Optional[str] = None) -> EventPage:
        """Paginated curated-event feed with optional filters.

        Paging parameters (``limit``, ``cursor``) are keyword-only.

        **Cursor contract.**  ``EventPage.cursor`` is an opaque token:

        - Mint one only by calling this method; pass it back verbatim
          via ``cursor=`` to fetch the next page.
        - A cursor binds to the exact filters it was minted with *and*
          to the feed revision (the record set — or, for a live
          streaming client, the watermark — the page was served from).
          Reusing it with different filters, against a different
          client, or after the feed changed raises
          :class:`~repro.errors.CursorError`.
        - So does any tampered, truncated, or unsupported-version
          token.  ``CursorError`` subclasses
          :class:`~repro.errors.PaginationError`, so broad handlers
          keep working; recover by restarting pagination without a
          cursor.
        - Cursors never expire on their own and are safe to persist
          across processes as long as the feed is unchanged.
        """
        maybe_fault("ioda.api.get_events",
                    key=country_iso2 or "events-feed")
        if limit <= 0:
            raise TimeRangeError(f"limit must be positive: {limit}")
        records = self._current_records()
        query_key = self._query_key(country_iso2, from_ts, until_ts,
                                    records)
        start = (self._decode_cursor(cursor, query_key)
                 if cursor is not None else 0)
        filtered = [
            record for record in records
            if (country_iso2 is None
                or record.country_iso2 == country_iso2.upper())
            and (from_ts is None or record.span.start >= from_ts)
            and (until_ts is None or record.span.start < until_ts)
        ]
        page = filtered[start:start + limit]
        has_more = start + limit < len(filtered)
        next_cursor = (self._encode_cursor(start + limit, query_key)
                       if has_more else None)
        return EventPage(events=tuple(page), total=len(filtered),
                         cursor=next_cursor)

    # -- cursors ----------------------------------------------------------------

    def _current_records(self) -> List[OutageRecord]:
        if self._feed is None:
            return self._records
        return sorted(self._feed(), key=lambda r: r.span.start)

    def _query_key(self, country_iso2: Optional[str],
                   from_ts: Optional[int], until_ts: Optional[int],
                   records: Sequence[OutageRecord]) -> str:
        """The key binding a cursor to its filters and feed revision.

        Pure string assembly over the pre-hashed ``_base_key`` — the
        hot paging path never calls :func:`fingerprint`.
        """
        if self._revision is not None:
            revision = (self._revision()
                        if callable(self._revision) else self._revision)
        else:
            revision = len(records)
        country = country_iso2.upper() if country_iso2 else "-"
        return (f"{self._base_key}.{country}"
                f".{'-' if from_ts is None else from_ts}"
                f".{'-' if until_ts is None else until_ts}"
                f".r{revision}")

    _encode_cursor = staticmethod(encode_cursor)
    _decode_cursor = staticmethod(decode_cursor)
