"""Google-Transparency-Report-style product traffic signal.

IODA integrated the Google Transparency Report as a fourth country-level
signal in September 2022 — after the paper's study period, so the paper
excludes it (§3.1 footnote 2).  We implement it as the natural extension:
per-country, per-product normalized request volumes with the strong human
rhythms real GTR data shows (diurnal and weekly cycles), scaled by the
ground-truth reachable fraction.

Unlike the three infrastructure signals, GTR measures *user activity*, so
it sees mobile-only shutdowns (phone users generate most product traffic)
— which makes it a corroboration source for exactly the events IODA's
probing misses.  :class:`GTRCorroborator` packages that use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import substream
from repro.signals.series import TimeSeries
from repro.timeutils.timestamps import DAY, HOUR, TimeRange, bin_floor
from repro.world.disruptions import GroundTruthDisruption
from repro.world.scenario import WorldScenario

__all__ = ["GTRProduct", "GTRSimulator", "GTRCorroborator"]

#: GTR publishes coarse time series; we model hourly bins.
GTR_BIN = HOUR


class GTRProduct:
    """Product identifiers with their traffic weight and rhythm."""

    SEARCH = "search"
    MAIL = "mail"
    VIDEO = "video"

    ALL = (SEARCH, MAIL, VIDEO)

    #: Relative volume and diurnal amplitude per product.
    PROFILE: Mapping[str, tuple[float, float]] = {
        SEARCH: (1.0, 0.45),
        MAIL: (0.4, 0.55),   # mail tracks the workday hardest
        VIDEO: (1.6, 0.35),  # video runs into the night
    }


class GTRSimulator:
    """Generates normalized product-traffic series for countries."""

    def __init__(self, scenario: WorldScenario):
        self._scenario = scenario
        self._disruptions: Dict[str, list[GroundTruthDisruption]] = {}
        for disruption in scenario.all_disruptions():
            self._disruptions.setdefault(
                disruption.country_iso2, []).append(disruption)

    def series(self, iso2: str, product: str,
               window: TimeRange) -> TimeSeries:
        """Normalized request volume for one product over a window."""
        if product not in GTRProduct.PROFILE:
            raise ConfigurationError(f"unknown GTR product: {product}")
        country = self._scenario.registry.get(iso2)
        volume, amplitude = GTRProduct.PROFILE[product]
        start = bin_floor(window.start, GTR_BIN)
        n_bins = -(-(window.end - start) // GTR_BIN)
        bin_starts = start + GTR_BIN * np.arange(n_bins)

        local = (bin_starts + country.utc_offset.seconds) % DAY
        diurnal = 1.0 + amplitude * np.cos(
            2.0 * np.pi * (local - 14 * HOUR) / DAY)
        local_days = (bin_starts + country.utc_offset.seconds) // DAY
        weekdays = (local_days + 3) % 7
        workday = np.array([country.workweek.is_workday(int(d))
                            for d in weekdays])
        weekly = np.where(workday, 1.0, 0.82)

        up = self._up_fraction(iso2, start, n_bins)
        rng = substream(self._scenario.seed, "gtr", iso2, product,
                        window.start)
        noise = rng.lognormal(0.0, 0.05, size=n_bins)
        base = volume * country.population_millions
        values = base * diurnal * weekly * up * noise
        return TimeSeries(start, GTR_BIN, values)

    def _up_fraction(self, iso2: str, start: int,
                     n_bins: int) -> np.ndarray:
        """User-weighted reachable fraction per hourly bin.

        GTR sees user activity, so mobile-only events count in full
        (severity is not damped by the mobile address share).
        """
        down = np.zeros(n_bins)
        for disruption in self._disruptions.get(iso2, []):
            if disruption.region_name is not None:
                share = next(
                    (r.share for r in
                     self._scenario.topology.get(iso2).regions
                     if r.name == disruption.region_name), 0.0)
            else:
                share = 1.0
            end = start + n_bins * GTR_BIN
            if not disruption.span.overlaps(TimeRange(start, end)):
                continue
            first = max(0, (disruption.span.start - start) // GTR_BIN)
            last = min(n_bins,
                       -(-(disruption.span.end - start) // GTR_BIN))
            down[first:last] += disruption.severity * share
        return np.clip(1.0 - down, 0.0, 1.0)


@dataclass(frozen=True)
class GTRCorroborator:
    """Uses GTR product traffic to corroborate a suspected disruption.

    ``corroborates`` returns True when the median product traffic during
    the span drops by at least ``min_drop`` relative to the preceding
    baseline across a majority of products.
    """

    simulator: GTRSimulator
    min_drop: float = 0.35
    baseline_hours: int = 48

    def corroborates(self, iso2: str, span: TimeRange) -> bool:
        """Whether GTR data confirms a disruption in ``span``."""
        window = TimeRange(span.start - self.baseline_hours * HOUR,
                           span.end + GTR_BIN)
        confirming = 0
        for product in GTRProduct.ALL:
            series = self.simulator.series(iso2, product, window)
            before = series.slice(TimeRange(window.start, span.start))
            during = series.slice(span)
            if len(during) == 0 or len(before) == 0:
                continue
            baseline = float(np.median(before.values))
            if baseline <= 0:
                continue
            drop = 1.0 - float(np.median(during.values)) / baseline
            if drop >= self.min_drop:
                confirming += 1
        return confirming * 2 > len(GTRProduct.ALL)
