"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError`, so a
caller embedding the pipeline can catch a single base class.  Subclasses are
grouped by the subsystem that raises them; modules raise the most specific
class that applies.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CountryLookupError",
    "TimeRangeError",
    "PrefixError",
    "SignalError",
    "CurationError",
    "SchemaError",
    "MatchingError",
    "DatasetError",
    "PaginationError",
    "CursorError",
    "StreamError",
    "ServeError",
    "ResilienceError",
    "TransientSourceError",
    "SourceTimeoutError",
    "CorruptPageError",
    "CircuitOpenError",
    "RetriesExhaustedError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """A generator or pipeline was configured with invalid parameters."""


class CountryLookupError(ReproError, KeyError):
    """A country name or ISO code could not be resolved by the registry."""


class TimeRangeError(ReproError, ValueError):
    """A time range or bin specification is invalid (e.g., end < start)."""


class PrefixError(ReproError, ValueError):
    """An IPv4 address or prefix is malformed or out of range."""


class SignalError(ReproError):
    """A time-series signal operation failed (misaligned bins, empty series)."""


class CurationError(ReproError):
    """The outage curation pipeline rejected or could not process an event."""


class SchemaError(ReproError):
    """A dataset record does not conform to the expected (annual) schema."""


class MatchingError(ReproError):
    """KIO-IODA event matching was asked to relate incompatible events."""


class PaginationError(ReproError, ValueError):
    """An event-feed pagination cursor is malformed or from another query."""


class CursorError(PaginationError):
    """An event-feed cursor failed validation: tampered, truncated, of an
    unsupported version, or minted by a different query or feed revision."""


class DatasetError(ReproError):
    """An auxiliary dataset emitter failed to produce or parse records."""


class StreamError(ReproError):
    """A streaming-ingestion operation violated the stream contract:
    misaligned or conflicting bins, a non-monotonic watermark, bins
    missing under an advanced watermark, or pushes into a closed
    window/session."""


class ServeError(ReproError):
    """The serving layer hit an invalid store, route, or harness state:
    a missing or corrupt artifact store, a build over an empty run, or
    a load-generation mix that cannot be satisfied."""


class ResilienceError(ReproError):
    """Base class for the fault-injection / retry / breaker machinery."""


class TransientSourceError(ResilienceError):
    """A data-source operation failed in a way that may succeed on retry.

    This is the class the retry machinery treats as retriable; the fault
    injector raises it (or a subclass) at the instrumented sites.
    """


class SourceTimeoutError(TransientSourceError):
    """A (simulated) data-source query exceeded its deadline."""


class CorruptPageError(TransientSourceError):
    """A (simulated) data-source response failed payload validation."""


class CircuitOpenError(ResilienceError):
    """A circuit breaker is open: the source is skipped without a call."""


class RetriesExhaustedError(ResilienceError):
    """An operation kept failing transiently past its retry budget."""
