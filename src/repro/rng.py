"""Deterministic random substreams.

Every stochastic component of the synthetic world derives its own
independent generator from the scenario seed plus a string path (e.g.
``("topology", "SY")``).  This makes the whole pipeline reproducible while
keeping components order-independent: adding a country or reordering
generation does not perturb any other component's draws.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

from repro.obs.runtime import current

__all__ = ["substream", "derive_seed"]

_Label = Union[str, int]


def derive_seed(seed: int, *labels: _Label) -> int:
    """Derive a 64-bit child seed from ``seed`` and a label path.

    Uses BLAKE2b over the canonical encoding of the path, so distinct paths
    give independent seeds and the mapping is stable across Python versions
    (unlike ``hash``).
    """
    hasher = hashlib.blake2b(digest_size=8)
    hasher.update(str(int(seed)).encode("utf-8"))
    for label in labels:
        hasher.update(b"\x1f")
        hasher.update(str(label).encode("utf-8"))
    return int.from_bytes(hasher.digest(), "big")


def substream(seed: int, *labels: _Label) -> np.random.Generator:
    """A numpy generator seeded deterministically from ``seed`` and labels.

    >>> g1 = substream(7, "topology", "SY")
    >>> g2 = substream(7, "topology", "SY")
    >>> float(g1.random()) == float(g2.random())
    True
    """
    obs = current()
    if obs.enabled:
        obs.metrics.counter("rng.substreams",
                            component=str(labels[0]) if labels
                            else "root").inc()
    return np.random.Generator(np.random.PCG64(derive_seed(seed, *labels)))
