"""repro — a reproduction of "Destination Unreachable: Characterizing
Internet Outages and Shutdowns" (Bischof et al., SIGCOMM 2023).

The package builds every system the paper depends on — a synthetic world
of countries, AS topologies and political events; BGP, active-probing and
network-telescope measurement substrates; the IODA platform with its alert
and curation pipelines; the Access Now #KeepItOn reporting channel with
its annual schema drift; and the sociopolitical dataset emitters — and
then runs the paper's merge, matching, labeling, and analysis over the
observed (not ground-truth) data.

Quickstart (``repro.api`` is the stable entry point)::

    import repro.api as api
    from repro.analysis import summarize_merged

    result = api.run(seed=2023, workers=4, cache_dir=".cache")
    for row in summarize_merged(result.merged).rows():
        print(row)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-reproduction numbers.
"""

from repro.version import __version__
from repro import api
from repro.core.pipeline import PipelineResult, ReproPipeline
from repro.core.merge import MergedDataset, build_merged_dataset
from repro.world.scenario import (
    KIO_PERIOD,
    STUDY_PERIOD,
    ScenarioConfig,
    ScenarioGenerator,
    WorldScenario,
)
from repro.ioda.platform import IODAPlatform
from repro.ioda.curation import CurationPipeline

__all__ = [
    "__version__",
    "api",
    "PipelineResult",
    "ReproPipeline",
    "MergedDataset",
    "build_merged_dataset",
    "KIO_PERIOD",
    "STUDY_PERIOD",
    "ScenarioConfig",
    "ScenarioGenerator",
    "WorldScenario",
    "IODAPlatform",
    "CurationPipeline",
]
