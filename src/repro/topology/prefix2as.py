"""CAIDA-style prefix-to-AS snapshot.

The paper downloads CAIDA's daily RouteViews prefix-to-AS mappings and
combines them with geolocation to estimate per-AS address space per country
(§3.3).  :class:`Prefix2ASSnapshot` plays the role of one daily file: a list
of ``(prefix, origin ASN)`` pairs derived from the topology, with the two
artifacts real snapshots exhibit — occasional multi-origin (MOAS) prefixes
and a small amount of missing coverage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.net.ipv4 import IPv4Address, Prefix
from repro.net.prefixtree import PrefixTree
from repro.rng import substream
from repro.topology.generator import WorldTopology

__all__ = ["Prefix2ASSnapshot"]


@dataclass(frozen=True)
class _Origin:
    """Origin set for a prefix (usually one ASN; more for MOAS)."""

    asns: Tuple[int, ...]

    @property
    def primary(self) -> int:
        return self.asns[0]


class Prefix2ASSnapshot:
    """One day's prefix-to-AS mapping.

    Build with :meth:`from_topology`; query with :meth:`origin` (exact
    prefix) or :meth:`lookup` (longest-prefix match on an address).
    """

    def __init__(self, entries: List[Tuple[Prefix, Tuple[int, ...]]]):
        self._entries = entries
        self._tree: PrefixTree[_Origin] = PrefixTree()
        for prefix, asns in entries:
            self._tree[prefix] = _Origin(asns)

    @classmethod
    def from_topology(cls, topology: WorldTopology, seed: int,
                      miss_rate: float = 0.01,
                      moas_rate: float = 0.005) -> "Prefix2ASSnapshot":
        """Derive a snapshot from the world topology.

        ``miss_rate`` of prefixes are absent (collector blind spots);
        ``moas_rate`` get a second origin appended (MOAS).
        """
        rng = substream(seed, "prefix2as")
        entries: List[Tuple[Prefix, Tuple[int, ...]]] = []
        all_asns = [int(a.asn) for a in topology.all_ases()]
        for network_as in topology.all_ases():
            for prefix in network_as.prefixes:
                if rng.random() < miss_rate:
                    continue
                origins = [int(network_as.asn)]
                if rng.random() < moas_rate and len(all_asns) > 1:
                    other = int(rng.choice(all_asns))
                    if other != origins[0]:
                        origins.append(other)
                entries.append((prefix, tuple(origins)))
        return cls(entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[Prefix, Tuple[int, ...]]]:
        return iter(self._entries)

    def origin(self, prefix: Prefix) -> Tuple[int, ...] | None:
        """Origin ASNs recorded for exactly ``prefix``, or None."""
        result = self._tree.exact(prefix)
        return None if result is None else result.asns

    def lookup(self, address: IPv4Address) -> int | None:
        """Primary origin ASN for the longest matching prefix, or None."""
        result = self._tree.lookup(address)
        return None if result is None else result.primary

    def slash24s_per_asn(self) -> Dict[int, int]:
        """Total /24-equivalents per primary origin ASN.

        This is the paper's per-AS address-space estimate before
        geolocation splits it by country.
        """
        totals: Dict[int, int] = {}
        for prefix, asns in self._entries:
            totals[asns[0]] = totals.get(asns[0], 0) + prefix.num_slash24s
        return totals
