"""Synthetic per-country AS-level topologies.

For every country in the registry the generator builds a
:class:`CountryNetwork`: a set of autonomous systems with roles (access,
transit, content, ...), IPv4 address allocations expressed as aggregatable
prefixes, eyeball (user) shares, mobile flags, sub-national regions, and
state-ownership.  The distributions are shaped by the country's archetype
hints so that, in aggregate, the synthetic world reproduces the populations
the paper measures: autocracies skew toward state-dominated access markets,
low-income countries have smaller and more centralized address space, and
mobile operators hold many eyeballs behind little address space (the NAT
effect that limits IODA's active probing, §4).

Allocation is deterministic given the seed: countries are processed in
registry order and /24 blocks are handed out from a single global cursor,
with each aggregate aligned to its natural boundary so that every
allocation is a valid CIDR prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.countries.registry import Archetype, Country, CountryRegistry, \
    default_registry
from repro.errors import ConfigurationError
from repro.net.asn import AS, ASN, ASRole
from repro.net.ipv4 import Prefix, SLASH24_COUNT
from repro.rng import substream

__all__ = [
    "Region",
    "NetworkAS",
    "CountryNetwork",
    "WorldTopology",
    "TopologyGenerator",
]

#: First /24 block index handed out (1.0.0.0; keeps 0.0.0.0/8 unused).
_FIRST_SLASH24 = 1 << 8

#: Largest aggregate allocated at once, in /24s (a /14).
_MAX_CHUNK = 1 << 10


@dataclass(frozen=True)
class Region:
    """A sub-national region with its share of the country's network."""

    name: str
    share: float


@dataclass(frozen=True)
class NetworkAS:
    """An AS together with its allocations within its country."""

    record: AS
    prefixes: Tuple[Prefix, ...]
    eyeball_share: float
    mobile: bool = False

    @property
    def num_slash24s(self) -> int:
        """Total /24 blocks originated by this AS."""
        return sum(p.num_slash24s for p in self.prefixes)

    @property
    def asn(self) -> ASN:
        return self.record.asn

    @property
    def state_owned(self) -> bool:
        return self.record.state_owned


@dataclass(frozen=True)
class CountryNetwork:
    """The complete synthetic network of one country."""

    country: Country
    ases: Tuple[NetworkAS, ...]
    regions: Tuple[Region, ...]
    ibr_intensity: float  # mean telescope sources per 5-min bin when fully up

    @property
    def total_slash24s(self) -> int:
        """Total routable /24 blocks in the country."""
        return sum(a.num_slash24s for a in self.ases)

    @property
    def access_ases(self) -> Tuple[NetworkAS, ...]:
        return tuple(a for a in self.ases
                     if a.record.role is ASRole.ACCESS)

    def state_owned_slash24_fraction(self) -> float:
        """Ground-truth fraction of address space behind state-owned ASes."""
        total = self.total_slash24s
        if total == 0:
            return 0.0
        state = sum(a.num_slash24s for a in self.ases if a.state_owned)
        return state / total

    def state_owned_eyeball_fraction(self) -> float:
        """Ground-truth fraction of users behind state-owned ASes."""
        total = sum(a.eyeball_share for a in self.ases)
        if total == 0:
            return 0.0
        state = sum(a.eyeball_share for a in self.ases if a.state_owned)
        return state / total

    def probeable_slash24s(self) -> int:
        """/24 blocks visible to active probing (non-mobile allocations).

        Mobile operators NAT most subscribers behind small address pools,
        so their blocks respond poorly to ICMP; the paper notes this is why
        IODA under-observes mobile-only shutdowns (§4).
        """
        return sum(a.num_slash24s for a in self.ases if not a.mobile)


@dataclass
class WorldTopology:
    """All country networks plus global lookup tables."""

    networks: Dict[str, CountryNetwork] = field(default_factory=dict)

    def __iter__(self) -> Iterator[CountryNetwork]:
        return iter(self.networks.values())

    def __len__(self) -> int:
        return len(self.networks)

    def get(self, iso2: str) -> CountryNetwork:
        return self.networks[iso2.upper()]

    def __contains__(self, iso2: str) -> bool:
        return iso2.upper() in self.networks

    def all_ases(self) -> Iterator[NetworkAS]:
        for network in self:
            yield from network.ases

    def find_as(self, asn: int) -> Optional[NetworkAS]:
        """Locate an AS by number anywhere in the world."""
        for network_as in self.all_ases():
            if int(network_as.asn) == asn:
                return network_as
        return None


class TopologyGenerator:
    """Builds a :class:`WorldTopology` deterministically from a seed."""

    def __init__(self, seed: int,
                 registry: CountryRegistry | None = None,
                 address_scale: float = 1.0):
        if address_scale <= 0:
            raise ConfigurationError(
                f"address_scale must be positive: {address_scale}")
        self._seed = seed
        self._registry = registry or default_registry()
        self._address_scale = address_scale

    def generate(self) -> WorldTopology:
        """Generate the full world topology."""
        world = WorldTopology()
        cursor = _FIRST_SLASH24
        next_asn = 10_000
        for country in self._registry:
            network, cursor, next_asn = self._generate_country(
                country, cursor, next_asn)
            world.networks[country.iso2] = network
        return world

    # -- per-country generation ---------------------------------------------

    def _generate_country(self, country: Country, cursor: int,
                          next_asn: int) -> Tuple[CountryNetwork, int, int]:
        rng = substream(self._seed, "topology", country.iso2)
        total24 = self._address_budget(country, rng)
        n_as = self._as_count(total24, rng)
        shares = self._dirichlet(rng, n_as, concentration=0.9)
        roles = self._assign_roles(n_as, rng)
        mobile_flags = self._assign_mobile(roles, rng)
        state_flags = self._assign_state_ownership(
            country, shares, roles, rng)

        ases: List[NetworkAS] = []
        eyeball_shares = self._eyeball_shares(shares, roles, mobile_flags, rng)
        for i in range(n_as):
            blocks = max(1, int(round(shares[i] * total24)))
            if mobile_flags[i]:
                # Mobile operators: few public blocks relative to users.
                blocks = max(1, blocks // 4)
            prefixes, cursor = self._allocate(cursor, blocks)
            record = AS(
                asn=ASN(next_asn),
                name=self._as_name(country, i, roles[i], state_flags[i]),
                country_iso2=country.iso2,
                role=roles[i],
                state_owned=state_flags[i],
            )
            ases.append(NetworkAS(
                record=record,
                prefixes=prefixes,
                eyeball_share=eyeball_shares[i],
                mobile=mobile_flags[i],
            ))
            next_asn += 1

        regions = self._regions(country, rng)
        ibr = self._ibr_intensity(country, sum(a.num_slash24s for a in ases))
        network = CountryNetwork(
            country=country, ases=tuple(ases), regions=regions,
            ibr_intensity=ibr)
        return network, cursor, next_asn

    def _address_budget(self, country: Country,
                        rng: np.random.Generator) -> int:
        """Target /24 count: population times an income-driven penetration."""
        penetration = 0.12 + 0.8 * country.income_hint
        base = country.population_millions * penetration * 30.0
        jitter = float(rng.lognormal(mean=0.0, sigma=0.25))
        budget = int(base * jitter * self._address_scale)
        return int(np.clip(budget, 4, 16_384))

    @staticmethod
    def _as_count(total24: int, rng: np.random.Generator) -> int:
        base = 2 + int(np.sqrt(total24) / 3.0)
        jitter = int(rng.integers(0, 3))
        return int(np.clip(base + jitter, 3, 28))

    @staticmethod
    def _dirichlet(rng: np.random.Generator, n: int,
                   concentration: float) -> np.ndarray:
        shares = rng.dirichlet(np.full(n, concentration))
        order = np.argsort(shares)[::-1]
        return shares[order]

    @staticmethod
    def _assign_roles(n_as: int, rng: np.random.Generator) -> List[ASRole]:
        """Largest ASes are access networks; the tail mixes other roles."""
        roles: List[ASRole] = []
        for i in range(n_as):
            if i < max(2, int(0.55 * n_as)):
                roles.append(ASRole.ACCESS)
            else:
                roles.append(ASRole(rng.choice([
                    ASRole.TRANSIT.value, ASRole.CONTENT.value,
                    ASRole.EDUCATION.value, ASRole.GOVERNMENT.value,
                ], p=[0.45, 0.3, 0.15, 0.1])))
        return roles

    @staticmethod
    def _assign_mobile(roles: List[ASRole],
                       rng: np.random.Generator) -> List[bool]:
        """One or two of the top access ASes are mobile operators."""
        flags = [False] * len(roles)
        access_indices = [i for i, r in enumerate(roles)
                          if r is ASRole.ACCESS]
        n_mobile = int(rng.integers(1, 3))
        for index in access_indices[1:1 + n_mobile]:
            flags[index] = True
        return flags

    def _assign_state_ownership(self, country: Country, shares: np.ndarray,
                                roles: List[ASRole],
                                rng: np.random.Generator) -> List[bool]:
        """Mark ASes state-owned until the country's target share is met.

        High state-ISP-hint countries get their incumbent (largest access
        AS) plus more; low-hint countries usually only government
        enterprise networks, if anything.
        """
        target = float(np.clip(
            rng.normal(country.state_isp_hint, 0.12), 0.0, 0.98))
        flags = [False] * len(shares)
        accumulated = 0.0
        # Government-role ASes are state-owned by definition.
        for i, role in enumerate(roles):
            if role is ASRole.GOVERNMENT:
                flags[i] = True
                accumulated += float(shares[i])
        # Claim access/transit ASes until the target is reached.  In
        # state-dominated markets the incumbent (largest AS) is the
        # state's vehicle, so claim largest-first; where the state is a
        # marginal player it owns niche operators, so claim
        # smallest-first — otherwise even a 10% target would flag the
        # incumbent and overshoot wildly.
        candidates = [i for i in range(len(shares))
                      if not flags[i]
                      and roles[i] in (ASRole.ACCESS, ASRole.TRANSIT)]
        if target < 0.3:
            candidates = candidates[::-1]  # shares are sorted descending
        for i in candidates:
            if accumulated >= target:
                break
            flags[i] = True
            accumulated += float(shares[i])
        return flags

    @staticmethod
    def _eyeball_shares(shares: np.ndarray, roles: List[ASRole],
                        mobile: List[bool],
                        rng: np.random.Generator) -> List[float]:
        """User share per AS: access ASes only, mobile over-weighted."""
        weights = np.zeros(len(shares))
        for i, role in enumerate(roles):
            if role is ASRole.ACCESS:
                weights[i] = shares[i] * (3.0 if mobile[i] else 1.0)
        total = weights.sum()
        if total <= 0:
            # Degenerate topology with no access AS: spread users evenly.
            return [1.0 / len(shares)] * len(shares)
        noise = rng.lognormal(mean=0.0, sigma=0.15, size=len(shares))
        weights = weights * noise
        weights /= weights.sum()
        return [float(w) for w in weights]

    @staticmethod
    def _allocate(cursor: int, blocks: int) -> Tuple[Tuple[Prefix, ...], int]:
        """Allocate ``blocks`` /24s as aligned power-of-two aggregates."""
        prefixes: List[Prefix] = []
        remaining = blocks
        while remaining > 0:
            chunk = min(_MAX_CHUNK, 1 << (remaining.bit_length() - 1))
            # Align the cursor to the chunk size.
            if cursor % chunk:
                cursor += chunk - (cursor % chunk)
            if cursor + chunk > SLASH24_COUNT:
                raise ConfigurationError("IPv4 space exhausted by topology")
            length = 24 - (chunk.bit_length() - 1)
            prefixes.append(Prefix(cursor << 8, length))
            cursor += chunk
            remaining -= chunk
        return tuple(prefixes), cursor

    @staticmethod
    def _as_name(country: Country, index: int, role: ASRole,
                 state: bool) -> str:
        prefix = "National" if state and index == 0 else country.iso2
        return f"{prefix} {_ROLE_SUFFIX[role]} {index + 1}"

    @staticmethod
    def _regions(country: Country,
                 rng: np.random.Generator) -> Tuple[Region, ...]:
        if country.archetype is Archetype.SUBNATIONAL:
            n_regions = 12
        else:
            n_regions = int(np.clip(
                2 + country.population_millions ** 0.3, 3, 9))
        shares = rng.dirichlet(np.full(n_regions, 2.0))
        return tuple(
            Region(name=f"{country.iso2}-REG{i + 1:02d}",
                   share=float(share))
            for i, share in enumerate(shares))

    @staticmethod
    def _ibr_intensity(country: Country, total24: int) -> float:
        """Mean unique telescope sources per 5-minute bin at full
        connectivity.

        Scales with address space; bounded below so even tiny countries
        emit some background radiation (the paper notes the telescope
        signal's high variance, handled by its low 25% alert threshold).
        """
        return max(6.0, total24 * 0.35)


_ROLE_SUFFIX: Mapping[ASRole, str] = {
    ASRole.ACCESS: "Telecom",
    ASRole.TRANSIT: "Networks",
    ASRole.CONTENT: "Hosting",
    ASRole.EDUCATION: "REN",
    ASRole.GOVERNMENT: "GovNet",
}
