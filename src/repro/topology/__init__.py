"""Per-country AS-level topologies and the operator-statistics datasets.

The paper quantifies state participation in domestic access markets two
ways (§3.3 "Computer network datasets"): the fraction of the domestic
address space originated by state-owned operators (CAIDA prefix-to-AS +
MaxMind geolocation + the Carisimo et al. state-owned AS list) and the
fraction of eyeballs served by them (APNIC user estimates).  This subpackage
builds the synthetic topologies and re-derives those statistics through the
same dataset plumbing:

- :mod:`repro.topology.generator` — per-country AS topologies: access /
  transit / content ASes, /24 address allocations, eyeball shares, regions,
  and state ownership.
- :mod:`repro.topology.prefix2as` — CAIDA-style prefix-to-AS snapshot.
- :mod:`repro.topology.geolocation` — MaxMind-style prefix-to-country DB.
- :mod:`repro.topology.eyeballs` — APNIC-style per-AS user estimates.
- :mod:`repro.topology.state_owned` — the state-owned AS list.
- :mod:`repro.topology.metrics` — re-computation of the two state-share
  metrics from the emitted datasets (not from ground truth), as the paper
  does.
"""

from repro.topology.generator import (
    CountryNetwork,
    NetworkAS,
    Region,
    TopologyGenerator,
    WorldTopology,
)
from repro.topology.prefix2as import Prefix2ASSnapshot
from repro.topology.geolocation import GeoDatabase
from repro.topology.eyeballs import EyeballEstimates
from repro.topology.state_owned import StateOwnedASList
from repro.topology.metrics import StateShare, compute_state_shares

__all__ = [
    "CountryNetwork",
    "NetworkAS",
    "Region",
    "TopologyGenerator",
    "WorldTopology",
    "Prefix2ASSnapshot",
    "GeoDatabase",
    "EyeballEstimates",
    "StateOwnedASList",
    "StateShare",
    "compute_state_shares",
]
