"""The state-owned AS list.

The paper downloads the Carisimo et al. (IMC 2021) list of state-owned
Internet operators — ASes controlled by a government through majority share
ownership — and uses it to compute the prevalence of the state in each
domestic access market (§3.3, §5.1.1).

Our emitter derives the list from topology ground truth with imperfect
recall (some state operators are missed) and near-perfect precision, which
matches the conservative methodology of the source paper.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator

from repro.rng import substream
from repro.topology.generator import WorldTopology

__all__ = ["StateOwnedASList"]


class StateOwnedASList:
    """A set of ASNs identified as state-owned."""

    def __init__(self, asns: FrozenSet[int]):
        self._asns = asns

    @classmethod
    def from_topology(cls, topology: WorldTopology, seed: int,
                      recall: float = 0.95,
                      false_positive_rate: float = 0.002
                      ) -> "StateOwnedASList":
        """Derive the list from ground truth with imperfect recall."""
        rng = substream(seed, "state-owned")
        identified = set()
        for network_as in topology.all_ases():
            if network_as.state_owned:
                if rng.random() < recall:
                    identified.add(int(network_as.asn))
            elif rng.random() < false_positive_rate:
                identified.add(int(network_as.asn))
        return cls(frozenset(identified))

    def __len__(self) -> int:
        return len(self._asns)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._asns))

    def __contains__(self, asn: int) -> bool:
        return int(asn) in self._asns
