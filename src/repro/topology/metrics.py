"""State-participation metrics computed from the emitted datasets.

This reproduces the paper's §3.3 computation: combine the CAIDA-style
prefix-to-AS snapshot with the MaxMind-style geolocation database to
attribute /24-equivalents to (ASN, country) pairs, then use the state-owned
AS list to compute each country's state-owned address-space fraction, and
the APNIC-style eyeball estimates for the state-owned eyeball fraction.

Crucially the computation runs over the *emitted* datasets (with their
noise, misses and geolocation errors), not over topology ground truth — the
same epistemic position the paper is in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.topology.eyeballs import EyeballEstimates
from repro.topology.generator import WorldTopology
from repro.topology.geolocation import GeoDatabase
from repro.topology.prefix2as import Prefix2ASSnapshot
from repro.topology.state_owned import StateOwnedASList

__all__ = ["StateShare", "compute_state_shares"]


@dataclass(frozen=True)
class StateShare:
    """State participation in one country's access market."""

    country_iso2: str
    address_space_fraction: float
    eyeball_fraction: float

    @property
    def state_controlled(self) -> bool:
        """The paper's categorical split: state-owned operators originate
        more than 50% of the domestic address space (§5.1.1)."""
        return self.address_space_fraction > 0.5


def compute_state_shares(
        prefix2as: Prefix2ASSnapshot,
        geo: GeoDatabase,
        state_owned: StateOwnedASList,
        eyeballs: EyeballEstimates) -> Dict[str, StateShare]:
    """Compute per-country state shares from the four datasets.

    Returns a mapping from ISO code to :class:`StateShare` for every country
    that has any attributed address space or eyeballs.
    """
    total24: Dict[str, float] = {}
    state24: Dict[str, float] = {}
    for prefix, asns in prefix2as:
        iso2 = geo.country_of_prefix(prefix)
        if iso2 is None:
            continue
        blocks = prefix.num_slash24s
        total24[iso2] = total24.get(iso2, 0.0) + blocks
        if asns[0] in state_owned:
            state24[iso2] = state24.get(iso2, 0.0) + blocks

    total_users: Dict[str, float] = {}
    state_users: Dict[str, float] = {}
    for estimate in eyeballs:
        iso2 = estimate.country_iso2
        total_users[iso2] = total_users.get(iso2, 0.0) + estimate.users
        if estimate.asn in state_owned:
            state_users[iso2] = (
                state_users.get(iso2, 0.0) + estimate.users)

    shares: Dict[str, StateShare] = {}
    for iso2 in set(total24) | set(total_users):
        addr_total = total24.get(iso2, 0.0)
        user_total = total_users.get(iso2, 0.0)
        shares[iso2] = StateShare(
            country_iso2=iso2,
            address_space_fraction=(
                state24.get(iso2, 0.0) / addr_total if addr_total else 0.0),
            eyeball_fraction=(
                state_users.get(iso2, 0.0) / user_total
                if user_total else 0.0),
        )
    return shares


def ground_truth_state_shares(
        topology: WorldTopology) -> Mapping[str, StateShare]:
    """Ground-truth counterpart of :func:`compute_state_shares`.

    Used by tests to bound the error the dataset noise introduces.
    """
    return {
        network.country.iso2: StateShare(
            country_iso2=network.country.iso2,
            address_space_fraction=network.state_owned_slash24_fraction(),
            eyeball_fraction=network.state_owned_eyeball_fraction(),
        )
        for network in topology
    }
