"""APNIC-style per-AS eyeball (user population) estimates.

APNIC estimates the user population behind each AS via an advertisement
measurement; the paper uses these to compute the fraction of a country's
eyeballs served by state-owned operators, complementing the address-space
metric because NAT makes addresses a poor proxy for users (§3.3).

Our emitter derives estimates from topology ground truth with multiplicative
log-normal measurement noise and a coverage floor: ASes serving very small
user shares fall below APNIC's measurement threshold and are absent, as in
the real dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.rng import substream
from repro.topology.generator import WorldTopology

__all__ = ["EyeballEstimate", "EyeballEstimates"]


@dataclass(frozen=True)
class EyeballEstimate:
    """Estimated users behind one AS in one country."""

    asn: int
    country_iso2: str
    users: float


class EyeballEstimates:
    """The full eyeball dataset: per-(ASN, country) user estimates."""

    def __init__(self, estimates: Tuple[EyeballEstimate, ...]):
        self._estimates = estimates
        self._by_asn: Dict[int, EyeballEstimate] = {
            e.asn: e for e in estimates}

    @classmethod
    def from_topology(cls, topology: WorldTopology, seed: int,
                      noise_sigma: float = 0.2,
                      coverage_floor: float = 0.002) -> "EyeballEstimates":
        """Derive estimates from topology ground truth.

        ``noise_sigma`` is the log-normal measurement noise;
        ``coverage_floor`` is the minimum true user share for an AS to be
        measured at all.
        """
        rng = substream(seed, "eyeballs")
        estimates = []
        for network in topology:
            population = network.country.population_millions * 1e6
            for network_as in network.ases:
                share = network_as.eyeball_share
                if share < coverage_floor:
                    continue
                noise = float(rng.lognormal(mean=0.0, sigma=noise_sigma))
                estimates.append(EyeballEstimate(
                    asn=int(network_as.asn),
                    country_iso2=network.country.iso2,
                    users=share * population * noise,
                ))
        return cls(tuple(estimates))

    def __len__(self) -> int:
        return len(self._estimates)

    def __iter__(self) -> Iterator[EyeballEstimate]:
        return iter(self._estimates)

    def users_of(self, asn: int) -> float:
        """Estimated users behind ``asn`` (0.0 if unmeasured)."""
        estimate = self._by_asn.get(asn)
        return 0.0 if estimate is None else estimate.users

    def users_per_country(self) -> Dict[str, float]:
        """Total estimated users per country ISO code."""
        totals: Dict[str, float] = {}
        for estimate in self._estimates:
            totals[estimate.country_iso2] = (
                totals.get(estimate.country_iso2, 0.0) + estimate.users)
        return totals
