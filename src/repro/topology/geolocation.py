"""MaxMind-style prefix-to-country geolocation database.

The paper combines CAIDA's prefix-to-AS mapping with MaxMind to attribute
address space to countries, and IODA geolocates telescope packet sources the
same way (§3.1.1, §3.3).  The database is derived from topology ground truth
with a small configurable error rate — commercial geolocation is imperfect,
and the error rate lets tests quantify how much mislocation the pipeline
tolerates.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.net.ipv4 import IPv4Address, Prefix
from repro.net.prefixtree import PrefixTree
from repro.rng import substream
from repro.topology.generator import WorldTopology

__all__ = ["GeoDatabase"]


class GeoDatabase:
    """Longest-prefix-match prefix-to-country database."""

    def __init__(self, entries: List[Tuple[Prefix, str]]):
        self._entries = entries
        self._tree: PrefixTree[str] = PrefixTree()
        for prefix, iso2 in entries:
            self._tree[prefix] = iso2

    @classmethod
    def from_topology(cls, topology: WorldTopology, seed: int,
                      error_rate: float = 0.01) -> "GeoDatabase":
        """Derive a database from the topology.

        ``error_rate`` of prefixes are attributed to a uniformly random
        other country, modelling stale or wrong commercial geolocation.
        """
        rng = substream(seed, "geolocation")
        codes = [network.country.iso2 for network in topology]
        entries: List[Tuple[Prefix, str]] = []
        for network in topology:
            for network_as in network.ases:
                for prefix in network_as.prefixes:
                    iso2 = network.country.iso2
                    if len(codes) > 1 and rng.random() < error_rate:
                        iso2 = str(rng.choice(
                            [c for c in codes if c != iso2]))
                    entries.append((prefix, iso2))
        return cls(entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[Prefix, str]]:
        return iter(self._entries)

    def country_of(self, address: IPv4Address) -> Optional[str]:
        """ISO code of the country the address geolocates to, or None."""
        return self._tree.lookup(address)

    def country_of_prefix(self, prefix: Prefix) -> Optional[str]:
        """ISO code recorded for exactly ``prefix``, or None."""
        return self._tree.exact(prefix)
