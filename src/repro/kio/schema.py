"""Canonical KIO event records.

The harmonized schema the analysis consumes.  KIO events carry *local
dates*, not times (§4): ``start_day`` and ``end_day`` are local calendar
days, encoded as days-since-epoch of the local midnight (see
:func:`repro.timeutils.timezones.local_date`).  A single entry may span
weeks and cover a whole series of distinct disruptions (exam seasons,
post-coup curfews).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.errors import SchemaError

__all__ = ["KIOCategory", "NetworkType", "KIOEvent"]


class KIOCategory(enum.Enum):
    """Restriction categories (not mutually exclusive, §3.2)."""

    FULL_NETWORK = "full-network"
    SERVICE_BASED = "service-based"
    THROTTLING = "throttling"


class NetworkType(enum.Enum):
    """Which access networks an event affected."""

    MOBILE = "mobile"
    BROADBAND = "broadband"
    BOTH = "both"


@dataclass(frozen=True)
class KIOEvent:
    """One harmonized KIO entry.

    ``country_name`` is the name string as it appeared in the snapshot
    (variants preserved so that country resolution remains the merge
    pipeline's job).  ``nationwide`` distinguishes country-scale events
    from subnational ones; ``regions`` lists affected areas when known.
    """

    event_id: int
    year: int
    country_name: str
    start_day: int          # local days-since-epoch
    end_day: int            # local days-since-epoch, inclusive
    categories: Tuple[KIOCategory, ...]
    networks: NetworkType
    nationwide: bool
    regions: Tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if self.end_day < self.start_day:
            raise SchemaError(
                f"KIO event {self.event_id}: end day precedes start day")
        if not self.categories:
            raise SchemaError(
                f"KIO event {self.event_id}: no categories")

    @property
    def is_full_network(self) -> bool:
        """Whether the entry involves a full-network shutdown — the
        criterion for inclusion in the paper's merged shutdown set."""
        return KIOCategory.FULL_NETWORK in self.categories

    @property
    def duration_days(self) -> int:
        """Inclusive span in days."""
        return self.end_day - self.start_day + 1
