"""The Access Now #KeepItOn (KIO) dataset machinery (§3.2).

- :mod:`repro.kio.schema` — the canonical (harmonized) KIO event record.
- :mod:`repro.kio.compiler` — models Access Now's reporting process: it
  observes ground-truth intentional disruptions through a civil-society
  channel with realistic imperfections (incomplete coverage, date-only
  granularity in local time, publication-date errors, series collapsed
  into single entries) and emits *raw annual snapshots*.
- :mod:`repro.kio.snapshots` — the raw snapshot formats: Access Now
  changed field names, value conventions and structure across years, and
  the emitters reproduce that drift.
- :mod:`repro.kio.harmonize` — the harmonizer that re-unifies the annual
  snapshots into canonical records (the manual curation step the paper
  describes performing).
"""

from repro.kio.schema import KIOCategory, KIOEvent, NetworkType
from repro.kio.compiler import KIOCompiler, KIOCompilerConfig
from repro.kio.snapshots import AnnualSnapshot, SNAPSHOT_DIALECTS
from repro.kio.harmonize import Harmonizer

__all__ = [
    "KIOCategory",
    "KIOEvent",
    "NetworkType",
    "KIOCompiler",
    "KIOCompilerConfig",
    "AnnualSnapshot",
    "SNAPSHOT_DIALECTS",
    "Harmonizer",
]
