"""Harmonizing KIO annual snapshots back into canonical records.

This is the manual-curation step the paper performs on the real KIO data
("We manually curated and homogenized the annual snapshots", §3.2),
expressed as code: one parser per dialect, strict about what it accepts —
an unknown field layout raises :class:`~repro.errors.SchemaError` rather
than guessing.
"""

from __future__ import annotations

import calendar
import time
from typing import Callable, Dict, List, Mapping, Sequence

from repro.errors import SchemaError
from repro.kio.schema import KIOCategory, KIOEvent, NetworkType
from repro.kio.snapshots import AnnualSnapshot, RawRow
from repro.timeutils.timestamps import DAY

__all__ = ["Harmonizer"]

_V1_TYPE = {
    "full": KIOCategory.FULL_NETWORK,
    "service": KIOCategory.SERVICE_BASED,
    "throttle": KIOCategory.THROTTLING,
}
_V2_TYPE = {
    "full network": KIOCategory.FULL_NETWORK,
    "service-based": KIOCategory.SERVICE_BASED,
    "throttling": KIOCategory.THROTTLING,
}
_V1_NETWORK = {
    "mobile": NetworkType.MOBILE,
    "fixed": NetworkType.BROADBAND,
    "all": NetworkType.BOTH,
}
_V2_NETWORK = {
    "mobile": NetworkType.MOBILE,
    "fixed-line": NetworkType.BROADBAND,
    "mobile and fixed-line": NetworkType.BOTH,
}


def _parse_date(text: str, fmt: str) -> int:
    try:
        parsed = time.strptime(text, fmt)
    except ValueError as exc:
        raise SchemaError(f"unparseable date {text!r}: {exc}") from None
    return calendar.timegm(parsed) // DAY


def _require(row: RawRow, key: str) -> object:
    try:
        return row[key]
    except KeyError:
        raise SchemaError(f"row missing field {key!r}: {sorted(row)}") \
            from None


class Harmonizer:
    """Parses raw snapshots of every dialect into canonical events."""

    def __init__(self) -> None:
        self._parsers: Mapping[str, Callable[[RawRow, int], KIOEvent]] = {
            "v1": self._parse_v1,
            "v2": self._parse_v2,
            "v3": self._parse_v3,
        }

    def harmonize(self,
                  snapshots: Sequence[AnnualSnapshot]) -> List[KIOEvent]:
        """Parse all snapshots, returning time-ordered canonical events."""
        events: List[KIOEvent] = []
        for snapshot in snapshots:
            parser = self._parsers.get(snapshot.dialect)
            if parser is None:
                raise SchemaError(
                    f"unknown KIO dialect {snapshot.dialect!r}")
            for row in snapshot.rows:
                events.append(parser(row, snapshot.year))
        events.sort(key=lambda e: (e.year, e.start_day, e.country_name))
        return events

    # -- dialect parsers -------------------------------------------------------

    def _parse_v1(self, row: RawRow, year: int) -> KIOEvent:
        scope = str(_require(row, "scope"))
        nationwide = scope.strip().lower() == "national"
        regions = () if nationwide else tuple(
            part for part in (s.strip() for s in scope.split(";"))
            if part and part != "regional")
        categories = tuple(
            self._lookup(_V1_TYPE, part.strip(), "shutdown_type")
            for part in str(_require(row, "shutdown_type")).split(","))
        return KIOEvent(
            event_id=int(row.get("event_id", 0)),
            year=year,
            country_name=str(_require(row, "country")),
            start_day=_parse_date(str(_require(row, "start")), "%d/%m/%Y"),
            end_day=_parse_date(str(_require(row, "end")), "%d/%m/%Y"),
            categories=categories,
            networks=self._lookup(
                _V1_NETWORK, str(_require(row, "network")), "network"),
            nationwide=nationwide,
            regions=regions,
        )

    def _parse_v2(self, row: RawRow, year: int) -> KIOEvent:
        scope = str(_require(row, "Geographic Scope")).strip()
        nationwide = scope.lower() == "nationwide"
        regions = () if nationwide else tuple(
            part for part in (s.strip() for s in scope.split(","))
            if part and part.lower() != "subnational")
        categories = tuple(
            self._lookup(_V2_TYPE, part.strip(), "Type of Shutdown")
            for part in str(_require(row, "Type of Shutdown")).split("|"))
        return KIOEvent(
            event_id=int(row.get("event_id", 0)),
            year=year,
            country_name=str(_require(row, "Country")),
            start_day=_parse_date(
                str(_require(row, "Start Date")), "%Y-%m-%d"),
            end_day=_parse_date(str(_require(row, "End Date")), "%Y-%m-%d"),
            categories=categories,
            networks=self._lookup(
                _V2_NETWORK, str(_require(row, "Networks Affected")),
                "Networks Affected"),
            nationwide=nationwide,
            regions=regions,
        )

    def _parse_v3(self, row: RawRow, year: int) -> KIOEvent:
        area = _require(row, "area")
        if not isinstance(area, dict):
            raise SchemaError(f"v3 'area' must be an object: {area!r}")
        raw_categories = _require(row, "categories")
        if not isinstance(raw_categories, (list, tuple)):
            raise SchemaError(
                f"v3 'categories' must be a list: {raw_categories!r}")
        return KIOEvent(
            event_id=int(row.get("event_id", 0)),
            year=year,
            country_name=str(_require(row, "country_name")),
            start_day=_parse_date(
                str(_require(row, "start_date")), "%Y-%m-%d"),
            end_day=_parse_date(str(_require(row, "end_date")), "%Y-%m-%d"),
            categories=tuple(KIOCategory(c) for c in raw_categories),
            networks=NetworkType(str(_require(row, "affected_networks"))),
            nationwide=bool(area.get("nationwide", False)),
            regions=tuple(area.get("regions", ())),
        )

    @staticmethod
    def _lookup(table: Dict[str, object], key: str, field: str):
        try:
            return table[key.lower()]
        except KeyError:
            raise SchemaError(
                f"unknown {field} value: {key!r}") from None
