"""Raw KIO annual snapshots with year-specific schema dialects.

Access Now modified field names, value ranges and structure several times
between 2016 and 2021 (§3.2); the paper's authors had to manually curate
and homogenize the annual snapshots.  We reproduce that: each year's
snapshot serializes the canonical events into that year's *dialect*, and
the :class:`~repro.kio.harmonize.Harmonizer` must understand all of them.

Dialects (raw rows are plain dicts, as if parsed from the published CSVs):

- **2016-2017** (``v1``): ``country`` / ``start`` / ``end`` (DD/MM/YYYY) /
  ``shutdown_type`` (comma-joined labels ``full, service, throttle``) /
  ``scope`` (``national`` or semicolon-joined region list) /
  ``network`` (``mobile`` / ``fixed`` / ``all``).
- **2018-2019** (``v2``): ``Country`` / ``Start Date`` / ``End Date``
  (YYYY-MM-DD) / ``Type of Shutdown`` (pipe-joined
  ``Full network|Service-based|Throttling``) / ``Geographic Scope`` /
  ``Networks Affected``.
- **2020-2021** (``v3``): ``country_name`` / ``start_date`` / ``end_date``
  (ISO) / ``categories`` (JSON-style list) / ``affected_networks`` /
  ``area`` (``nationwide`` flag plus ``regions`` list).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

from repro.errors import SchemaError
from repro.kio.schema import KIOCategory, KIOEvent, NetworkType
from repro.timeutils.timestamps import DAY

__all__ = ["AnnualSnapshot", "SNAPSHOT_DIALECTS", "dialect_for_year"]

RawRow = Dict[str, object]

#: Dialect name per snapshot year.
SNAPSHOT_DIALECTS: Mapping[int, str] = {
    2016: "v1", 2017: "v1",
    2018: "v2", 2019: "v2",
    2020: "v3", 2021: "v3",
}


def dialect_for_year(year: int) -> str:
    """The dialect a given annual snapshot uses."""
    try:
        return SNAPSHOT_DIALECTS[year]
    except KeyError:
        raise SchemaError(f"no KIO snapshot dialect for year {year}") \
            from None


def _date_string(days_since_epoch: int, fmt: str) -> str:
    return time.strftime(fmt, time.gmtime(days_since_epoch * DAY))


_V1_TYPE = {
    KIOCategory.FULL_NETWORK: "full",
    KIOCategory.SERVICE_BASED: "service",
    KIOCategory.THROTTLING: "throttle",
}
_V2_TYPE = {
    KIOCategory.FULL_NETWORK: "Full network",
    KIOCategory.SERVICE_BASED: "Service-based",
    KIOCategory.THROTTLING: "Throttling",
}
_V1_NETWORK = {
    NetworkType.MOBILE: "mobile",
    NetworkType.BROADBAND: "fixed",
    NetworkType.BOTH: "all",
}
_V2_NETWORK = {
    NetworkType.MOBILE: "Mobile",
    NetworkType.BROADBAND: "Fixed-line",
    NetworkType.BOTH: "Mobile and fixed-line",
}


@dataclass(frozen=True)
class AnnualSnapshot:
    """One year's raw snapshot: a dialect tag and its raw rows."""

    year: int
    dialect: str
    rows: Sequence[RawRow]

    @classmethod
    def serialize(cls, year: int,
                  events: Sequence[KIOEvent]) -> "AnnualSnapshot":
        """Serialize the year's canonical events into the year's dialect."""
        dialect = dialect_for_year(year)
        rows = [_SERIALIZERS[dialect](event)
                for event in events if event.year == year]
        return cls(year=year, dialect=dialect, rows=rows)

    def __len__(self) -> int:
        return len(self.rows)


def _serialize_v1(event: KIOEvent) -> RawRow:
    scope = ("national" if event.nationwide
             else ";".join(event.regions) or "regional")
    return {
        "country": event.country_name,
        "start": _date_string(event.start_day, "%d/%m/%Y"),
        "end": _date_string(event.end_day, "%d/%m/%Y"),
        "shutdown_type": ", ".join(
            _V1_TYPE[c] for c in event.categories),
        "scope": scope,
        "network": _V1_NETWORK[event.networks],
        "event_id": event.event_id,
    }


def _serialize_v2(event: KIOEvent) -> RawRow:
    return {
        "Country": event.country_name,
        "Start Date": _date_string(event.start_day, "%Y-%m-%d"),
        "End Date": _date_string(event.end_day, "%Y-%m-%d"),
        "Type of Shutdown": "|".join(
            _V2_TYPE[c] for c in event.categories),
        "Geographic Scope": ("Nationwide" if event.nationwide
                             else ", ".join(event.regions) or "Subnational"),
        "Networks Affected": _V2_NETWORK[event.networks],
        "event_id": event.event_id,
    }


def _serialize_v3(event: KIOEvent) -> RawRow:
    return {
        "country_name": event.country_name,
        "start_date": _date_string(event.start_day, "%Y-%m-%d"),
        "end_date": _date_string(event.end_day, "%Y-%m-%d"),
        "categories": [c.value for c in event.categories],
        "affected_networks": event.networks.value,
        "area": {
            "nationwide": event.nationwide,
            "regions": list(event.regions),
        },
        "event_id": event.event_id,
    }


_SERIALIZERS = {
    "v1": _serialize_v1,
    "v2": _serialize_v2,
    "v3": _serialize_v3,
}
