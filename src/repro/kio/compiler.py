"""Modelling Access Now's reporting process.

The compiler turns ground-truth intentional disruptions into the raw rows
of KIO annual snapshots.  It reproduces the imperfections the paper had to
work around in §4:

- **Coverage** is incomplete: a series is reported with probability
  ``p_report``; civil society catches most national blackouts but not all.
- **Series collapse**: all disruptions sharing a ``series_id`` (an exam
  season, a post-coup curfew campaign) become one entry spanning first to
  last day, with only a categorical union of restriction types.
- **Date-only granularity**: entries carry local start/end dates, not
  times.
- **Publication-date errors**: with probability ``p_publication_date``,
  the recorded start date is the date the story was *published* (one to
  three days late).  With probability ``p_timezone_slip``, the date is
  off by one day because the reporting outlet used its own timezone.
- **Name variants**: country names are emitted in whatever form a source
  used (canonical name or any registry alias).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.countries.registry import Country, CountryRegistry
from repro.kio.schema import KIOCategory, KIOEvent, NetworkType
from repro.obs.runtime import current
from repro.rng import substream
from repro.signals.entities import EntityScope
from repro.timeutils.timestamps import DAY
from repro.timeutils.timezones import local_date
from repro.world.disruptions import GroundTruthDisruption, RestrictionEpisode

__all__ = ["KIOCompilerConfig", "KIOCompiler"]


@dataclass(frozen=True, kw_only=True)
class KIOCompilerConfig:
    """Reporting-channel noise parameters (keyword-only, stable surface)."""

    p_report_national: float = 0.85
    p_report_subnational: float = 0.75
    p_report_restriction: float = 0.8
    p_publication_date: float = 0.12
    p_timezone_slip: float = 0.05
    p_alias_name: float = 0.35


class KIOCompiler:
    """Compiles ground truth into harmonized KIO events.

    The output is canonical :class:`KIOEvent` objects; the snapshot
    emitters (:mod:`repro.kio.snapshots`) then serialize them into the
    year-specific raw dialects, and the harmonizer parses them back.
    """

    def __init__(self, seed: int, registry: CountryRegistry,
                 config: KIOCompilerConfig | None = None):
        self._seed = seed
        self._registry = registry
        self._config = config or KIOCompilerConfig()
        self._ids = itertools.count(1)

    def compile(self, shutdowns: Sequence[GroundTruthDisruption],
                restrictions: Sequence[RestrictionEpisode],
                years: Iterable[int]) -> List[KIOEvent]:
        """All KIO events for the given years."""
        obs = current()
        year_set = set(years)
        with obs.span("kio.compile", n_shutdowns=len(shutdowns),
                      n_restrictions=len(restrictions),
                      years=len(year_set)):
            events: List[KIOEvent] = []
            events.extend(self._shutdown_entries(shutdowns, year_set))
            events.extend(self._restriction_entries(restrictions, year_set))
            events.sort(key=lambda e: (e.year, e.start_day, e.country_name))
        obs.metrics.counter("kio.events_compiled").inc(len(events))
        return events

    # -- shutdowns ---------------------------------------------------------------

    def _shutdown_entries(self, shutdowns: Sequence[GroundTruthDisruption],
                          years: set[int]) -> Iterable[KIOEvent]:
        for key, group in self._grouped(shutdowns).items():
            country = self._registry.get(group[0].country_iso2)
            rng = substream(self._seed, "kio", country.iso2, key)
            national = group[0].scope is EntityScope.COUNTRY
            p_report = (self._config.p_report_national if national
                        else self._config.p_report_subnational)
            if rng.random() >= p_report:
                continue
            start_day = min(
                local_date(d.span.start, country.utc_offset) for d in group)
            end_day = max(
                local_date(d.span.end - 1, country.utc_offset)
                for d in group)
            year = _year_of_day(start_day)
            if year not in years:
                continue
            start_day = self._distort_start(start_day, rng)
            categories = self._categories(group)
            networks = self._networks(group)
            regions = tuple(sorted({
                d.region_name for d in group if d.region_name}))
            yield KIOEvent(
                event_id=next(self._ids),
                year=year,
                country_name=self._name_variant(country, rng),
                start_day=start_day,
                end_day=max(end_day, start_day),
                categories=categories,
                networks=networks,
                nationwide=national,
                regions=regions,
                description=self._description(group),
            )

    def _grouped(self, shutdowns: Sequence[GroundTruthDisruption]
                 ) -> Dict[str, List[GroundTruthDisruption]]:
        """Group disruptions into reporting units (series or singleton)."""
        groups: Dict[str, List[GroundTruthDisruption]] = {}
        for disruption in shutdowns:
            key = (disruption.series_id
                   or f"single-{disruption.disruption_id}")
            groups.setdefault(key, []).append(disruption)
        for group in groups.values():
            group.sort(key=lambda d: d.span.start)
        return groups

    def _distort_start(self, start_day: int,
                       rng: np.random.Generator) -> int:
        if rng.random() < self._config.p_publication_date:
            return start_day + int(rng.integers(1, 4))
        if rng.random() < self._config.p_timezone_slip:
            return start_day + int(rng.choice([-1, 1]))
        return start_day

    @staticmethod
    def _categories(group: Sequence[GroundTruthDisruption]
                    ) -> Tuple[KIOCategory, ...]:
        names = {r for d in group for r in d.restrictions}
        categories = [KIOCategory.FULL_NETWORK]
        if "service-based" in names:
            categories.append(KIOCategory.SERVICE_BASED)
        if "throttling" in names:
            categories.append(KIOCategory.THROTTLING)
        return tuple(categories)

    @staticmethod
    def _networks(group: Sequence[GroundTruthDisruption]) -> NetworkType:
        if all(d.mobile_only for d in group):
            return NetworkType.MOBILE
        return NetworkType.BOTH

    @staticmethod
    def _description(group: Sequence[GroundTruthDisruption]) -> str:
        first = group[0]
        parts = [f"cause={first.cause.value}", f"n_events={len(group)}"]
        if first.trigger_event_id is not None:
            parts.append(f"trigger={first.trigger_event_id}")
        return "; ".join(parts)

    # -- soft restrictions ----------------------------------------------------------

    def _restriction_entries(self,
                             restrictions: Sequence[RestrictionEpisode],
                             years: set[int]) -> Iterable[KIOEvent]:
        category_map = {
            "service-based": KIOCategory.SERVICE_BASED,
            "throttling": KIOCategory.THROTTLING,
        }
        for episode in restrictions:
            country = self._registry.get(episode.country_iso2)
            rng = substream(self._seed, "kio-restriction",
                            episode.episode_id)
            if rng.random() >= self._config.p_report_restriction:
                continue
            start_day = local_date(episode.span.start, country.utc_offset)
            year = _year_of_day(start_day)
            if year not in years:
                continue
            yield KIOEvent(
                event_id=next(self._ids),
                year=year,
                country_name=self._name_variant(country, rng),
                start_day=start_day,
                end_day=local_date(episode.span.end - 1, country.utc_offset),
                categories=tuple(category_map[r]
                                 for r in episode.restrictions),
                networks=NetworkType.BOTH,
                nationwide=True,
                description="soft restriction",
            )

    # -- helpers ---------------------------------------------------------------------

    def _name_variant(self, country: Country,
                      rng: np.random.Generator) -> str:
        if country.aliases and rng.random() < self._config.p_alias_name:
            return str(rng.choice(list(country.aliases)))
        return country.name


def _year_of_day(days_since_epoch: int) -> int:
    """Calendar year of a local day index."""
    return time.gmtime(days_since_epoch * DAY).tm_year
