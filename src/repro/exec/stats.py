"""Execution observability.

:class:`ExecStats` is the run report surfaced by ``repro run --stats``:
wall time per pipeline stage, cache hits and misses at shard
granularity, and the per-shard timing spread.  ``--stats --json`` emits
:meth:`ExecStats.as_dict` so benchmark trajectory files can track
executor performance across revisions.

Since the :mod:`repro.obs` subsystem landed, the pipeline no longer
fills this report in by hand: it is **derived** from the run's span
tree and metrics registry via :meth:`ExecStats.from_obs` — stage
timings come from the ``stage:*`` spans, shard timings from the
``exec.shard`` spans, cache counters from the ``exec.cache.*``
counters, and the executor shape from the curate-stage span
attributes.  The dataclass (and its mutating helpers) remain for
direct executor callers and for constructing reports by hand; the
``as_dict()``/``rows()`` output is byte-compatible either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.obs.runtime import Observability

from repro.obs.telemetry import SHARDS_COMPLETED_COUNTER, \
    SHARDS_TOTAL_GAUGE

__all__ = ["ExecStats", "StageTiming", "publish_shard_done",
           "publish_shard_plan"]

#: Span-name prefix identifying pipeline stages in the span tree.
STAGE_PREFIX = "stage:"

#: Span name the executor gives each executed shard.
SHARD_SPAN = "exec.shard"


def publish_shard_plan(metrics: Any, total: int) -> None:
    """Publish the run's shard total to the progress series.

    The heartbeat sampler (:mod:`repro.obs.telemetry`) reads the
    ``exec.shards.*`` series to report completed/total and an ETA while
    the run is still going; cache-served shards count as completed via
    :func:`publish_shard_done` like any other.
    """
    metrics.gauge(SHARDS_TOTAL_GAUGE).set(float(total))


def publish_shard_done(metrics: Any, n: int = 1) -> None:
    """Count ``n`` shards as completed on the progress series."""
    if n:
        metrics.counter(SHARDS_COMPLETED_COUNTER).inc(n)


@dataclass
class StageTiming:
    """Wall time for one pipeline stage."""

    name: str
    seconds: float


@dataclass
class ExecStats:
    """What one pipeline run did and what it cost."""

    workers: int = 1
    backend: str = "serial"
    n_shards: int = 0
    stages: List[StageTiming] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    #: Memoized-signal LRU traffic (``platform.signal.cache.*``
    #: counters), aggregated across all workers and backends.
    signal_cache_hits: int = 0
    signal_cache_misses: int = 0
    signal_cache_evictions: int = 0
    shard_seconds: Dict[int, float] = field(default_factory=dict)
    n_records: int = 0
    #: True when the merge proceeded without some countries because
    #: their sources kept failing (see :mod:`repro.resilience`).
    degraded: bool = False
    #: The countries the run gave up on, sorted.
    quarantined: Tuple[str, ...] = ()

    # -- recording --------------------------------------------------------------

    def add_stage(self, name: str, seconds: float) -> None:
        self.stages.append(StageTiming(name=name, seconds=seconds))

    def record_shard(self, index: int, seconds: float) -> None:
        self.shard_seconds[index] = seconds

    # -- derivation from the span tree -------------------------------------------

    @classmethod
    def from_obs(cls, obs: "Observability") -> "ExecStats":
        """Derive the execution report from an observability session.

        The session must cover one pipeline run: ``stage:*`` spans for
        the stage timings (ordered by start time), ``exec.shard`` spans
        for the per-shard spread, ``exec.cache.hits``/``.misses``
        counters, and the executor shape annotated on the curate-stage
        span by :class:`repro.exec.workers.ShardedCurationExecutor`.
        """
        stats = cls()
        spans = obs.tracer.spans()
        stage_spans = sorted(
            (s for s in spans if s.name.startswith(STAGE_PREFIX)),
            key=lambda s: s.start)
        for span in stage_spans:
            stats.add_stage(span.name[len(STAGE_PREFIX):], span.duration)
            if span.name == STAGE_PREFIX + "curate":
                stats.workers = int(span.attrs.get("workers", stats.workers))
                stats.backend = str(span.attrs.get("backend", stats.backend))
                stats.n_shards = int(
                    span.attrs.get("n_shards", stats.n_shards))
                stats.n_records = int(
                    span.attrs.get("n_records", stats.n_records))
                stats.degraded = bool(
                    span.attrs.get("degraded", stats.degraded))
                stats.quarantined = tuple(
                    span.attrs.get("quarantined", stats.quarantined))
        for span in spans:
            if span.name == SHARD_SPAN and "shard" in span.attrs:
                stats.record_shard(int(span.attrs["shard"]), span.duration)
        counters = obs.metrics.snapshot()["counters"]
        stats.cache_hits = int(counters.get("exec.cache.hits", 0))
        stats.cache_misses = int(counters.get("exec.cache.misses", 0))
        stats.signal_cache_hits = int(
            counters.get("platform.signal.cache.hits", 0))
        stats.signal_cache_misses = int(
            counters.get("platform.signal.cache.misses", 0))
        stats.signal_cache_evictions = int(
            counters.get("platform.signal.cache.evictions", 0))
        return stats

    # -- derived ----------------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages)

    @property
    def curate_skipped(self) -> bool:
        """Whether the observation+curation stage was fully cache-served."""
        return self.n_shards > 0 and self.cache_misses == 0

    @property
    def shard_skew(self) -> float:
        """Slowest shard over mean shard time (1.0 = perfectly even).

        Only shards that actually executed contribute; a fully
        cache-served run has no skew to report and returns 0.
        """
        if not self.shard_seconds:
            return 0.0
        times = list(self.shard_seconds.values())
        mean = sum(times) / len(times)
        if mean <= 0:
            return 0.0
        return max(times) / mean

    def perf_statistics(self) -> Dict[str, float]:
        """Flat perf metrics, keyed the way health checks and stored
        perf baselines expect (``perf.*`` / ``cache.*``).

        This is the bridge between the execution report and
        :mod:`repro.obs.health` / :mod:`repro.obs.baseline`: the same
        numbers that render in ``--stats`` feed the scorecard's budget
        checks and ``repro perf record``.
        """
        out: Dict[str, float] = {
            "perf.total_seconds": float(self.total_seconds),
        }
        for stage in self.stages:
            out[f"perf.stage_seconds.{stage.name}"] = float(stage.seconds)
        lookups = self.cache_hits + self.cache_misses
        out["cache.hit_rate"] = (self.cache_hits / lookups
                                 if lookups else 0.0)
        out["cache.hits"] = float(self.cache_hits)
        out["cache.misses"] = float(self.cache_misses)
        # cache.* keys are trend-only in baseline comparisons, so
        # adding the signal-cache series never regresses an older
        # baseline that predates them.
        queries = self.signal_cache_hits + self.signal_cache_misses
        out["cache.signal_hit_rate"] = (
            self.signal_cache_hits / queries if queries else 0.0)
        out["cache.signal_hits"] = float(self.signal_cache_hits)
        out["cache.signal_misses"] = float(self.signal_cache_misses)
        out["cache.signal_evictions"] = float(self.signal_cache_evictions)
        return out

    # -- rendering --------------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """Machine-readable form (stable keys; used by ``--stats --json``)."""
        return {
            "workers": self.workers,
            "backend": self.backend,
            "n_shards": self.n_shards,
            "stages": {stage.name: round(stage.seconds, 6)
                       for stage in self.stages},
            "total_seconds": round(self.total_seconds, 6),
            "cache": {"hits": self.cache_hits,
                      "misses": self.cache_misses,
                      "curate_skipped": self.curate_skipped},
            "signal_cache": {"hits": self.signal_cache_hits,
                             "misses": self.signal_cache_misses,
                             "evictions": self.signal_cache_evictions},
            "shards": {
                "executed": len(self.shard_seconds),
                "seconds": {str(k): round(v, 6)
                            for k, v in sorted(self.shard_seconds.items())},
                "skew": round(self.shard_skew, 4),
            },
            "n_records": self.n_records,
            "degraded": self.degraded,
            "quarantined": list(self.quarantined),
        }

    def rows(self) -> List[str]:
        """Human-readable report lines."""
        lines = [
            f"executor        {self.backend} x{self.workers} "
            f"({self.n_shards} shards)",
        ]
        for stage in self.stages:
            lines.append(f"stage {stage.name:<12} {stage.seconds:8.2f}s")
        lines.append(f"stage {'total':<12} {self.total_seconds:8.2f}s")
        lines.append(
            f"curation cache  {self.cache_hits} hits / "
            f"{self.cache_misses} misses"
            + ("  (stage skipped)" if self.curate_skipped else ""))
        if self.signal_cache_hits or self.signal_cache_misses:
            lines.append(
                f"signal cache    {self.signal_cache_hits} hits / "
                f"{self.signal_cache_misses} misses / "
                f"{self.signal_cache_evictions} evictions")
        if self.shard_seconds:
            slowest = max(self.shard_seconds.values())
            lines.append(
                f"shards executed {len(self.shard_seconds)}  "
                f"slowest {slowest:.2f}s  skew {self.shard_skew:.2f}x")
        lines.append(f"curated records {self.n_records}")
        if self.degraded:
            lines.append(
                f"DEGRADED        quarantined: "
                f"{', '.join(self.quarantined)}")
        return lines
