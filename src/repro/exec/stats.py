"""Execution observability.

:class:`ExecStats` is the lightweight report the sharded executor fills
in as it runs: wall time per pipeline stage, cache hits and misses at
shard granularity, and the per-shard timing spread.  ``repro run
--stats`` renders it for humans; ``--stats --json`` emits
:meth:`ExecStats.as_dict` so benchmark trajectory files can track
executor performance across revisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = ["ExecStats", "StageTiming"]


@dataclass
class StageTiming:
    """Wall time for one pipeline stage."""

    name: str
    seconds: float


@dataclass
class ExecStats:
    """What one pipeline run did and what it cost."""

    workers: int = 1
    backend: str = "serial"
    n_shards: int = 0
    stages: List[StageTiming] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    shard_seconds: Dict[int, float] = field(default_factory=dict)
    n_records: int = 0

    # -- recording --------------------------------------------------------------

    def add_stage(self, name: str, seconds: float) -> None:
        self.stages.append(StageTiming(name=name, seconds=seconds))

    def record_shard(self, index: int, seconds: float) -> None:
        self.shard_seconds[index] = seconds

    # -- derived ----------------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages)

    @property
    def curate_skipped(self) -> bool:
        """Whether the observation+curation stage was fully cache-served."""
        return self.n_shards > 0 and self.cache_misses == 0

    @property
    def shard_skew(self) -> float:
        """Slowest shard over mean shard time (1.0 = perfectly even).

        Only shards that actually executed contribute; a fully
        cache-served run has no skew to report and returns 0.
        """
        if not self.shard_seconds:
            return 0.0
        times = list(self.shard_seconds.values())
        mean = sum(times) / len(times)
        if mean <= 0:
            return 0.0
        return max(times) / mean

    # -- rendering --------------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """Machine-readable form (stable keys; used by ``--stats --json``)."""
        return {
            "workers": self.workers,
            "backend": self.backend,
            "n_shards": self.n_shards,
            "stages": {stage.name: round(stage.seconds, 6)
                       for stage in self.stages},
            "total_seconds": round(self.total_seconds, 6),
            "cache": {"hits": self.cache_hits,
                      "misses": self.cache_misses,
                      "curate_skipped": self.curate_skipped},
            "shards": {
                "executed": len(self.shard_seconds),
                "seconds": {str(k): round(v, 6)
                            for k, v in sorted(self.shard_seconds.items())},
                "skew": round(self.shard_skew, 4),
            },
            "n_records": self.n_records,
        }

    def rows(self) -> List[str]:
        """Human-readable report lines."""
        lines = [
            f"executor        {self.backend} x{self.workers} "
            f"({self.n_shards} shards)",
        ]
        for stage in self.stages:
            lines.append(f"stage {stage.name:<12} {stage.seconds:8.2f}s")
        lines.append(f"stage {'total':<12} {self.total_seconds:8.2f}s")
        lines.append(
            f"curation cache  {self.cache_hits} hits / "
            f"{self.cache_misses} misses"
            + ("  (stage skipped)" if self.curate_skipped else ""))
        if self.shard_seconds:
            slowest = max(self.shard_seconds.values())
            lines.append(
                f"shards executed {len(self.shard_seconds)}  "
                f"slowest {slowest:.2f}s  skew {self.shard_skew:.2f}x")
        lines.append(f"curated records {self.n_records}")
        return lines
