"""The sharded curation executor.

Splits the scenario's triggered countries into shards
(:mod:`repro.exec.shards`), serves warm shards from the content-addressed
cache (:mod:`repro.exec.cachestore`), runs cold shards in a
``concurrent.futures`` pool, and merges the per-country outputs through
:func:`repro.ioda.curation.finalize_records` so the parallel result is
byte-identical to a serial run.

Backends:

- ``serial``  — in-process loop (no pool; useful for debugging).
- ``thread``  — :class:`~concurrent.futures.ThreadPoolExecutor` over the
  shared platform.  Curation is numpy-heavy enough to overlap some work,
  and nothing is pickled.
- ``process`` — :class:`~concurrent.futures.ProcessPoolExecutor`; the
  world is **worker-resident**: a pool initializer (plus a module-level
  memo keyed by the config fingerprint) makes each worker process
  regenerate the deterministic scenario and build its platform exactly
  once per run, reusing them across every shard it executes.  Only
  small config dataclasses and the shard's investigation windows cross
  the process boundary.

The full-world investigation-window map is computed once, in
:meth:`ShardedCurationExecutor.curate` — it feeds both the LPT shard
weights and, restricted to each shard's countries, the shard's own
work list, so no shard recomputes it.

When an observability session is active (:mod:`repro.obs`), every
executed shard is traced as an ``exec.shard`` span parented under the
scheduling thread's current span: thread workers record straight into
the shared tracer with an explicit parent id, and process workers
collect into a local session whose spans and metrics the parent adopts
on completion.  Cache hits/misses are counted into the session's
metrics registry.  None of this touches the RNG substreams, so results
remain byte-identical with tracing on or off.

With a :class:`repro.resilience.ResilienceConfig`, each country becomes
one retried, breaker-guarded unit of work: transient source failures
back off and retry deterministically, and a country that exhausts its
budget is quarantined — the merge proceeds with the survivors and the
run reports ``degraded=True`` (or, under ``fail_fast``, the first
exhausted country aborts the run).  Runs with an active fault plan
bypass the shard cache entirely, in both directions.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, \
    ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro import io
from repro.errors import CircuitOpenError, ConfigurationError, \
    RetriesExhaustedError, SchemaError
from repro.exec.cachestore import CacheStore, fingerprint
from repro.exec.shards import DEFAULT_N_SHARDS, Shard, ShardPlan
from repro.exec.stats import SHARD_SPAN, ExecStats, publish_shard_done, \
    publish_shard_plan
from repro.obs.profile import ProfileConfig
from repro.obs.runtime import Observability, activate, current
from repro.obs.telemetry import TelemetryConfig
from repro.ioda.curation import CurationConfig, CurationPipeline, \
    finalize_records
from repro.ioda.platform import IODAPlatform, PlatformConfig
from repro.ioda.records import OutageRecord
from repro.resilience import BreakerBoard, ResilienceConfig, \
    call_with_retry, inject
from repro.timeutils.timestamps import TimeRange
from repro.world.scenario import ScenarioConfig, ScenarioGenerator, \
    WorldScenario

__all__ = ["BACKENDS", "ExecutorConfig", "ShardedCurationExecutor",
           "resident_world", "worker_init"]

BACKENDS = ("serial", "thread", "process")

#: Stage name under which curated shards are cached.  The columnar /
#: scalar detection switch (``REPRO_SCALAR_DETECT``, :mod:`repro.flags`)
#: is deliberately NOT part of the cache key: both paths produce
#: byte-identical records, so warm shard entries stay valid across
#: flag on/off runs — the same rule as ``signal_cache_size`` below.
_CURATE_STAGE = "curate"


@dataclass(frozen=True, kw_only=True)
class ExecutorConfig:
    """How the observation+curation stage is scheduled."""

    workers: int = 1
    backend: str = "thread"
    n_shards: Optional[int] = None
    #: Bound on the platform's memoized-signal LRU (None = platform
    #: default, 0 = disabled).  Not part of the shard cache key: cached
    #: and uncached queries are byte-identical, so warm shard entries
    #: stay valid across cache on/off A/B runs.
    signal_cache_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1: {self.workers}")
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; expected one of "
                f"{BACKENDS}")
        if self.n_shards is not None and self.n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be >= 1: {self.n_shards}")
        if self.signal_cache_size is not None \
                and self.signal_cache_size < 0:
            raise ConfigurationError(
                f"signal_cache_size must be >= 0: "
                f"{self.signal_cache_size}")


#: Per-country curated records, in the country order of the owning shard.
_ShardRecords = List[Tuple[str, List[OutageRecord]]]

#: Countries a shard gave up on (retries exhausted / breaker open).
_Quarantined = Tuple[str, ...]

#: What curating one shard produced: the surviving countries' records
#: plus the countries quarantined along the way.
_ShardResult = Tuple[_ShardRecords, _Quarantined]


def _curate_shard(scenario: WorldScenario,
                  platform_config: PlatformConfig,
                  curation_config: CurationConfig,
                  period: TimeRange, countries: Tuple[str, ...],
                  windows: Optional[
                      Mapping[str, Sequence[TimeRange]]] = None,
                  platform: Optional[IODAPlatform] = None,
                  resilience: Optional[ResilienceConfig] = None,
                  signal_cache_size: Optional[int] = None
                  ) -> _ShardResult:
    """Curate one shard's countries over a scenario.

    The per-country RNG substreams make this independent of every other
    shard; the only shared object is the (effectively read-only)
    platform, which in-process backends pass in to share its country
    caches and memoized signals.

    ``windows`` is the shard's own countries' investigation windows,
    already computed by the executor (which needs the full-world map
    for shard weighting anyway) — the shard never recomputes the
    world-wide map.  Direct callers may omit it and pay for the
    computation here.

    With a :class:`~repro.resilience.ResilienceConfig`, each country is
    one retried unit of work guarded by its own circuit breaker: the
    investigation runs under a per-attempt fault scope (which is what
    keys deterministic injection), transient failures back off and
    retry, and a country that exhausts its budget is either quarantined
    (returned in the second slot; the merge proceeds without it) or —
    under ``fail_fast`` — aborts the whole run.  Because curation is a
    pure function of the scenario, a retried attempt reproduces the
    fault-free bytes exactly.
    """
    if platform is None:
        platform = IODAPlatform(scenario, platform_config,
                                signal_cache_size=signal_cache_size)
    pipeline = CurationPipeline(platform, curation_config)
    if windows is None:
        windows = pipeline.country_windows(period)
    if resilience is None:
        return ([(iso2,
                  pipeline.investigate_country(iso2, windows[iso2], period))
                 for iso2 in countries], ())
    board = BreakerBoard(resilience.breaker)
    survivors: _ShardRecords = []
    quarantined: List[str] = []
    for iso2 in countries:
        try:
            records = call_with_retry(
                lambda iso2=iso2: pipeline.investigate_country(
                    iso2, windows[iso2], period),
                policy=resilience.retry, key=iso2, site="curate.country",
                breaker=board.get(iso2))
        except (RetriesExhaustedError, CircuitOpenError):
            if resilience.fail_fast:
                raise
            quarantined.append(iso2)
            continue
        survivors.append((iso2, records))
    return survivors, tuple(quarantined)


#: What one scheduled shard sends back: records, quarantined countries,
#: wall seconds, and — from process workers — the locally collected
#: spans, metrics, heartbeat events, and provenance capsules that the
#: parent grafts into the run's observability session.
_ShardOutcome = Tuple[_ShardRecords, _Quarantined, float, list,
                      Optional[dict], list, list]

#: The worker-resident world: one (scenario, platform) pair per process,
#: keyed by the fingerprint of everything that shaped it.  A pool worker
#: executing several shards of one run reuses the entry; a key change
#: (different run config in a hypothetically reused process) rebuilds
#: and replaces it.  Lives at module level so it survives across
#: :func:`_curate_shard_subprocess` calls within one worker process —
#: worker processes are forked per run, so entries never leak between
#: runs.
_WORKER_WORLD: Dict[str, Tuple[WorldScenario, IODAPlatform]] = {}

#: How many times this process built the world (the acceptance check
#: that the process backend generates the scenario once per worker per
#: run reads this through a per-pid gauge).
_WORLD_BUILDS = 0


def resident_world(scenario_config: ScenarioConfig,
                    platform_config: PlatformConfig,
                    signal_cache_size: Optional[int]
                    ) -> Tuple[WorldScenario, IODAPlatform]:
    """This process's scenario+platform, built at most once per config.

    Scenario generation is deterministic, so the resident world matches
    the parent's exactly; the platform's country caches and memoized
    signals accumulate across all shards the worker executes.
    """
    global _WORLD_BUILDS
    key = fingerprint(scenario_config, platform_config,
                      signal_cache_size)
    entry = _WORKER_WORLD.get(key)
    if entry is None:
        scenario = ScenarioGenerator(scenario_config).generate()
        platform = IODAPlatform(scenario, platform_config,
                                signal_cache_size=signal_cache_size)
        _WORKER_WORLD.clear()
        entry = _WORKER_WORLD[key] = (scenario, platform)
        _WORLD_BUILDS += 1
    return entry


def worker_init(scenario_config: ScenarioConfig,
                 platform_config: PlatformConfig,
                 signal_cache_size: Optional[int]) -> None:
    """Pool initializer: pre-build the resident world once per process.

    Runs before the worker's first shard, outside any fault scope or
    observability session (fault hooks are inert outside a scope, so
    generation here matches generation inside a chaos run byte for
    byte).  The build is memoized, so the first shard call finds it.
    """
    resident_world(scenario_config, platform_config, signal_cache_size)


def _curate_shard_subprocess(
        scenario_config: ScenarioConfig,
        platform_config: PlatformConfig,
        curation_config: CurationConfig,
        period: TimeRange,
        countries: Tuple[str, ...],
        shard_index: int = -1,
        collect_obs: bool = False,
        resilience: Optional[ResilienceConfig] = None,
        profile: Optional[ProfileConfig] = None,
        windows: Optional[Mapping[str, Sequence[TimeRange]]] = None,
        signal_cache_size: Optional[int] = None,
        telemetry: Optional[TelemetryConfig] = None,
        provenance: bool = False) -> _ShardOutcome:
    """Process-pool entry point: curate over the worker-resident world.

    Module-level so it pickles by reference.  The scenario and platform
    come from the per-process memo (:func:`resident_world`) — built by
    the pool initializer, reused by every shard this worker executes —
    so a shard call ships only configs and its own countries' windows
    across the process boundary.
    When the parent run has observability enabled, the worker collects
    into its own session and returns the span records and metrics
    snapshot for the parent to adopt — ids are remapped on adoption, so
    nothing here needs to coordinate with the parent tracer.  The
    parent's (picklable) profile config travels the same way: the
    worker profiles into its local session and the readings ride home
    in the adopted spans' attributes.  The fault
    plan does not survive the process boundary as ambient state, so the
    worker re-installs it from the (picklable) resilience config —
    injection decisions are pure functions of the plan, so the worker
    faults exactly where an in-process backend would.
    """
    started = time.perf_counter()
    plan = resilience.fault_plan if resilience is not None else None
    if not collect_obs:
        with inject(plan):
            scenario, platform = resident_world(
                scenario_config, platform_config, signal_cache_size)
            result, quarantined = _curate_shard(
                scenario, platform_config, curation_config, period,
                countries, windows=windows, platform=platform,
                resilience=resilience)
        return (result, quarantined, time.perf_counter() - started,
                [], None, [], [])
    # Workers cannot write the parent's journal, so their sampler (the
    # parent's picklable telemetry config travels like the profile
    # config) buffers heartbeats locally; they ride home in the outcome
    # and the parent journals them via ``adopt_heartbeats``.
    local = Observability(profile=profile, telemetry=telemetry)
    if provenance:
        # The worker-local recorder buffers lineage capsules (no
        # journal down here); they ride home in the outcome and the
        # parent grafts them via ``adopt_provenance``.
        local.enable_provenance()
    with activate(local), inject(plan):
        local.start_telemetry()
        try:
            with local.span(SHARD_SPAN, shard=shard_index,
                            countries=len(countries), backend="process"):
                scenario, platform = resident_world(
                    scenario_config, platform_config, signal_cache_size)
                result, quarantined = _curate_shard(
                    scenario, platform_config, curation_config, period,
                    countries, windows=windows, platform=platform,
                    resilience=resilience)
        finally:
            local.stop_telemetry()
        # Gauges merge last-write-wins per series, so each worker
        # process reports its cumulative build count under its own pid
        # — the parent-side sum counts world builds per process (the
        # "generated at most once per worker per run" assertion).
        local.metrics.gauge("exec.worker.world_builds",
                            pid=os.getpid()).set(float(_WORLD_BUILDS))
    return (result, quarantined, time.perf_counter() - started,
            local.tracer.spans(), local.metrics.snapshot(),
            local.heartbeats,
            list(local.provenance.capsules) if provenance else [])


class ShardedCurationExecutor:
    """Runs the observation+curation stage sharded, cached, and merged."""

    def __init__(self, *, study_period: TimeRange,
                 platform_config: PlatformConfig | None = None,
                 curation_config: CurationConfig | None = None,
                 cache: CacheStore | None = None,
                 config: ExecutorConfig | None = None,
                 resilience: ResilienceConfig | None = None):
        self._period = study_period
        self._platform_config = platform_config or PlatformConfig()
        self._curation_config = curation_config or CurationConfig()
        self._cache = cache
        self._config = config or ExecutorConfig()
        self._resilience = resilience

    @property
    def config(self) -> ExecutorConfig:
        return self._config

    # -- main entry -------------------------------------------------------------

    def curate(self, scenario: WorldScenario,
               stats: ExecStats | None = None) -> List[OutageRecord]:
        """Curate every triggered country of ``scenario``, in shards."""
        obs = current()
        stats = stats if stats is not None else ExecStats()
        stats.workers = self._config.workers
        stats.backend = self._config.backend
        obs.annotate(workers=self._config.workers,
                     backend=self._config.backend)

        platform = IODAPlatform(
            scenario, self._platform_config,
            signal_cache_size=self._config.signal_cache_size)
        pipeline = CurationPipeline(platform, self._curation_config)
        # Computed once, here: the full-world window map feeds the LPT
        # weights below, and each shard receives just its own
        # countries' slice — no shard recomputes the world-wide map.
        windows = pipeline.country_windows(self._period)
        # Weight = total window seconds: curation cost is dominated by
        # how much signal the dashboards must replay per country.
        weights = {
            iso2: float(sum(w.duration for w in country_windows))
            for iso2, country_windows in windows.items()}
        plan = ShardPlan.split(
            sorted(windows), self._config.n_shards or DEFAULT_N_SHARDS,
            weights=weights)
        stats.n_shards = len(plan)
        obs.annotate(n_shards=len(plan))
        publish_shard_plan(obs.metrics, len(plan))

        # Chaos runs never touch the shard cache: a planted payload could
        # mask the very failures being exercised, and a degraded shard
        # must never be served to a later clean run.  Provenance runs
        # bypass it too — a warm hit would skip the adjudication whose
        # lineage capsules the run exists to capture (the records are
        # identical either way, so cached entries stay valid).
        use_cache = (self._cache is not None
                     and obs.provenance is None
                     and (self._resilience is None
                          or self._resilience.fault_plan is None))

        by_shard: Dict[int, _ShardRecords] = {}
        cold: List[Shard] = []
        for shard in plan:
            cached = self._cache_get(scenario, shard) if use_cache else None
            if cached is not None:
                by_shard[shard.index] = cached
                stats.cache_hits += 1
            else:
                cold.append(shard)
        stats.cache_misses = len(cold)
        obs.metrics.counter("exec.cache.hits").inc(stats.cache_hits)
        obs.metrics.counter("exec.cache.misses").inc(len(cold))
        publish_shard_done(obs.metrics, stats.cache_hits)

        quarantined: List[str] = []
        if cold:
            executed = self._execute(scenario, platform, windows, cold,
                                     stats)
            for shard, (shard_records, shard_quarantined) \
                    in executed.items():
                by_shard[shard.index] = shard_records
                quarantined.extend(shard_quarantined)
                if use_cache and not shard_quarantined:
                    self._cache_put(scenario, shard, shard_records)

        stats.degraded = bool(quarantined)
        stats.quarantined = tuple(sorted(quarantined))
        obs.annotate(degraded=stats.degraded,
                     quarantined=list(stats.quarantined))
        for iso2 in stats.quarantined:
            obs.metrics.counter("resilience.quarantined",
                                country=iso2).inc()

        dropped = set(quarantined)
        by_country = {iso2: records
                      for shard_records in by_shard.values()
                      for iso2, records in shard_records}
        merged = finalize_records(
            by_country[iso2] for iso2 in plan.countries
            if iso2 not in dropped)
        stats.n_records = len(merged)
        obs.annotate(n_records=len(merged))
        return merged

    # -- scheduling -------------------------------------------------------------

    def _execute(self, scenario: WorldScenario, platform: IODAPlatform,
                 windows: Mapping[str, List[TimeRange]],
                 cold: List[Shard],
                 stats: ExecStats) -> Dict[Shard, _ShardResult]:
        obs = current()

        def shard_windows(shard: Shard) -> Dict[str, List[TimeRange]]:
            return {iso2: windows[iso2] for iso2 in shard.countries}
        # Shard spans run on pool threads (empty span stacks) or in
        # other processes, so the scheduling thread's innermost span —
        # the curate stage — is captured here and threaded through as
        # the explicit parent.
        parent_id = obs.tracer.current_id()
        workers = min(self._config.workers, len(cold))
        backend = self._config.backend
        if workers <= 1 and backend != "process":
            backend = "serial"

        if backend == "serial":
            results: Dict[Shard, _ShardResult] = {}
            for shard in cold:
                started = time.perf_counter()
                with obs.span(SHARD_SPAN, parent=parent_id,
                              shard=shard.index,
                              countries=len(shard.countries),
                              backend="serial"):
                    results[shard] = _curate_shard(
                        scenario, self._platform_config,
                        self._curation_config, self._period,
                        shard.countries, windows=shard_windows(shard),
                        platform=platform, resilience=self._resilience)
                stats.record_shard(
                    shard.index, time.perf_counter() - started)
                publish_shard_done(obs.metrics)
            return results

        if backend == "thread":
            def timed(shard: Shard) -> _ShardOutcome:
                started = time.perf_counter()
                with obs.span(SHARD_SPAN, parent=parent_id,
                              shard=shard.index,
                              countries=len(shard.countries),
                              backend="thread"):
                    result, quarantined = _curate_shard(
                        scenario, self._platform_config,
                        self._curation_config, self._period,
                        shard.countries, windows=shard_windows(shard),
                        platform=platform, resilience=self._resilience)
                return (result, quarantined,
                        time.perf_counter() - started, [], None, [], [])

            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = {pool.submit(timed, shard): shard
                           for shard in cold}
                return self._collect(futures, stats, obs, parent_id)

        with ProcessPoolExecutor(
                max_workers=workers, initializer=worker_init,
                initargs=(scenario.config, self._platform_config,
                          self._config.signal_cache_size)) as pool:
            futures = {
                pool.submit(
                    _curate_shard_subprocess, scenario.config,
                    self._platform_config, self._curation_config,
                    self._period, shard.countries, shard.index,
                    obs.enabled, self._resilience,
                    getattr(obs, "profile", None),
                    windows=shard_windows(shard),
                    signal_cache_size=self._config.signal_cache_size,
                    telemetry=getattr(obs, "telemetry", None),
                    provenance=obs.provenance is not None,
                ): shard
                for shard in cold}
            return self._collect(futures, stats, obs, parent_id)

    @staticmethod
    def _collect(futures, stats: ExecStats, obs,
                 parent_id) -> Dict[Shard, _ShardResult]:
        results: Dict[Shard, _ShardResult] = {}
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                shard = futures[future]
                (shard_records, quarantined, seconds, spans,
                 metrics, heartbeats, capsules) = future.result()
                results[shard] = (shard_records, quarantined)
                stats.record_shard(shard.index, seconds)
                publish_shard_done(obs.metrics)
                if spans:
                    obs.tracer.adopt(spans, parent_id)
                if metrics:
                    obs.metrics.merge(metrics)
                if heartbeats:
                    obs.adopt_heartbeats(heartbeats)
                if capsules:
                    obs.adopt_provenance(capsules)
        return results

    # -- cache ------------------------------------------------------------------

    def _shard_key(self, scenario: WorldScenario,
                   shard: Shard) -> Tuple[object, ...]:
        return (scenario.config, self._platform_config,
                self._curation_config, self._period, shard.countries)

    def _cache_get(self, scenario: WorldScenario,
                   shard: Shard) -> Optional[_ShardRecords]:
        if self._cache is None:
            return None
        payload = self._cache.get(
            _CURATE_STAGE, *self._shard_key(scenario, shard))
        if payload is None:
            return None
        try:
            return [(iso2, [io.record_from_dict(d) for d in dicts])
                    for iso2, dicts in payload["records"]]
        except (KeyError, TypeError, ValueError, SchemaError):
            return None

    def _cache_put(self, scenario: WorldScenario, shard: Shard,
                   shard_records: _ShardRecords) -> None:
        if self._cache is None:
            return
        payload = {
            "records": [
                [iso2, [io.record_to_dict(r) for r in records]]
                for iso2, records in shard_records],
        }
        self._cache.put(_CURATE_STAGE, payload,
                        *self._shard_key(scenario, shard))
