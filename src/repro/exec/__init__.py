"""repro.exec — the sharded, cached pipeline execution engine.

The observation+curation stage dominates pipeline cost and is
embarrassingly parallel by country (the paper observes its 155 countries
independently, §3–4).  This package splits that work into deterministic
country shards, runs them in a selectable ``concurrent.futures`` pool,
caches each shard's output content-addressed by everything that
determines it, and merges the results byte-identically to a serial run.

Public surface:

- :class:`ExecutorConfig` / :class:`ShardedCurationExecutor` — scheduling.
- :class:`ShardPlan` — deterministic country sharding.
- :class:`CacheStore` / :func:`fingerprint` / :data:`CACHE_VERSION` —
  content-addressed stage caching.
- :class:`ExecStats` — per-stage wall time, cache hit/miss counters, and
  shard skew, surfaced by ``repro run --stats``.
"""

from repro.exec.cachestore import CACHE_VERSION, CacheStore, fingerprint
from repro.exec.shards import DEFAULT_N_SHARDS, Shard, ShardPlan
from repro.exec.stats import ExecStats, StageTiming
from repro.exec.workers import BACKENDS, ExecutorConfig, \
    ShardedCurationExecutor

__all__ = [
    "BACKENDS",
    "CACHE_VERSION",
    "CacheStore",
    "DEFAULT_N_SHARDS",
    "ExecStats",
    "ExecutorConfig",
    "Shard",
    "ShardPlan",
    "ShardedCurationExecutor",
    "StageTiming",
    "fingerprint",
]
