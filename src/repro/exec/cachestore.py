"""Content-addressed stage cache.

The seed-keyed record cache this replaces had a silent staleness bug: a
changed :class:`~repro.ioda.curation.CurationConfig` or
:class:`~repro.core.matching.MatchingConfig` reused records curated under
the old parameters, because only the seed and a hand-bumped version
constant entered the file name.  Here every cache key is derived from the
*content* that determines the stage's output — the seed, a canonical
fingerprint of every config the stage consumes, the study period, the
stage name, and :data:`CACHE_VERSION` — so any parameter change is a
guaranteed miss.

Entries are stored per shard (see :mod:`repro.exec.shards`), which gives
warm re-runs stage-skipping granularity and lets a partially warm cache
recompute only the shards it is missing.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from repro.obs.runtime import current

__all__ = ["CACHE_VERSION", "CacheStore", "fingerprint"]

#: Bump when generator or curation semantics change, invalidating caches.
#: v4: per-country curation RNG substreams (sharded executor).
CACHE_VERSION = 4


def _canonical(obj: Any) -> Any:
    """A JSON-serializable canonical form for fingerprinting.

    Dataclasses are tagged with their class name so two config types with
    identical field values do not collide; mappings are sorted so dict
    order never leaks into the key.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return ["enum", type(obj).__name__, _canonical(obj.value)]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {f.name: _canonical(getattr(obj, f.name))
                  for f in dataclasses.fields(obj)}
        return ["dataclass", type(obj).__name__, fields]
    if isinstance(obj, Mapping):
        items = [[_canonical(k), _canonical(v)] for k, v in obj.items()]
        items.sort(key=lambda kv: json.dumps(kv[0], sort_keys=True))
        return ["mapping", items]
    if isinstance(obj, (list, tuple, set, frozenset)):
        seq = [_canonical(item) for item in obj]
        if isinstance(obj, (set, frozenset)):
            seq.sort(key=lambda item: json.dumps(item, sort_keys=True))
        return seq
    if isinstance(obj, Path):
        return str(obj)
    return ["repr", repr(obj)]


def fingerprint(*parts: Any) -> str:
    """A stable hex digest of arbitrary key material.

    >>> fingerprint(1, "a") == fingerprint(1, "a")
    True
    >>> fingerprint(1, "a") == fingerprint(1, "b")
    False
    """
    payload = json.dumps([_canonical(part) for part in parts],
                         sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(payload.encode("utf-8"),
                           digest_size=12).hexdigest()


class CacheStore:
    """Content-addressed JSON cache under a root directory.

    File layout: ``<root>/<stage>-v<CACHE_VERSION>-<digest>.json``.  The
    digest covers everything passed as key material, so distinct configs,
    periods, seeds, or shard compositions occupy distinct files and can
    never shadow one another.
    """

    def __init__(self, root: Path):
        self._root = Path(root)

    @property
    def root(self) -> Path:
        return self._root

    def path_for(self, stage: str, *key_parts: Any) -> Path:
        digest = fingerprint(CACHE_VERSION, stage, *key_parts)
        return self._root / f"{stage}-v{CACHE_VERSION}-{digest}.json"

    def get(self, stage: str, *key_parts: Any) -> Optional[Dict[str, Any]]:
        """The cached payload for a key, or None on a miss.

        A corrupt entry (interrupted write, disk trouble) reads as a miss
        rather than poisoning the run.
        """
        obs = current()
        path = self.path_for(stage, *key_parts)
        if not path.exists():
            obs.metrics.counter("cachestore.misses", stage=stage).inc()
            return None
        try:
            text = path.read_text(encoding="utf-8")
            payload = json.loads(text)
        except (OSError, ValueError):
            obs.metrics.counter("cachestore.misses", stage=stage).inc()
            return None
        if not isinstance(payload, dict):
            obs.metrics.counter("cachestore.misses", stage=stage).inc()
            return None
        obs.metrics.counter("cachestore.hits", stage=stage).inc()
        obs.metrics.counter("cachestore.bytes_read",
                            stage=stage).inc(len(text))
        return payload

    def put(self, stage: str, payload: Dict[str, Any],
            *key_parts: Any) -> Optional[Path]:
        """Atomically persist a payload under its content key.

        Writes are best-effort: an unwritable root, a vanished
        directory, or a full disk turns the write into a no-op (counted
        as ``cachestore.write_errors`` and returning None) so a cache
        that breaks mid-stage degrades the run to uncached execution
        instead of failing it.
        """
        path = self.path_for(stage, *key_parts)
        text = json.dumps(payload)
        tmp = path.with_suffix(".tmp")
        try:
            self._root.mkdir(parents=True, exist_ok=True)
            tmp.write_text(text, encoding="utf-8")
            tmp.replace(path)
        except OSError:
            current().metrics.counter("cachestore.write_errors",
                                      stage=stage).inc()
            return None
        current().metrics.counter("cachestore.bytes_written",
                                  stage=stage).inc(len(text))
        return path
