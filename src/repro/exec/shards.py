"""Deterministic sharding of the curation workload.

The paper's pipeline is embarrassingly parallel by country: each of the
155 countries is observed and curated independently (§3–4), so the
natural shard is a set of countries.  :class:`ShardPlan` splits the
triggered-country list into a fixed number of shards *independently of
the worker count* — the shard is also the cache granule, and tying it to
``workers`` would invalidate a warm cache whenever the pool size changed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["DEFAULT_N_SHARDS", "Shard", "ShardPlan"]

#: Default shard count: enough granularity to keep a small pool busy and
#: to localize cache invalidation, few enough that per-shard overhead
#: (scenario regeneration in process workers) stays negligible.
DEFAULT_N_SHARDS = 8


@dataclass(frozen=True)
class Shard:
    """One unit of schedulable, cacheable work."""

    index: int
    countries: Tuple[str, ...]


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic assignment of countries to shards."""

    shards: Tuple[Shard, ...]

    @classmethod
    def split(cls, countries: Sequence[str],
              n_shards: int = DEFAULT_N_SHARDS,
              weights: Optional[Mapping[str, float]] = None) -> "ShardPlan":
        """Partition countries into ``n_shards`` balanced shards.

        With ``weights`` (e.g. total investigation-window seconds per
        country), a longest-processing-time greedy assignment keeps the
        heavy hitters from piling into one shard; without, countries are
        round-robined alphabetically.  Both assignments depend only on
        the inputs — never on worker count or timing — so the plan, and
        with it every shard cache key, is reproducible.  Empty shards
        are dropped.
        """
        if n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1: {n_shards}")
        ordered = sorted(set(countries))
        buckets: List[List[str]] = [[] for _ in range(n_shards)]
        if weights is None:
            for position, iso2 in enumerate(ordered):
                buckets[position % n_shards].append(iso2)
        else:
            heaviest_first = sorted(
                ordered, key=lambda c: (-float(weights.get(c, 0.0)), c))
            heap = [(0.0, index) for index in range(n_shards)]
            for iso2 in heaviest_first:
                load, index = heapq.heappop(heap)
                buckets[index].append(iso2)
                heapq.heappush(
                    heap, (load + float(weights.get(iso2, 0.0)), index))
        shards = tuple(
            Shard(index=index, countries=tuple(sorted(bucket)))
            for index, bucket in enumerate(buckets) if bucket)
        return cls(shards=shards)

    def __iter__(self):
        return iter(self.shards)

    def __len__(self) -> int:
        return len(self.shards)

    @property
    def countries(self) -> Tuple[str, ...]:
        """All countries in the plan, in global (sorted) merge order."""
        return tuple(sorted(
            iso2 for shard in self.shards for iso2 in shard.countries))

    def shard_of(self) -> Dict[str, int]:
        """Country → shard-index lookup."""
        return {iso2: shard.index
                for shard in self.shards for iso2 in shard.countries}
