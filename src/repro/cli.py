"""Command-line interface.

``python -m repro <command>`` drives the pipeline from a shell:

- ``run``      — run the full pipeline and print the headline tables;
  ``--workers N`` shards the observation+curation stage across a worker
  pool, ``--stats`` appends the execution report, ``--stats --json``
  emits it machine-readable for benchmark trajectories.  Observability
  exports: ``--journal RUN.jsonl`` streams the JSONL run journal,
  ``--trace TRACE.json`` writes a Chrome ``trace_event`` file (open in
  ``chrome://tracing`` or Perfetto), ``--metrics-json METRICS.json``
  dumps the metrics registry snapshot.  Resilience:
  ``--inject-faults SPEC`` runs deterministic chaos against the data
  sources, ``--max-retries N`` sets the retry budget, and
  ``--fail-fast``/``--degrade`` choose between aborting on an exhausted
  source and quarantining it (see :mod:`repro.resilience`).
- ``stream``   — run the same pipeline incrementally: bins replay under
  a watermark advancing ``--step`` at a time, live
  ``open``/``update``/``close`` event lifecycles print as they happen
  (``--events`` for every record), and the finalized result is
  byte-identical to ``run``.  ``--inject-faults`` runs chaos against
  the bin source; ``--journal`` records every lifecycle event as a
  ``stream.event`` line and ``--heartbeat`` adds live ``stream``
  blocks (watermark, lag, open events) to the heartbeats.
- ``report``   — regenerate EXPERIMENTS.md.
- ``export``   — write the curated records and harmonized KIO events to
  JSON files (the paper's released dataset artifact).
- ``signals``  — print an ASCII rendering of a country's three signals
  over a UTC time window.
- ``triage``   — run the §7 triage heuristic over the most recent curated
  events.
- ``explain``  — render the full decision chain behind one curated (or
  dismissed) record from a provenance-enabled run's journal:
  ``repro explain RUN RECORD_ID`` (a global record id or a capsule id
  prefix; RUN is a journal path or a registered run ID).
- ``trace``    — ``trace summarize RUN`` replays a run journal (a path
  or a registered run ID) and prints the slowest spans and hottest
  counters; ``trace diff A B`` attributes the wall-time delta between
  two runs to specific span paths (top-N regressed/improved).
- ``health``   — replay the fidelity scorecard journaled by a run
  (``repro health RUN``); exits non-zero on a ``fail`` grade.
- ``runs``     — the cross-run registry (``--runs-dir``): ``runs list``
  renders the trend table across registered runs, ``runs show RUN``
  one run's record (capsule counts and decision tallies included),
  ``runs diff A B`` a tolerance-banded comparison (add
  ``--provenance`` to attribute the record delta to the earliest
  flipped curation decision), and ``runs register RUN.jsonl`` files an
  existing journal.
- ``metrics``  — ``metrics export RUN`` emits the run's final metrics
  snapshot as OpenMetrics/Prometheus text exposition.
- ``perf``     — perf-baseline trajectory: ``perf record NAME`` stores a
  perf+fidelity baseline under ``benchmarks/baselines/``, ``perf
  compare BASELINE`` re-runs and diffs with tolerance bands (non-zero
  exit on regression), ``perf report`` renders the trajectory table.
- ``serve``    — the async serving layer: ``serve build`` precomputes a
  run's content-addressed artifact store (event feeds, signal tiles,
  reports; blake2b addresses double as HTTP ETags), ``serve run``
  serves it over HTTP until interrupted, and ``serve loadgen`` replays
  a seeded deterministic traffic mix (``--mix
  dashboard|events|zoom``) at ``--concurrency`` simulated clients —
  in-process, ``--tcp`` against a private spawned server, or ``--url``
  against a running one — printing the SLO report (p50/p99 per route,
  throughput, cache hit-rate) with ``--record``/``--compare`` gating
  it against a stored perf baseline.

``run`` also accepts ``--profile`` (per-span CPU/RSS readings into the
span attributes and journal) and ``--profile-alloc DEPTH`` (add
tracemalloc allocation deltas captured at the given stack depth), plus
``--health`` to print the run's fidelity scorecard, ``--heartbeat
INTERVAL`` to stream live ``heartbeat`` events into the journal while
the run executes, and ``--runs-dir`` (global) to file the journal into
the run registry under a content-addressed run ID.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis import (
    analyze_temporal,
    group_country_years,
    observability_table,
    summarize_merged,
)
from repro.analysis.observability import execution_report
from repro.analysis.report import build_report, render_markdown
from repro.core.heuristics import ShutdownTriage
from repro import api
from repro.errors import ConfigurationError, ResilienceError, SignalError
from repro.exec import BACKENDS
from repro.resilience import ResilienceConfig, RetryPolicy
from repro.io import dump_kio_events, dump_records, dump_records_csv
from repro.obs import BASELINE_DIR, HealthReport, Observability, \
    PerfBaseline, ProfileConfig, ProvenanceError, RunRegistry, \
    compare_baselines, diff_events, diff_provenance, explain_record, \
    list_baselines, load_baseline, parse_interval, read_journal, \
    run_statistics, save_baseline, snapshot_to_openmetrics, \
    summarize_events, trajectory_rows, write_chrome_trace
from repro.ioda.platform import IODAPlatform
from repro.signals.entities import Entity
from repro.signals.kinds import SignalKind
from repro.timeutils.timestamps import TimeRange, parse_utc
from repro.world.scenario import STUDY_PERIOD, ScenarioConfig, \
    ScenarioGenerator

__all__ = ["main", "build_parser"]

YEARS = [2018, 2019, 2020, 2021]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Destination Unreachable' "
                    "(SIGCOMM 2023)")
    parser.add_argument("--seed", type=int, default=2023,
                        help="scenario seed (default 2023)")
    parser.add_argument("--cache-dir", type=Path, default=Path(".cache"),
                        help="curation cache directory (default .cache)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker pool size for the sharded "
                             "observation+curation stage (default 1)")
    parser.add_argument("--backend", choices=BACKENDS, default="thread",
                        help="worker pool backend (default thread)")
    parser.add_argument("--shards", type=int, default=None,
                        help="shard count override (default: engine "
                             "default, independent of --workers)")
    parser.add_argument("--signal-cache-size", type=int, default=None,
                        dest="signal_cache_size", metavar="N",
                        help="bound on the platform's memoized-signal "
                             "LRU (default: platform default; 0 "
                             "disables memoization for A/B runs — "
                             "results are byte-identical either way)")
    parser.add_argument("--runs-dir", type=Path, default=None,
                        dest="runs_dir", metavar="DIR",
                        help="run-registry directory: 'repro run' files "
                             "its journal there under a "
                             "content-addressed run ID, and the "
                             "trace/health/runs/metrics commands "
                             "resolve run IDs against it (read "
                             "commands default to runs/)")
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run",
                              help="run the pipeline, print summaries")
    run.add_argument("--stats", action="store_true",
                     help="print the execution report (stage wall time, "
                          "cache hits/misses, shard skew)")
    run.add_argument("--json", action="store_true",
                     help="with --stats, emit the report as JSON only")
    run.add_argument("--trace", type=Path, default=None, metavar="PATH",
                     help="write a Chrome trace_event JSON of the run "
                          "(open in chrome://tracing or Perfetto)")
    run.add_argument("--journal", type=Path, default=None, metavar="PATH",
                     help="stream a JSONL run journal (replay with "
                          "'repro trace summarize PATH')")
    run.add_argument("--metrics-json", type=Path, default=None,
                     metavar="PATH", dest="metrics_json",
                     help="write the metrics registry snapshot as JSON")
    run.add_argument("--inject-faults", metavar="SPEC", default=None,
                     dest="inject_faults",
                     help="deterministically inject source faults; SPEC "
                          "is ';'-joined key=value clauses, e.g. "
                          "'fail_first=2;seed=5', 'rate=0.1', "
                          "'permanent=SY+IR' (lists use '+'); implies "
                          "an uncached curate stage")
    run.add_argument("--max-retries", type=int, default=None,
                     dest="max_retries", metavar="N",
                     help="retry budget per source operation "
                          "(default 3; enables the resilience layer)")
    failure_mode = run.add_mutually_exclusive_group()
    failure_mode.add_argument(
        "--fail-fast", dest="fail_fast", action="store_true",
        help="abort the run on the first source that exhausts its "
             "retries")
    failure_mode.add_argument(
        "--degrade", dest="fail_fast", action="store_false",
        help="quarantine exhausted countries and merge the survivors, "
             "reporting degraded=True (the default)")
    run.set_defaults(fail_fast=False)
    run.add_argument("--profile", action="store_true",
                     help="sample per-span CPU time and peak-RSS growth "
                          "into span attributes (and the journal as "
                          "'profile' events); never perturbs results")
    run.add_argument("--profile-alloc", type=int, default=None,
                     metavar="DEPTH", dest="profile_alloc",
                     help="also trace Python allocations per span via "
                          "tracemalloc, capturing DEPTH stack frames "
                          "per site (implies --profile; slower)")
    run.add_argument("--health", action="store_true",
                     help="print the run's fidelity scorecard (with "
                          "--stats --json, embed it under a 'health' "
                          "key)")
    run.add_argument("--heartbeat", metavar="INTERVAL", default=None,
                     help="stream live 'heartbeat' events (shard "
                          "progress + ETA, open spans, counter deltas, "
                          "histogram tails, RSS/CPU) into the run "
                          "journal every INTERVAL (e.g. 1s, 500ms); "
                          "heartbeats are journal-only, so pair with "
                          "--journal or --runs-dir")
    run.add_argument("--provenance", action="store_true",
                     help="capture a lineage capsule at every curation "
                          "decision point (journaled as 'provenance' "
                          "events; render one with 'repro explain'); "
                          "journal-only, so pair with --journal or "
                          "--runs-dir")
    run.add_argument("--run-name", dest="run_name", default=None,
                     metavar="NAME",
                     help="label for the registry entry (with "
                          "--runs-dir; default: the run ID prefix)")
    stream = commands.add_parser(
        "stream",
        help="run the pipeline incrementally under an advancing "
             "watermark, printing the live event lifecycle")
    stream.add_argument("--step", default="7d", metavar="SPAN",
                        help="watermark step per advance (e.g. 12h, "
                             "7d, 604800; default 7d)")
    stream.add_argument("--events", action="store_true",
                        help="print every open/update/close lifecycle "
                             "event as it is emitted (default: one "
                             "progress line per advance)")
    stream.add_argument("--journal", type=Path, default=None,
                        metavar="PATH",
                        help="stream the run journal (stream.event "
                             "lines included) to PATH")
    stream.add_argument("--inject-faults", metavar="SPEC", default=None,
                        dest="inject_faults",
                        help="deterministic chaos against the bin "
                             "source (site stream.source); a recovered "
                             "stream finalizes byte-identical")
    stream.add_argument("--max-retries", type=int, default=None,
                        dest="max_retries",
                        help="retry budget per unit of work")
    stream.add_argument("--heartbeat", metavar="INTERVAL", default=None,
                        help="live heartbeats with a 'stream' block "
                             "(watermark, lag, open events); "
                             "journal-only, pair with --journal or "
                             "--runs-dir")
    stream.add_argument("--health", action="store_true",
                        help="print the finalized run's fidelity "
                             "scorecard")
    stream.add_argument("--provenance", action="store_true",
                        help="capture lineage capsules; every "
                             "journaled lifecycle event references its "
                             "capsule_id (journal-only, pair with "
                             "--journal or --runs-dir)")
    stream.add_argument("--run-name", dest="run_name", default=None,
                        metavar="NAME",
                        help="label for the registry entry (with "
                             "--runs-dir)")

    report = commands.add_parser(
        "report", help="regenerate the EXPERIMENTS.md comparison")
    report.add_argument("--output", type=Path,
                        default=Path("EXPERIMENTS.md"))

    export = commands.add_parser(
        "export", help="export curated records and KIO events to JSON")
    export.add_argument("--output-dir", type=Path, default=Path("export"))

    figures = commands.add_parser(
        "figures", help="export every figure's data series as CSV")
    figures.add_argument("--output-dir", type=Path,
                         default=Path("figures"))

    signals = commands.add_parser(
        "signals", help="render a country's signals over a window")
    signals.add_argument("country", help="ISO code or name")
    signals.add_argument("start", help="UTC start (YYYY-MM-DD[ HH:MM])")
    signals.add_argument("end", help="UTC end (YYYY-MM-DD[ HH:MM])")

    triage = commands.add_parser(
        "triage", help="triage the most recent curated events")
    triage.add_argument("--limit", type=int, default=10)

    trace = commands.add_parser(
        "trace", help="inspect observability artifacts of past runs")
    trace_commands = trace.add_subparsers(dest="trace_command",
                                          required=True)
    summarize = trace_commands.add_parser(
        "summarize", help="replay a JSONL run journal: slowest spans, "
                          "hottest counters")
    summarize.add_argument("journal",
                           help="path to a RUN.jsonl journal, or a "
                                "registered run ID (see --runs-dir)")
    summarize.add_argument("--top", type=int, default=10,
                           help="rows per section (default 10)")
    trace_diff = trace_commands.add_parser(
        "diff", help="attribute the wall-time delta between two runs "
                     "to specific span paths")
    trace_diff.add_argument("run_a",
                            help="baseline run: journal path or "
                                 "registered run ID")
    trace_diff.add_argument("run_b",
                            help="compared run: journal path or "
                                 "registered run ID")
    trace_diff.add_argument("--top", type=int, default=5,
                            help="paths per direction (default 5)")
    trace_diff.add_argument("--epsilon", type=float, default=0.001,
                            help="seconds below which a path counts as "
                                 "unchanged (default 0.001)")

    explain = commands.add_parser(
        "explain",
        help="render the decision chain behind one record from a "
             "provenance-enabled run")
    explain.add_argument("journal",
                         help="path to a RUN.jsonl journal, or a "
                              "registered run ID (see --runs-dir)")
    explain.add_argument("record",
                         help="global record id (as printed by export/"
                              "triage) or a capsule id prefix (so "
                              "dismissed candidates are explainable "
                              "too)")

    health = commands.add_parser(
        "health", help="replay the fidelity scorecard a run journaled")
    health.add_argument("journal",
                        help="path to a RUN.jsonl journal, or a "
                             "registered run ID (see --runs-dir)")
    health.add_argument("--json", action="store_true",
                        help="emit the scorecard as JSON")
    health.add_argument("--strict", action="store_true",
                        help="exit non-zero on warn as well as fail")

    runs = commands.add_parser(
        "runs", help="the cross-run registry (see --runs-dir)")
    runs_commands = runs.add_subparsers(dest="runs_command",
                                        required=True)
    runs_commands.add_parser(
        "list", help="render the trend table across registered runs")
    runs_show = runs_commands.add_parser(
        "show", help="print one registered run's record")
    runs_show.add_argument("run", help="run ID (or unique prefix/name)")
    runs_diff = runs_commands.add_parser(
        "diff", help="tolerance-banded comparison of two registered "
                     "runs; exits non-zero on regression")
    runs_diff.add_argument("run_a", help="baseline run ID")
    runs_diff.add_argument("run_b", help="compared run ID")
    runs_diff.add_argument("--tolerance", type=float, default=1.0,
                           help="scale on every perf tolerance band "
                                "(default 1.0)")
    runs_diff.add_argument("--min-seconds", type=float, default=1.0,
                           dest="min_seconds",
                           help="absolute slack in seconds added to "
                                "every perf band (default 1.0)")
    runs_diff.add_argument("--provenance", action="store_true",
                           help="diff the runs' lineage capsules "
                                "instead: attribute the record delta "
                                "to the earliest flipped curation "
                                "decision (both runs must have been "
                                "executed with --provenance); exits 1 "
                                "when the decision chains differ")
    runs_register = runs_commands.add_parser(
        "register", help="file an existing journal into the registry")
    runs_register.add_argument("journal", type=Path,
                               help="path to a RUN.jsonl journal")
    runs_register.add_argument("--name", default=None,
                               help="label for the registry entry")

    metrics = commands.add_parser(
        "metrics", help="metrics export surfaces")
    metrics_commands = metrics.add_subparsers(dest="metrics_command",
                                              required=True)
    metrics_export = metrics_commands.add_parser(
        "export", help="emit a run's final metrics snapshot as "
                       "OpenMetrics text exposition")
    metrics_export.add_argument("journal",
                                help="path to a RUN.jsonl journal, or "
                                     "a registered run ID")
    metrics_export.add_argument("--output", "-o", type=Path,
                                default=None,
                                help="write to a file instead of "
                                     "stdout")

    perf = commands.add_parser(
        "perf", help="record / compare / report perf+fidelity baselines")
    perf_commands = perf.add_subparsers(dest="perf_command", required=True)
    record = perf_commands.add_parser(
        "record", help="run the pipeline and store a named baseline")
    record.add_argument("name", help="baseline name (file stem)")
    record.add_argument("--dir", type=Path, default=BASELINE_DIR,
                        dest="baseline_dir",
                        help=f"baseline directory (default {BASELINE_DIR})")
    compare = perf_commands.add_parser(
        "compare", help="run the pipeline and diff against a baseline; "
                        "exits non-zero on regression")
    compare.add_argument("baseline",
                         help="baseline name (under --dir) or a path to "
                              "a baseline JSON")
    compare.add_argument("--dir", type=Path, default=BASELINE_DIR,
                         dest="baseline_dir",
                         help=f"baseline directory (default "
                              f"{BASELINE_DIR})")
    compare.add_argument("--tolerance", type=float, default=1.0,
                         help="scale on every perf tolerance band "
                              "(default 1.0; CI uses a generous value, "
                              "0 disables relative slack)")
    compare.add_argument("--min-seconds", type=float, default=1.0,
                         dest="min_seconds",
                         help="absolute slack in seconds added to every "
                              "perf band (default 1.0)")
    perf_report = perf_commands.add_parser(
        "report", help="render the trajectory across stored baselines")
    perf_report.add_argument("--dir", type=Path, default=BASELINE_DIR,
                             dest="baseline_dir",
                             help=f"baseline directory (default "
                                  f"{BASELINE_DIR})")

    serve = commands.add_parser(
        "serve", help="build / run / load-test the async serving layer")
    serve_commands = serve.add_subparsers(dest="serve_command",
                                          required=True)
    serve_build = serve_commands.add_parser(
        "build", help="precompute a run's servable artifact store")
    serve_build.add_argument("--out", type=Path,
                             default=Path("artifacts/store"),
                             help="store directory (default "
                                  "artifacts/store)")
    serve_build.add_argument("--run", dest="run_token", default=None,
                             metavar="RUN_ID",
                             help="rebuild from a registered run's "
                                  "config (resolved against "
                                  "--runs-dir) instead of the global "
                                  "run flags")
    serve_build.add_argument("--countries", type=int, default=None,
                             metavar="N",
                             help="cap the tile pyramid at the N "
                                  "most-evented countries (default: "
                                  "all countries with curated records)")
    serve_build.add_argument("--zooms", default="0,1,2",
                             help="comma-separated zoom levels "
                                  "(default 0,1,2)")
    serve_build.add_argument("--tile-bins", type=int, dest="tile_bins",
                             default=None, metavar="N",
                             help="max points per tile (default 512)")
    serve_build.add_argument("--page-size", type=int, dest="page_size",
                             default=50, metavar="N",
                             help="default event page size recorded in "
                                  "the manifest (default 50)")
    serve_run = serve_commands.add_parser(
        "run", help="serve a built store over HTTP until interrupted")
    serve_run.add_argument("--store", type=Path,
                           default=Path("artifacts/store"),
                           help="store directory (default "
                                "artifacts/store)")
    serve_run.add_argument("--host", default="127.0.0.1")
    serve_run.add_argument("--port", type=int, default=8099)
    serve_run.add_argument("--serve-cache-size", type=int, default=None,
                           dest="serve_cache_size", metavar="N",
                           help="bound on the hot-artifact LRU "
                                "(default 256)")
    serve_loadgen = serve_commands.add_parser(
        "loadgen", help="run a seeded load burst; print the SLO report")
    serve_loadgen.add_argument("--store", type=Path,
                               default=Path("artifacts/store"),
                               help="store directory (default "
                                    "artifacts/store)")
    serve_loadgen.add_argument("--mix", default="dashboard",
                               choices=("dashboard", "events", "zoom"),
                               help="client behaviour mix (default "
                                    "dashboard)")
    serve_loadgen.add_argument("--concurrency", type=int, default=256,
                               help="concurrent simulated clients "
                                    "(default 256)")
    serve_loadgen.add_argument("--requests", type=int, default=40,
                               dest="requests_per_client",
                               help="requests per client, including "
                                    "the index bootstrap (default 40)")
    serve_loadgen.add_argument("--loadgen-seed", type=int, default=1,
                               dest="loadgen_seed",
                               help="client-mix seed (default 1)")
    serve_loadgen.add_argument("--tcp", action="store_true",
                               help="drive a private server over real "
                                    "sockets instead of in-process "
                                    "calls")
    serve_loadgen.add_argument("--url", default=None,
                               help="target an already-running server "
                                    "(http://host:port) instead of "
                                    "spawning one; cache counters are "
                                    "then unavailable")
    serve_loadgen.add_argument("--serve-cache-size", type=int,
                               default=None, dest="serve_cache_size",
                               metavar="N",
                               help="bound on the spawned app's "
                                    "hot-artifact LRU (default 256)")
    serve_loadgen.add_argument("--report", type=Path, default=None,
                               metavar="PATH",
                               help="write the SLO report JSON here")
    serve_loadgen.add_argument("--json", action="store_true",
                               help="print the SLO report as JSON")
    serve_loadgen.add_argument("--record", default=None, metavar="NAME",
                               help="store the SLO statistics as a "
                                    "named perf baseline")
    serve_loadgen.add_argument("--compare", default=None, metavar="NAME",
                               help="diff the SLO statistics against a "
                                    "stored baseline; exits non-zero "
                                    "on regression")
    serve_loadgen.add_argument("--dir", type=Path, default=BASELINE_DIR,
                               dest="baseline_dir",
                               help=f"baseline directory (default "
                                    f"{BASELINE_DIR})")
    serve_loadgen.add_argument("--tolerance", type=float, default=1.0,
                               help="scale on the perf tolerance bands "
                                    "(default 1.0)")
    serve_loadgen.add_argument("--min-seconds", type=float,
                               default=0.05, dest="min_seconds",
                               help="absolute slack in seconds on "
                                    "every latency band (default "
                                    "0.05; latencies are milliseconds, "
                                    "not pipeline stages)")
    return parser


def _usable_cache_dir(cache_dir: Optional[Path]) -> Optional[Path]:
    """Probe the cache directory; warn and disable caching if unusable.

    An unwritable ``--cache-dir`` (bad permissions, a file in the way,
    a read-only mount) should cost the run its cache, not crash it
    mid-stage: the probe creates the directory and round-trips a
    scratch file before the pipeline commits to caching.
    """
    if cache_dir is None:
        return None
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        probe = cache_dir / ".write-probe"
        probe.write_text("", encoding="utf-8")
        probe.unlink()
    except OSError as exc:
        print(f"repro: warning: cache dir {cache_dir} is not writable "
              f"({exc}); running uncached", file=sys.stderr)
        return None
    return cache_dir


def _resilience(args: argparse.Namespace) -> Optional[ResilienceConfig]:
    """The resilience config the run flags ask for (None = disabled)."""
    spec = getattr(args, "inject_faults", None)
    max_retries = getattr(args, "max_retries", None)
    fail_fast = getattr(args, "fail_fast", False)
    if spec is None and max_retries is None and not fail_fast:
        return None
    retry = (RetryPolicy(max_retries=max_retries)
             if max_retries is not None else RetryPolicy())
    return ResilienceConfig(faults=spec, retry=retry, fail_fast=fail_fast)


def _profile_config(args: argparse.Namespace) -> Optional[ProfileConfig]:
    """The profiling config the run flags ask for (None = disabled)."""
    alloc_depth = getattr(args, "profile_alloc", None)
    if alloc_depth is not None:
        return ProfileConfig(tracemalloc=True, tracemalloc_depth=alloc_depth)
    if getattr(args, "profile", False):
        return ProfileConfig()
    return None


def _run(args: argparse.Namespace,
         observability: Observability | None = None) -> api.RunResult:
    """One pipeline execution through the :mod:`repro.api` facade.

    Every data-producing subcommand funnels through here, so the CLI
    exercises exactly the surface downstream callers program against.
    ``ScenarioConfig`` and ``STUDY_PERIOD`` are read off this module so
    tests can shrink the run while keeping the real flag wiring.
    """
    return api.run(
        scenario_config=ScenarioConfig(seed=args.seed),
        study_period=STUDY_PERIOD,
        workers=args.workers,
        backend=args.backend,
        shards=args.shards,
        signal_cache_size=getattr(args, "signal_cache_size", None),
        cache_dir=_usable_cache_dir(args.cache_dir),
        observability=observability,
        resilience=_resilience(args),
        profile=_profile_config(args),
        telemetry=getattr(args, "heartbeat", None),
        provenance=getattr(args, "provenance", False),
        runs_dir=getattr(args, "runs_dir", None),
        run_name=getattr(args, "run_name", None))


def _registry(args: argparse.Namespace) -> RunRegistry:
    """The registry the read commands resolve run IDs against."""
    return RunRegistry(getattr(args, "runs_dir", None) or Path("runs"))


def _resolve_journal(token: str,
                     args: argparse.Namespace) -> Optional[Path]:
    """A journal path from a path-or-run-ID token (None = unresolvable).

    Paths win; anything that is not an existing file is resolved
    against the run registry.  Errors print to stderr so callers can
    exit 2 without a traceback.
    """
    path = Path(token)
    if path.exists():
        return path
    try:
        record = _registry(args).get(token)
    except KeyError as exc:
        print(f"repro: error: no such journal or run: {token} "
              f"({exc.args[0]})", file=sys.stderr)
        return None
    journal = record.journal_path
    if journal is None or not journal.exists():
        print(f"repro: error: run {record.run_id} has no journal file",
              file=sys.stderr)
        return None
    return journal


def _read_events(token: str, args: argparse.Namespace):
    """Replayed journal events for a token, or None (error printed)."""
    journal = _resolve_journal(token, args)
    if journal is None:
        return None
    try:
        events = read_journal(journal)
    except OSError as exc:
        print(f"repro: error: cannot read journal {journal}: {exc}",
              file=sys.stderr)
        return None
    if not events:
        print(f"repro: error: empty or unreadable journal: {journal}",
              file=sys.stderr)
        return None
    return events


def _cmd_run(args: argparse.Namespace) -> int:
    import json

    if args.heartbeat is not None:
        try:
            parse_interval(args.heartbeat)
        except ValueError as exc:
            print(f"repro: error: {exc}", file=sys.stderr)
            return 2
        if args.journal is None and args.runs_dir is None:
            print("repro: warning: --heartbeat without --journal or "
                  "--runs-dir; heartbeats are journal-only and will "
                  "be discarded", file=sys.stderr)
    if args.provenance and args.journal is None and args.runs_dir is None:
        print("repro: warning: --provenance without --journal or "
              "--runs-dir; capsules are journal-only and 'repro "
              "explain' needs the journal", file=sys.stderr)
    profile = _profile_config(args)
    journal = args.journal
    needs_obs = bool(args.trace or journal or args.metrics_json
                     or profile is not None)
    if needs_obs and journal is None and args.runs_dir is not None:
        # The exports need an in-process session, which bypasses the
        # facade's auto-journal; write the journal under the runs dir
        # so api.run still files the run into the registry (it moves
        # runs-dir journals rather than copying them).
        args.runs_dir.mkdir(parents=True, exist_ok=True)
        journal = (args.runs_dir
                   / f"pending-{os.getpid()}-{time.time_ns()}.jsonl")
    obs = Observability(journal=journal) if needs_obs else None
    result = _run(args, observability=obs)
    exported = []
    if obs is not None:
        if args.trace:
            exported.append(write_chrome_trace(obs.tracer.spans(),
                                               args.trace))
        if journal is not None:
            exported.append(result.journal_path or journal)
        if args.metrics_json:
            args.metrics_json.parent.mkdir(parents=True, exist_ok=True)
            args.metrics_json.write_text(
                json.dumps(obs.metrics_snapshot(), indent=2),
                encoding="utf-8")
            exported.append(args.metrics_json)
    if result.run_id is not None:
        print(f"registered run {result.run_id} under {args.runs_dir}",
              file=sys.stderr)
    if args.stats and args.json:
        payload = result.stats.as_dict()
        if args.health:
            payload["health"] = result.health.as_dict()
        print(json.dumps(payload, indent=2))
        for path in exported:
            print(f"wrote {path}", file=sys.stderr)
        return 0
    print("== Table 2 ==")
    print("\n".join(summarize_merged(result.merged).rows()))
    print("\n== Table 3 ==")
    print("\n".join(group_country_years(result.merged, YEARS).rows()))
    print("\n== Figures 10-15 ==")
    print("\n".join(analyze_temporal(result.merged).rows()))
    print("\n== Figure 16 ==")
    print("\n".join(observability_table(result.merged).rows()))
    if args.stats:
        print("\n== Execution ==")
        print("\n".join(execution_report(result.stats)))
    if args.health:
        print("\n== Health ==")
        print("\n".join(result.health.rows()))
    for path in exported:
        print(f"wrote {path}")
    return 0


_STEP_UNITS = {"s": 1, "m": 60, "h": 3600, "d": 86400, "w": 7 * 86400}


def _parse_step(spec: str) -> int:
    """Seconds from a watermark-step spec: ``7d``, ``12h``, ``604800``."""
    text = spec.strip().lower()
    scale = 1
    if text and text[-1] in _STEP_UNITS:
        scale = _STEP_UNITS[text[-1]]
        text = text[:-1]
    try:
        seconds = int(float(text) * scale)
    except ValueError:
        raise ConfigurationError(
            f"unparseable step {spec!r}; expected e.g. '12h', '7d', or "
            f"seconds") from None
    if seconds <= 0:
        raise ConfigurationError(f"step must be positive: {spec!r}")
    return seconds


def _cmd_stream(args: argparse.Namespace) -> int:
    step = _parse_step(args.step)
    if args.heartbeat is not None:
        try:
            parse_interval(args.heartbeat)
        except ValueError as exc:
            print(f"repro: error: {exc}", file=sys.stderr)
            return 2
        if args.journal is None and args.runs_dir is None:
            print("repro: warning: --heartbeat without --journal or "
                  "--runs-dir; heartbeats are journal-only and will "
                  "be discarded", file=sys.stderr)
    session = api.stream(
        scenario_config=ScenarioConfig(seed=args.seed),
        study_period=STUDY_PERIOD,
        workers=args.workers,
        backend=args.backend,
        signal_cache_size=getattr(args, "signal_cache_size", None),
        journal=args.journal,
        resilience=_resilience(args),
        telemetry=args.heartbeat,
        provenance=getattr(args, "provenance", False),
        runs_dir=getattr(args, "runs_dir", None),
        run_name=getattr(args, "run_name", None))
    counts = {"open": 0, "update": 0, "close": 0, "recorded": 0}
    advances = 0
    try:
        for events in session.replay(step):
            advances += 1
            for event in events:
                counts[event.state] += 1
                if event.outcome == "recorded":
                    counts["recorded"] += 1
                if args.events:
                    span = f"[{event.span.start}, {event.span.end})"
                    tail = f" -> {event.outcome}" if event.outcome else ""
                    print(f"{event.seq:6d} {event.state:>6} "
                          f"{event.key:<16} {span}{tail}")
            if not args.events:
                print(f"watermark {session.watermark}: "
                      f"{len(events)} events "
                      f"({counts['open']} open / {counts['update']} "
                      f"update / {counts['close']} close so far)")
        result = session.finalize()
    except BaseException:
        session.close()
        raise
    print(f"\nstreamed to horizon in {advances} advances: "
          f"{counts['open']} opened, {counts['update']} updated, "
          f"{counts['close']} closed ({counts['recorded']} recorded); "
          f"{len(result.curated_records)} curated records")
    if result.journal_path is not None:
        print(f"wrote {result.journal_path}")
    if result.run_id is not None:
        print(f"registered run {result.run_id} under {args.runs_dir}",
              file=sys.stderr)
    if args.health:
        print("\n== Health ==")
        print("\n".join(result.health.rows()))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    result = _run(args)
    rows = build_report(result.events)
    args.output.write_text(render_markdown(rows, args.seed),
                           encoding="utf-8")
    print(f"wrote {args.output} ({len(rows)} comparison rows)")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    result = _run(args)
    args.output_dir.mkdir(parents=True, exist_ok=True)
    records_path = args.output_dir / "ioda_outage_records.json"
    csv_path = args.output_dir / "ioda_outage_records.csv"
    kio_path = args.output_dir / "kio_events.json"
    dump_records(result.curated_records, records_path)
    dump_records_csv(result.curated_records, csv_path)
    dump_kio_events(result.kio_events, kio_path)
    print(f"wrote {records_path} ({len(result.curated_records)} records)")
    print(f"wrote {csv_path} (Table 1 layout)")
    print(f"wrote {kio_path} ({len(result.kio_events)} events)")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.analysis.figures import write_csvs

    result = _run(args)
    written = write_csvs(result.events, args.output_dir)
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_signals(args: argparse.Namespace) -> int:
    from repro.viz import sparkline

    # Probe the cache dir for the same not-writable warning a full run
    # would emit (signals itself never touches the stage cache).
    _usable_cache_dir(args.cache_dir)
    scenario = ScenarioGenerator(ScenarioConfig(seed=args.seed)).generate()
    country = scenario.registry.lookup(args.country)
    window = TimeRange(parse_utc(args.start), parse_utc(args.end))
    platform = IODAPlatform(scenario)
    print(f"{country} over {window}:")
    for kind in SignalKind:
        series = platform.signal(Entity.country(country.iso2), kind,
                                 window)
        print(f"  {kind.label:<15} |{sparkline(series)}|  "
              f"max={series.values.max():.0f}")
    return 0


def _cmd_triage(args: argparse.Namespace) -> int:
    result = _run(args).events
    merged = result.merged
    registry = merged.registry
    libdem = {
        (registry.by_name(r.country_name).iso2, r.year):
            r.liberal_democracy
        for r in result.vdem}
    cells = set()
    for dataset in (result.coups, result.elections, result.protests):
        for record in dataset:
            cells.add((registry.by_name(record.country_name).iso2,
                       record.day))
    triage = ShutdownTriage(registry, cells, libdem, result.state_shares)
    recent = sorted(merged.ioda_records,
                    key=lambda r: r.span.start)[-args.limit:]
    for record in recent:
        year = time.gmtime(record.span.start).tm_year
        assessment = triage.assess(record, year)
        print("\n".join(assessment.rows()))
        print()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "summarize":
        events = _read_events(args.journal, args)
        if events is None:
            return 2
        print("\n".join(summarize_events(events).rows(top=args.top)))
        return 0
    if args.trace_command == "diff":
        events_a = _read_events(args.run_a, args)
        if events_a is None:
            return 2
        events_b = _read_events(args.run_b, args)
        if events_b is None:
            return 2
        diff = diff_events(events_a, events_b,
                           label_a=args.run_a, label_b=args.run_b,
                           epsilon=args.epsilon)
        print("\n".join(diff.rows(top=args.top)))
        return 0
    return 2


def _cmd_explain(args: argparse.Namespace) -> int:
    events = _read_events(args.journal, args)
    if events is None:
        return 2
    report = explain_record(events, args.record)
    print("\n".join(report.rows()))
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    registry = _registry(args)
    if args.runs_command == "list":
        print("\n".join(registry.rows()))
        return 0
    if args.runs_command == "register":
        if not args.journal.exists():
            print(f"repro: error: no such journal: {args.journal}",
                  file=sys.stderr)
            return 2
        record = registry.register(args.journal, name=args.name)
        print(f"registered run {record.run_id} ({record.name}) "
              f"under {registry.root}")
        return 0
    if args.runs_command == "show":
        try:
            record = registry.get(args.run)
        except KeyError as exc:
            print(f"repro: error: {exc.args[0]}", file=sys.stderr)
            return 2
        print("\n".join(record.rows()))
        return 0
    if args.runs_command == "diff":
        try:
            record_a = registry.get(args.run_a)
            record_b = registry.get(args.run_b)
        except KeyError as exc:
            print(f"repro: error: {exc.args[0]}", file=sys.stderr)
            return 2
        if args.provenance:
            events = []
            for record in (record_a, record_b):
                journal = record.journal_path
                if journal is None or not journal.exists():
                    print(f"repro: error: run {record.run_id} has no "
                          f"journal file", file=sys.stderr)
                    return 2
                events.append(read_journal(journal))
            diff = diff_provenance(events[0], events[1])
            print("\n".join(diff.rows(label_a=record_a.name,
                                      label_b=record_b.name)))
            return 0 if diff.empty else 1
        comparison = compare_baselines(
            record_b.as_baseline(), record_a.as_baseline(),
            tolerance=args.tolerance, min_seconds=args.min_seconds)
        print("\n".join(comparison.rows()))
        return 0 if comparison.ok else 1
    return 2


def _cmd_metrics(args: argparse.Namespace) -> int:
    if args.metrics_command != "export":
        return 2
    events = _read_events(args.journal, args)
    if events is None:
        return 2
    snapshots = [e for e in events if e.get("type") == "metrics"]
    if not snapshots:
        print(f"repro: error: no metrics snapshot in journal for "
              f"{args.journal}", file=sys.stderr)
        return 2
    # Snapshots are cumulative; the final one is the run's registry.
    text = snapshot_to_openmetrics(snapshots[-1])
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(text, encoding="utf-8")
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    import json

    events = _read_events(args.journal, args)
    if events is None:
        return 2
    records = [e for e in events if e.get("type") == "health"]
    if not records:
        print(f"repro: error: no health record in {args.journal} "
              f"(was the run journaled with this version?)",
              file=sys.stderr)
        return 2
    report = HealthReport.from_dict(records[-1])
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print("\n".join(report.rows()))
    if report.grade == "fail":
        return 1
    if report.grade == "warn" and args.strict:
        return 1
    return 0


def _run_for_baseline(args: argparse.Namespace):
    """Run the pipeline and capture the baseline-shaped snapshot."""
    result = _run(args)
    statistics = run_statistics(result.events, result.stats)
    config = {
        "seed": args.seed,
        "workers": args.workers,
        "backend": args.backend,
        "shards": args.shards,
    }
    return statistics, config, result.health


def _cmd_perf(args: argparse.Namespace) -> int:
    if args.perf_command == "record":
        statistics, config, health = _run_for_baseline(args)
        baseline = PerfBaseline.capture(
            name=args.name, config=config, statistics=statistics,
            health_grade=health.grade)
        path = save_baseline(baseline,
                             args.baseline_dir / f"{args.name}.json")
        print(f"wrote {path} (health {health.grade}, "
              f"{statistics['perf.total_seconds']:.2f}s total)")
        return 0
    if args.perf_command == "compare":
        as_path = Path(args.baseline)
        path = (as_path if as_path.suffix == ".json" or as_path.exists()
                else args.baseline_dir / f"{args.baseline}.json")
        if not path.exists():
            print(f"repro: error: no such baseline: {path}",
                  file=sys.stderr)
            return 2
        baseline = load_baseline(path)
        statistics, config, health = _run_for_baseline(args)
        current = PerfBaseline.capture(
            name="current", config=config, statistics=statistics,
            health_grade=health.grade)
        comparison = compare_baselines(
            current, baseline, tolerance=args.tolerance,
            min_seconds=args.min_seconds)
        print("\n".join(comparison.rows()))
        return 0 if comparison.ok else 1
    if args.perf_command == "report":
        baselines = list_baselines(args.baseline_dir)
        if not baselines:
            print(f"repro: error: no baselines under "
                  f"{args.baseline_dir}", file=sys.stderr)
            return 2
        print("\n".join(trajectory_rows(baselines)))
        return 0
    return 2


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ServeError
    from repro.serve import ArtifactStore, LoadgenConfig, ServeApp, \
        build_store, run_loadgen, serve_forever

    if args.serve_command == "build":
        if args.run_token is not None:
            try:
                record = _registry(args).get(args.run_token)
            except KeyError as exc:
                print(f"repro: error: no such run: {args.run_token} "
                      f"({exc.args[0]})", file=sys.stderr)
                return 2
            seed = int(record.config.get("seed", args.seed))
            result = api.run(seed=seed,
                             cache_dir=_usable_cache_dir(args.cache_dir),
                             workers=args.workers, backend=args.backend)
        else:
            result = _run(args)
        try:
            zooms = tuple(int(z) for z in args.zooms.split(","))
        except ValueError:
            print(f"repro: error: bad --zooms spec: {args.zooms!r}",
                  file=sys.stderr)
            return 2
        build_options = {"page_size": args.page_size, "zooms": zooms,
                         "max_countries": args.countries}
        if args.tile_bins is not None:
            build_options["tile_bins"] = args.tile_bins
        started = time.time()
        store = build_store(result, args.out, **build_options)
        resources = store.resources()
        print(f"built {args.out}: {len(resources)} artifacts "
              f"({store.meta.get('records')} events, "
              f"{store.meta.get('countries')} tile countries, "
              f"zooms {store.meta.get('zooms')}) "
              f"in {time.time() - started:.1f}s")
        return 0

    try:
        store = ArtifactStore.open(args.store)
    except ServeError as exc:
        if args.serve_command == "loadgen" and args.url is not None:
            store = None
        else:
            print(f"repro: error: {exc}", file=sys.stderr)
            return 2

    if args.serve_command == "run":
        app = (ServeApp(store, cache_size=args.serve_cache_size)
               if args.serve_cache_size is not None else ServeApp(store))
        serve_forever(app, host=args.host, port=args.port)
        return 0

    if args.serve_command == "loadgen":
        config = LoadgenConfig(
            mix=args.mix, concurrency=args.concurrency,
            requests_per_client=args.requests_per_client,
            seed=args.loadgen_seed)
        report = run_loadgen(store, url=args.url, config=config,
                             tcp=args.tcp,
                             cache_size=args.serve_cache_size)
        if args.json:
            print(json.dumps(report.as_dict(), indent=2))
        else:
            print("\n".join(report.rows()))
        if args.report is not None:
            path = report.save(args.report)
            print(f"wrote {path}")
        if args.record is not None:
            baseline = PerfBaseline.capture(
                name=args.record, config=config.as_dict(),
                statistics=report.statistics())
            path = save_baseline(
                baseline, args.baseline_dir / f"{args.record}.json")
            print(f"wrote {path}")
        if args.compare is not None:
            as_path = Path(args.compare)
            path = (as_path
                    if as_path.suffix == ".json" or as_path.exists()
                    else args.baseline_dir / f"{args.compare}.json")
            if not path.exists():
                print(f"repro: error: no such baseline: {path}",
                      file=sys.stderr)
                return 2
            baseline = load_baseline(path)
            current = PerfBaseline.capture(
                name="current", config=config.as_dict(),
                statistics=report.statistics())
            comparison = compare_baselines(
                current, baseline, tolerance=args.tolerance,
                min_seconds=args.min_seconds)
            print("\n".join(comparison.rows()))
            return 0 if comparison.ok else 1
        return 0
    return 2


_COMMANDS = {
    "run": _cmd_run,
    "stream": _cmd_stream,
    "report": _cmd_report,
    "export": _cmd_export,
    "figures": _cmd_figures,
    "signals": _cmd_signals,
    "triage": _cmd_triage,
    "explain": _cmd_explain,
    "trace": _cmd_trace,
    "health": _cmd_health,
    "runs": _cmd_runs,
    "metrics": _cmd_metrics,
    "perf": _cmd_perf,
    "serve": _cmd_serve,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ConfigurationError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except SignalError as exc:
        # E.g. an empty merged dataset leaves Figure 16 with nothing to
        # summarize; exit cleanly instead of tracebacking.
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except ResilienceError as exc:
        # A --fail-fast run hit a source that exhausted its retries (or
        # tripped its breaker); surface the failure, not a traceback.
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except ProvenanceError as exc:
        # explain / runs diff --provenance on a journal without
        # capsules, or an unknown record/capsule token: one line, no
        # traceback.
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
