"""A binary radix trie keyed by IPv4 prefix.

Used for the MaxMind-style geolocation database and the CAIDA-style
prefix-to-AS map: both need exact-prefix insertion and longest-prefix match
for address lookups.  The trie stores one node per bit of each inserted
prefix, which is compact enough for the synthetic topologies (tens of
thousands of prefixes) while keeping the code obvious.
"""

from __future__ import annotations

from typing import Generic, Iterator, Optional, Tuple, TypeVar

from repro.net.ipv4 import IPv4Address, Prefix

__all__ = ["PrefixTree"]

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: list[Optional["_Node[V]"]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False


class PrefixTree(Generic[V]):
    """Map from IPv4 prefixes to values with longest-prefix match.

    >>> tree = PrefixTree()
    >>> from repro.net.ipv4 import parse_prefix, IPv4Address
    >>> tree[parse_prefix("10.0.0.0/8")] = "corp"
    >>> tree[parse_prefix("10.1.0.0/16")] = "lab"
    >>> prefix, value = tree.longest_match(IPv4Address.parse("10.1.2.3"))
    >>> str(prefix), value
    ('10.1.0.0/16', 'lab')
    """

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @staticmethod
    def _bits(network: int, length: int) -> Iterator[int]:
        for position in range(length):
            yield (network >> (31 - position)) & 1

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or replace the value stored at ``prefix``."""
        node = self._root
        for bit in self._bits(prefix.network, prefix.length):
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def __setitem__(self, prefix: Prefix, value: V) -> None:
        self.insert(prefix, value)

    def exact(self, prefix: Prefix) -> Optional[V]:
        """The value stored at exactly ``prefix``, or ``None``."""
        node = self._root
        for bit in self._bits(prefix.network, prefix.length):
            child = node.children[bit]
            if child is None:
                return None
            node = child
        return node.value if node.has_value else None

    def __contains__(self, prefix: Prefix) -> bool:
        return self.exact(prefix) is not None

    def longest_match(
            self, address: IPv4Address) -> Optional[Tuple[Prefix, V]]:
        """The most specific inserted prefix covering ``address``, with its
        value, or ``None`` if nothing covers it."""
        node = self._root
        best: Optional[Tuple[int, V]] = None
        network = 0
        if node.has_value:
            best = (0, node.value)  # type: ignore[arg-type]
        for depth in range(32):
            bit = (address.value >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            network |= bit << (31 - depth)
            node = child
            if node.has_value:
                best = (depth + 1, node.value)  # type: ignore[arg-type]
        if best is None:
            return None
        length, value = best
        mask = 0 if length == 0 else ((1 << length) - 1) << (32 - length)
        return Prefix(address.value & mask, length), value

    def lookup(self, address: IPv4Address) -> Optional[V]:
        """Longest-prefix-match value for ``address``, or ``None``."""
        match = self.longest_match(address)
        return None if match is None else match[1]

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        """Yield all (prefix, value) pairs in depth-first order."""
        stack: list[Tuple[_Node[V], int, int]] = [(self._root, 0, 0)]
        while stack:
            node, network, length = stack.pop()
            if node.has_value:
                yield Prefix(network, length), node.value  # type: ignore[misc]
            for bit in (1, 0):
                child = node.children[bit]
                if child is not None:
                    stack.append(
                        (child, network | (bit << (31 - length)), length + 1))
