"""Autonomous system numbers and records.

The topology generator assigns each country a set of ASes; state ownership
is a property of the AS record, mirroring the Carisimo et al. state-owned
operator list the paper consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import PrefixError

__all__ = ["ASN", "ASRole", "AS"]

_MAX_ASN = 2 ** 32 - 1


@dataclass(frozen=True, slots=True)
class ASN:
    """A 4-byte autonomous system number."""

    value: int

    def __post_init__(self) -> None:
        if not 0 < self.value <= _MAX_ASN:
            raise PrefixError(f"ASN out of range: {self.value}")

    def __str__(self) -> str:
        return f"AS{self.value}"

    def __int__(self) -> int:
        return self.value


class ASRole(enum.Enum):
    """Coarse role of an AS in its domestic market."""

    ACCESS = "access"        # eyeball / last-mile provider
    TRANSIT = "transit"      # domestic or international transit
    CONTENT = "content"      # hosting / content
    EDUCATION = "education"  # national research & education network
    GOVERNMENT = "government"  # government enterprise networks


@dataclass(frozen=True)
class AS:
    """An autonomous system as known to the topology.

    ``state_owned`` follows the paper's definition: controlled by the
    government through ownership of more than 50% of shares (§5.1.1,
    footnote 7).
    """

    asn: ASN
    name: str
    country_iso2: str
    role: ASRole
    state_owned: bool = False

    def __str__(self) -> str:
        ownership = "state" if self.state_owned else "private"
        return f"{self.asn} {self.name} [{self.country_iso2}, {ownership}]"
