"""IPv4 addresses and prefixes.

Addresses are wrapped 32-bit integers; prefixes are (network, length) pairs
with the host bits required to be zero.  The /24 helpers are first-class
because IODA counts connectivity in units of /24 blocks: BGP visibility is
"number of routable /24-equivalents", and active probing tracks the state of
individual /24s.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Iterator

from repro.errors import PrefixError

__all__ = [
    "IPv4Address",
    "Prefix",
    "parse_prefix",
    "SLASH24_COUNT",
]

_MAX_ADDRESS = 2 ** 32 - 1

#: Number of /24 blocks in the full IPv4 space.
SLASH24_COUNT = 2 ** 24


@total_ordering
@dataclass(frozen=True, slots=True)
class IPv4Address:
    """An IPv4 address as a wrapped 32-bit integer."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= _MAX_ADDRESS:
            raise PrefixError(f"IPv4 address out of range: {self.value}")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        """Parse dotted-quad notation.

        >>> IPv4Address.parse("192.0.2.1").value
        3221225985
        """
        parts = text.strip().split(".")
        if len(parts) != 4:
            raise PrefixError(f"malformed IPv4 address: {text!r}")
        value = 0
        for part in parts:
            if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
                raise PrefixError(f"malformed IPv4 address: {text!r}")
            octet = int(part)
            if octet > 255:
                raise PrefixError(f"malformed IPv4 address: {text!r}")
            value = (value << 8) | octet
        return cls(value)

    @property
    def slash24(self) -> int:
        """Index of the /24 block containing this address."""
        return self.value >> 8

    def __str__(self) -> str:
        v = self.value
        return f"{v >> 24}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def __lt__(self, other: "IPv4Address") -> bool:
        return self.value < other.value


@total_ordering
@dataclass(frozen=True, slots=True)
class Prefix:
    """An IPv4 prefix: a network address and a mask length.

    The network address must have all host bits zero; violating inputs raise
    :class:`PrefixError` rather than being silently truncated, because a
    nonzero host bit in routing data is almost always a parsing bug.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise PrefixError(f"prefix length out of range: {self.length}")
        if not 0 <= self.network <= _MAX_ADDRESS:
            raise PrefixError(f"network address out of range: {self.network}")
        if self.network & (self.host_mask()):
            raise PrefixError(
                f"host bits set in {IPv4Address(self.network)}/{self.length}")

    def host_mask(self) -> int:
        """Bit mask covering the host portion."""
        return (1 << (32 - self.length)) - 1

    def netmask(self) -> int:
        """Bit mask covering the network portion."""
        return _MAX_ADDRESS ^ self.host_mask()

    @classmethod
    def from_slash24(cls, index: int) -> "Prefix":
        """The /24 prefix with the given block index (0 .. 2**24-1)."""
        if not 0 <= index < SLASH24_COUNT:
            raise PrefixError(f"/24 index out of range: {index}")
        return cls(index << 8, 24)

    @property
    def first_address(self) -> IPv4Address:
        """Lowest address covered by the prefix."""
        return IPv4Address(self.network)

    @property
    def last_address(self) -> IPv4Address:
        """Highest address covered by the prefix."""
        return IPv4Address(self.network | self.host_mask())

    @property
    def num_addresses(self) -> int:
        """Number of addresses covered."""
        return 1 << (32 - self.length)

    @property
    def num_slash24s(self) -> int:
        """Number of /24-equivalents covered.

        Prefixes longer than /24 count as zero: IODA's BGP signal counts
        whole /24 blocks, and a /25 does not make its covering /24 routable
        by itself.
        """
        if self.length > 24:
            return 0
        return 1 << (24 - self.length)

    def slash24s(self) -> Iterator[int]:
        """Yield the indices of the /24 blocks covered (empty if longer
        than /24)."""
        if self.length > 24:
            return
        first = self.network >> 8
        yield from range(first, first + self.num_slash24s)

    def contains(self, address: IPv4Address) -> bool:
        """Whether ``address`` falls inside the prefix."""
        return (address.value & self.netmask()) == self.network

    def covers(self, other: "Prefix") -> bool:
        """Whether this prefix covers ``other`` (equal or less specific)."""
        if other.length < self.length:
            return False
        return (other.network & self.netmask()) == self.network

    def __str__(self) -> str:
        return f"{IPv4Address(self.network)}/{self.length}"

    def __lt__(self, other: "Prefix") -> bool:
        return (self.network, self.length) < (other.network, other.length)


def parse_prefix(text: str) -> Prefix:
    """Parse ``a.b.c.d/len`` notation.

    >>> str(parse_prefix("10.0.0.0/8"))
    '10.0.0.0/8'
    """
    head, sep, tail = text.strip().partition("/")
    if not sep or not tail.isdigit():
        raise PrefixError(f"malformed prefix: {text!r}")
    return Prefix(IPv4Address.parse(head).value, int(tail))
