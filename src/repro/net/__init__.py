"""Low-level networking primitives.

IODA's three signals are all ultimately expressed in units of IPv4 /24
blocks or source addresses; the BGP substrate additionally needs prefixes of
arbitrary length and longest-prefix matching.  This subpackage provides:

- :mod:`repro.net.ipv4` — addresses, prefixes, /24 arithmetic.
- :mod:`repro.net.asn` — autonomous system numbers and records.
- :mod:`repro.net.prefixtree` — a binary radix trie keyed by prefix, with
  longest-prefix match, used by the geolocation and prefix-to-AS maps.
"""

from repro.net.ipv4 import (
    SLASH24_COUNT,
    IPv4Address,
    Prefix,
    parse_prefix,
)
from repro.net.asn import AS, ASN
from repro.net.prefixtree import PrefixTree

__all__ = [
    "SLASH24_COUNT",
    "IPv4Address",
    "Prefix",
    "parse_prefix",
    "AS",
    "ASN",
    "PrefixTree",
]
