"""BGPStream-style merged update iteration.

The real IODA consumes RouteViews and RIS data through BGPStream, which
presents updates from many collectors as one time-ordered stream.
:class:`BGPStream` reproduces that interface over our synthetic collectors.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Sequence

from repro.bgp.collector import Collector, ReachabilityTimeline
from repro.bgp.messages import BGPUpdate

__all__ = ["BGPStream"]


class BGPStream:
    """Time-ordered merge of updates from multiple collectors."""

    def __init__(self, collectors: Sequence[Collector]):
        self._collectors = tuple(collectors)

    @property
    def collectors(self) -> tuple[Collector, ...]:
        return self._collectors

    def all_peers(self):
        """All peers across all collectors."""
        for collector in self._collectors:
            yield from collector.peers

    def updates(self, timeline: ReachabilityTimeline) -> Iterator[BGPUpdate]:
        """Yield every collector's updates merged in time order.

        Uses a k-way heap merge so memory stays proportional to the largest
        single collector batch, mirroring how BGPStream interleaves MRT
        dumps.
        """
        batches: List[List[BGPUpdate]] = [
            collector.updates(timeline) for collector in self._collectors]
        yield from heapq.merge(
            *batches, key=BGPUpdate.sort_key)
