"""Collector peers and the full-feed rule.

IODA considers a peer full-feed if it carries more than 400k IPv4 prefixes
(or 10k IPv6; we model IPv4 only).  Only full-feed peers count toward the
50% visibility rule, since partial feeds would bias per-prefix visibility
downward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.errors import ConfigurationError

__all__ = ["FULL_FEED_IPV4_THRESHOLD", "PeerSpec", "full_feed_peers"]

#: Minimum IPv4 prefix count for a peer to be considered full-feed.
FULL_FEED_IPV4_THRESHOLD = 400_000


@dataclass(frozen=True)
class PeerSpec:
    """A BGP peer session at a collector.

    ``ipv4_prefix_count`` is the size of the peer's global table (used for
    the full-feed rule).  ``miss_rate`` is the probability the peer fails
    to carry any given (reachable) prefix — real peers disagree at the
    margin due to filtering and convergence.  ``session_flap_rate`` is the
    per-day probability of a session reset that temporarily empties the
    peer's table (a source of false visibility drops).
    """

    peer_id: int
    collector: str
    asn: int
    ipv4_prefix_count: int
    miss_rate: float = 0.02
    session_flap_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.miss_rate < 1.0:
            raise ConfigurationError(f"bad miss_rate: {self.miss_rate}")
        if not 0.0 <= self.session_flap_rate <= 1.0:
            raise ConfigurationError(
                f"bad session_flap_rate: {self.session_flap_rate}")

    @property
    def full_feed(self) -> bool:
        """Whether the peer passes IODA's full-feed rule."""
        return self.ipv4_prefix_count > FULL_FEED_IPV4_THRESHOLD


def full_feed_peers(peers: Iterable[PeerSpec]) -> List[PeerSpec]:
    """Filter to full-feed peers, preserving order."""
    return [peer for peer in peers if peer.full_feed]
