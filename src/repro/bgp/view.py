"""BGPView-style visibility counting.

IODA's BGP signal for an entity is the number of /24-equivalents visible to
at least 50% of full-feed peers, computed every 5 minutes (§3.1.1).  Two
implementations are provided:

- :class:`BGPView` — the reference path: consumes a merged update stream,
  maintains one RIB per peer, and counts visibility at each bin boundary.
  Used by unit tests, examples and the single-event benches.
- :func:`visible_slash24_series` — the vectorized path used for
  fleet-scale simulation: statistically equivalent per-bin counts computed
  directly from a per-bin reachable-fraction array.  A test asserts the
  two paths agree on identical ground truth.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.bgp.messages import BGPUpdate, RouteTable
from repro.bgp.peers import PeerSpec, full_feed_peers
from repro.errors import ConfigurationError, SignalError
from repro.net.ipv4 import Prefix
from repro.signals.series import TimeSeries
from repro.timeutils.timestamps import FIVE_MINUTES, TimeRange, bin_floor

__all__ = ["BGPView", "visible_slash24_series"]

#: A prefix is visible when at least this fraction of full-feed peers
#: carries it.
VISIBILITY_QUORUM = 0.5


class BGPView:
    """Reference per-bin visibility counter.

    Feed it the peers and a time-ordered update stream; it reconstructs
    each peer's RIB and reports, for every bin in the window, the number of
    /24-equivalents visible to at least half of the full-feed peers.
    """

    def __init__(self, peers: Sequence[PeerSpec],
                 bin_width: int = FIVE_MINUTES):
        self._full_feed = full_feed_peers(peers)
        if not self._full_feed:
            raise ConfigurationError("BGPView requires full-feed peers")
        self._bin_width = bin_width

    @property
    def quorum(self) -> int:
        """Minimum number of full-feed peers for visibility."""
        return int(np.ceil(len(self._full_feed) * VISIBILITY_QUORUM))

    def count_series(self, updates: Iterable[BGPUpdate],
                     window: TimeRange,
                     prefixes: Sequence[Prefix]) -> TimeSeries:
        """Visible-/24 series over ``window`` for the given prefix set.

        ``updates`` must be time-ordered (as produced by
        :class:`repro.bgp.stream.BGPStream`).  The value of each bin is the
        visibility measured at the bin's *end*, matching IODA publishing a
        bin only once it closes.
        """
        full_feed_ids = {p.peer_id for p in self._full_feed}
        ribs: Dict[int, RouteTable] = {
            peer.peer_id: RouteTable() for peer in self._full_feed}
        series = TimeSeries.zeros(window, self._bin_width)
        update_iter = iter(updates)
        pending = next(update_iter, None)
        prefix_list = list(prefixes)
        for index in range(len(series)):
            bin_end = series.start + (index + 1) * self._bin_width
            while pending is not None and pending.time < bin_end:
                if pending.peer_id in full_feed_ids:
                    ribs[pending.peer_id].apply(pending)
                pending = next(update_iter, None)
            series.values[index] = self._visible24(ribs, prefix_list)
        return series

    def _visible24(self, ribs: Dict[int, RouteTable],
                   prefixes: List[Prefix]) -> int:
        quorum = self.quorum
        total = 0
        for prefix in prefixes:
            carriers = sum(1 for rib in ribs.values() if prefix in rib)
            if carriers >= quorum:
                total += prefix.num_slash24s
        return total


def visible_slash24_series(
        window: TimeRange,
        prefix_slash24s: Sequence[int],
        up_fraction: np.ndarray,
        rng: np.random.Generator,
        n_full_feed_peers: int = 24,
        miss_rate: float = 0.02,
        bin_width: int = FIVE_MINUTES) -> TimeSeries:
    """Vectorized visible-/24 series.

    ``prefix_slash24s`` gives the /24-equivalent size of each announced
    prefix; ``up_fraction[i]`` is the ground-truth fraction of the entity's
    address space reachable during bin ``i``.  Prefixes are taken down
    largest-fraction-first deterministically (a severity-``s`` event
    removes a contiguous ``s`` share of the space — disruptions hit whole
    operators, not random prefixes), and per-prefix peer visibility noise
    is applied exactly as the reference path would produce it.
    """
    sizes = np.asarray(prefix_slash24s, dtype=np.int64)
    if sizes.ndim != 1 or len(sizes) == 0:
        raise SignalError("prefix_slash24s must be a non-empty 1-D sequence")
    start = bin_floor(window.start, bin_width)
    n_bins = -(-(window.end - start) // bin_width)
    up = np.asarray(up_fraction, dtype=np.float64)
    if up.shape != (n_bins,):
        raise SignalError(
            f"up_fraction has shape {up.shape}, expected ({n_bins},)")

    total24 = int(sizes.sum())
    # An up-fraction f keeps the first f share of the address space
    # reachable (disruptions hit operators from the tail of the
    # allocation order).  The boundary prefix is partially reachable —
    # its surviving sub-prefixes stay announced — so it contributes its
    # remaining /24 budget rather than flapping whole.
    cumprev = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    budget = np.round(up * total24)
    contribution = np.clip(
        budget[:, None] - cumprev[None, :], 0, sizes[None, :])

    quorum = int(np.ceil(n_full_feed_peers * VISIBILITY_QUORUM))
    # P(prefix visible | up) = P(Binomial(K, 1-miss) >= quorum), computed
    # once: per-bin carrier counts are iid across bins and prefixes, so a
    # Bernoulli draw at this probability is distributionally identical to
    # simulating every peer, at a fraction of the cost.
    p_visible = _p_visible(quorum, n_full_feed_peers, miss_rate)
    visible = rng.random((n_bins, len(sizes))) < p_visible
    values = (contribution * visible).sum(axis=1)
    return TimeSeries(start, bin_width, values.astype(np.float64))


@lru_cache(maxsize=64)
def _p_visible(quorum: int, n_peers: int, miss_rate: float) -> float:
    """Memoized P(prefix visible | up) — every entity in a run shares
    the same peer count and miss rate."""
    return float(1.0 - _binom_cdf(quorum - 1, n_peers, 1.0 - miss_rate))


def _binom_cdf(k: int, n: int, p: float) -> float:
    """P(X <= k) for X ~ Binomial(n, p) (exact summation)."""
    if k < 0:
        return 0.0
    from repro.stats.binomial import binomial_pmf
    return min(1.0, sum(binomial_pmf(i, n, p) for i in range(k + 1)))
