"""Route collectors synthesizing per-peer update streams.

A :class:`Collector` owns a set of peers and, given a ground-truth
:class:`ReachabilityTimeline` for a set of prefixes, emits the
:class:`~repro.bgp.messages.BGPUpdate` stream each peer would record:
withdrawals shortly after a prefix becomes unreachable, re-announcements on
recovery, with per-peer propagation jitter and per-peer misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.bgp.messages import BGPUpdate, UpdateType
from repro.bgp.peers import PeerSpec
from repro.errors import ConfigurationError
from repro.net.ipv4 import Prefix
from repro.rng import substream
from repro.timeutils.timestamps import TimeRange

__all__ = ["ReachabilityTimeline", "Collector"]


@dataclass
class ReachabilityTimeline:
    """Ground-truth reachability transitions for a set of prefixes.

    Each prefix starts reachable at ``window.start``; ``transitions`` maps
    a prefix to a time-ordered list of ``(time, reachable)`` changes inside
    the window.
    """

    window: TimeRange
    prefixes: Tuple[Prefix, ...]
    transitions: Dict[Prefix, List[Tuple[int, bool]]] = field(
        default_factory=dict)

    def mark_down(self, prefixes: Iterable[Prefix], span: TimeRange) -> None:
        """Mark ``prefixes`` unreachable during ``span``."""
        clipped = span.intersect(self.window)
        if clipped is None:
            return
        for prefix in prefixes:
            changes = self.transitions.setdefault(prefix, [])
            changes.append((clipped.start, False))
            if clipped.end < self.window.end:
                changes.append((clipped.end, True))
            changes.sort()


class Collector:
    """One route collector with its peer sessions."""

    def __init__(self, name: str, peers: Sequence[PeerSpec], seed: int,
                 propagation_jitter_s: int = 90):
        if not peers:
            raise ConfigurationError(f"collector {name} has no peers")
        for peer in peers:
            if peer.collector != name:
                raise ConfigurationError(
                    f"peer {peer.peer_id} belongs to {peer.collector}, "
                    f"not {name}")
        self._name = name
        self._peers = tuple(peers)
        self._seed = seed
        self._jitter = propagation_jitter_s

    @property
    def name(self) -> str:
        return self._name

    @property
    def peers(self) -> Tuple[PeerSpec, ...]:
        return self._peers

    def updates(self, timeline: ReachabilityTimeline) -> List[BGPUpdate]:
        """Synthesize the full update stream for this collector.

        Every peer initially announces every prefix it carries (time =
        window start), then mirrors the ground-truth transitions with
        propagation jitter.  Peers with a nonzero ``session_flap_rate``
        occasionally reset their session, withdrawing their whole table
        and re-announcing it minutes later — a classic source of
        single-peer visibility dips that the 50%-quorum rule absorbs.
        Returns updates in time order.
        """
        updates: List[BGPUpdate] = []
        for peer in self._peers:
            rng = substream(self._seed, "collector", self._name,
                            peer.peer_id)
            carried = self._carried(peer, timeline.prefixes, rng)
            for prefix in carried:
                updates.append(BGPUpdate(
                    time=timeline.window.start,
                    collector=self._name,
                    peer_id=peer.peer_id,
                    update_type=UpdateType.ANNOUNCE,
                    prefix=prefix,
                ))
                for when, reachable in timeline.transitions.get(prefix, []):
                    jitter = int(rng.integers(0, self._jitter + 1))
                    updates.append(BGPUpdate(
                        time=min(when + jitter, timeline.window.end - 1),
                        collector=self._name,
                        peer_id=peer.peer_id,
                        update_type=(UpdateType.ANNOUNCE if reachable
                                     else UpdateType.WITHDRAW),
                        prefix=prefix,
                    ))
            updates.extend(self._session_flaps(peer, carried, timeline,
                                               rng))
        updates.sort(key=BGPUpdate.sort_key)
        return updates

    def _session_flaps(self, peer: PeerSpec, carried: List[Prefix],
                       timeline: ReachabilityTimeline,
                       rng: np.random.Generator) -> List[BGPUpdate]:
        """Whole-table withdraw/re-announce cycles from session resets."""
        if peer.session_flap_rate <= 0.0 or not carried:
            return []
        window = timeline.window
        n_days = max(1, window.duration // 86400)
        n_flaps = int(rng.binomial(n_days, peer.session_flap_rate))
        updates: List[BGPUpdate] = []
        for _ in range(n_flaps):
            reset_at = int(window.start
                           + rng.integers(0, max(1, window.duration - 600)))
            recovery = reset_at + int(rng.integers(60, 540))
            for prefix in carried:
                updates.append(BGPUpdate(
                    time=reset_at, collector=self._name,
                    peer_id=peer.peer_id,
                    update_type=UpdateType.WITHDRAW, prefix=prefix))
                updates.append(BGPUpdate(
                    time=min(recovery, window.end - 1),
                    collector=self._name, peer_id=peer.peer_id,
                    update_type=UpdateType.ANNOUNCE, prefix=prefix))
        return updates

    @staticmethod
    def _carried(peer: PeerSpec, prefixes: Tuple[Prefix, ...],
                 rng: np.random.Generator) -> List[Prefix]:
        """The subset of prefixes this peer carries (full feed minus
        misses)."""
        mask = rng.random(len(prefixes)) >= peer.miss_rate
        return [prefix for prefix, keep in zip(prefixes, mask) if keep]
