"""BGP measurement substrate.

IODA's BGP signal counts, every 5 minutes, the number of /24-equivalents
visible to at least 50% of "full-feed" peers across all RouteViews and RIPE
RIS collectors (§3.1.1).  This subpackage implements that machinery:

- :mod:`repro.bgp.messages` — update/withdraw records and per-peer RIBs.
- :mod:`repro.bgp.peers` — peer specifications and the full-feed rule
  (>400k IPv4 prefixes).
- :mod:`repro.bgp.collector` — collectors that synthesize per-peer update
  streams from a ground-truth reachability timeline.
- :mod:`repro.bgp.stream` — a BGPStream-style time-ordered merge of
  multiple collectors.
- :mod:`repro.bgp.view` — the BGPView-style visibility counter producing
  the per-entity visible-/24 series, plus the vectorized fast path used
  for fleet-scale simulation.
"""

from repro.bgp.messages import BGPUpdate, RouteTable, UpdateType
from repro.bgp.peers import PeerSpec, full_feed_peers
from repro.bgp.collector import Collector, ReachabilityTimeline
from repro.bgp.stream import BGPStream
from repro.bgp.view import BGPView, visible_slash24_series

__all__ = [
    "BGPUpdate",
    "RouteTable",
    "UpdateType",
    "PeerSpec",
    "full_feed_peers",
    "Collector",
    "ReachabilityTimeline",
    "BGPStream",
    "BGPView",
    "visible_slash24_series",
]
