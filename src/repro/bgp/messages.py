"""BGP update records and per-peer routing tables.

The simulation works at the granularity that matters for outage detection:
announcements and withdrawals of prefixes as seen by collector peers.  Path
attributes are reduced to the origin ASN — IODA's visibility counting does
not consult paths.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.net.ipv4 import Prefix

__all__ = ["UpdateType", "BGPUpdate", "RouteTable"]


class UpdateType(enum.Enum):
    """Announcement or withdrawal."""

    ANNOUNCE = "A"
    WITHDRAW = "W"


@dataclass(frozen=True, slots=True)
class BGPUpdate:
    """One update as recorded by a collector.

    Sort key is (time, peer_id, prefix) so merged streams are
    deterministic.
    """

    time: int
    collector: str
    peer_id: int
    update_type: UpdateType
    prefix: Prefix
    origin_asn: Optional[int] = None

    def sort_key(self) -> Tuple[int, str, int, int, int]:
        return (self.time, self.collector, self.peer_id,
                self.prefix.network, self.prefix.length)


class RouteTable:
    """The set of prefixes a single peer currently announces.

    Applying updates in time order reconstructs the peer's view; the
    BGPView queries :meth:`prefixes` at each bin boundary.
    """

    def __init__(self) -> None:
        self._routes: Dict[Prefix, Optional[int]] = {}

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._routes

    def apply(self, update: BGPUpdate) -> None:
        """Apply one update (announce inserts/replaces, withdraw removes)."""
        if update.update_type is UpdateType.ANNOUNCE:
            self._routes[update.prefix] = update.origin_asn
        else:
            self._routes.pop(update.prefix, None)

    def prefixes(self) -> Set[Prefix]:
        """Snapshot of currently announced prefixes."""
        return set(self._routes)

    def origin(self, prefix: Prefix) -> Optional[int]:
        """Origin ASN announced for ``prefix`` (None if unannounced or
        unknown)."""
        return self._routes.get(prefix)

    def slash24_count(self) -> int:
        """Total /24-equivalents currently announced."""
        return sum(p.num_slash24s for p in self._routes)
