"""The public streaming session.

A :class:`StreamSession` (constructed by :func:`repro.api.stream`) is
the incremental twin of :func:`repro.api.run`: the same pipeline, but
with the observation+curation stage driven from outside, bin by bin.
The session opens the run's observability envelope up front — session
activation, fault-plan injection, telemetry, the ``run`` and
``stage:scenario`` spans — builds the world once, and then holds the
``stage:curate`` span open while the caller streams:

    session = api.stream(seed=2023)
    for events in session.replay(step=7 * 86400):
        ...                      # live open/update/close lifecycle
    result = session.finalize()  # a RunResult, byte-identical to run()

``push``/``advance_watermark`` are the raw feed interface (any bin
order, duplicate-tolerant — see :class:`~repro.stream.engine.
StreamEngine`); :meth:`replay` drives them from the scenario's own
:class:`~repro.stream.source.ScenarioBinSource`.  Every lifecycle
event is journaled as a ``stream.event`` record, and the engine's
progress is exported as live gauges (``stream.watermark``,
``stream.lag_seconds``, ``stream.open_events``,
``stream.windows_active``) plus a ``stream.bins_pushed`` counter —
which is what the heartbeat sampler's ``stream`` block reports.

:meth:`finalize` ingests whatever the caller did not push (the source
replays deterministic bins, so re-pushed duplicates are no-ops),
advances the watermark to the horizon, and completes the pipeline's
remaining stages over the streamed records — KIO, merge, datasets,
stats, health, registry filing — so the returned
:class:`~repro.api.RunResult` is byte-identical to a batch run on
every backend.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Iterator, List, Optional

from repro.core.pipeline import ReproPipeline
from repro.errors import StreamError
from repro.ioda.api import IODAClient
from repro.ioda.curation import CurationConfig, CurationPipeline
from repro.ioda.platform import IODAPlatform, PlatformConfig
from repro.obs.runtime import activate
from repro.resilience import ResilienceConfig, inject
from repro.stream.engine import StreamEngine
from repro.stream.models import SignalBin, StreamEvent
from repro.stream.source import ScenarioBinSource
from repro.timeutils.timestamps import TimeRange

__all__ = ["StreamSession"]


class StreamSession:
    """One incremental run: push bins, watch events, finalize.

    Construct through :func:`repro.api.stream` — the facade assembles
    the pipeline, resilience config, and registry packaging exactly as
    :func:`repro.api.run` would.  The session is single-shot: after
    :meth:`finalize` (idempotent) or :meth:`close` the feed interface
    raises :class:`~repro.errors.StreamError`.
    """

    def __init__(self, pipeline: ReproPipeline, *, seed: int,
                 period: TimeRange,
                 platform_config: Optional[PlatformConfig] = None,
                 curation_config: Optional[CurationConfig] = None,
                 backend: str = "serial", workers: int = 1,
                 signal_cache_size: Optional[int] = None,
                 resilience: Optional[ResilienceConfig] = None,
                 package: Optional[Callable] = None):
        self._pipeline = pipeline
        self._period = period
        self._package = package
        self._resilience = resilience
        self._result = None
        self._closed = False
        self._queued: List[StreamEvent] = []
        self._stack = contextlib.ExitStack()
        try:
            self._obs = obs = pipeline.build_observability()
            plan = (resilience.fault_plan if resilience is not None
                    else None)
            self._stack.enter_context(activate(obs))
            self._stack.enter_context(inject(plan))
            obs.start_telemetry()
            self._stack.callback(obs.stop_telemetry)
            self._stack.enter_context(obs.span("run", seed=seed))
            with obs.span("stage:scenario"):
                self._scenario = pipeline.build_scenario()
            self._platform = IODAPlatform(
                self._scenario, platform_config,
                signal_cache_size=signal_cache_size)
            self._curation = CurationPipeline(
                self._platform, curation_config)
            windows = self._curation.country_windows(period)
            self._engine = StreamEngine(
                self._curation, windows, period, backend=backend,
                workers=workers, signal_cache_size=signal_cache_size)
            self._source = ScenarioBinSource(
                self._platform, windows, resilience=resilience)
            # Held open for the whole streamed stage; finalize closes
            # it so the remaining stages become its siblings, exactly
            # as in a batch run.
            self._curate_cm = obs.span(
                "stage:curate", workers=workers, backend=backend,
                streaming=True)
            self._curate_span = self._curate_cm.__enter__()
        except BaseException:
            self._stack.close()
            raise

    # -- introspection -----------------------------------------------------------

    @property
    def scenario(self):
        """The generated world the session streams."""
        return self._scenario

    @property
    def watermark(self) -> Optional[int]:
        """The last advanced watermark (None before the first advance)."""
        return self._engine.watermark

    @property
    def horizon(self) -> int:
        """The watermark at which every investigation window closes."""
        return self._engine.horizon

    @property
    def finalized(self) -> bool:
        return self._result is not None

    # -- the feed ----------------------------------------------------------------

    def push(self, bins: Iterable[SignalBin]) -> int:
        """Offer bins to the engine; return how many were new.

        Order-free and duplicate-idempotent; contract violations raise
        :class:`~repro.errors.StreamError` (see
        :meth:`repro.stream.engine.StreamEngine.push`).
        """
        self._check_live()
        accepted = self._engine.push(bins)
        if accepted:
            self._obs.metrics.counter("stream.bins_pushed").inc(accepted)
        self._update_gauges()
        return accepted

    def advance_watermark(self, watermark: int) -> List[StreamEvent]:
        """Advance time; return this advance's lifecycle events.

        Elapsed bins feed the incremental detectors, windows fully past
        the watermark are adjudicated (on the session's backend), and
        the resulting ``open``/``update``/``close`` events are
        journaled, queued for :meth:`events`, and returned.
        """
        self._check_live()
        events = self._engine.advance(watermark)
        self._record(events)
        return events

    def events(self) -> List[StreamEvent]:
        """Drain the lifecycle events queued since the last drain.

        Events accumulate across :meth:`advance_watermark` calls (and
        :meth:`finalize`'s closing advance), so a consumer polling this
        never misses one.
        """
        drained, self._queued = self._queued, []
        return drained

    def replay(self, step: int) -> Iterator[List[StreamEvent]]:
        """Drive the feed from the scenario's own bin source.

        Yields each advance's lifecycle events as the watermark walks
        the study period in ``step``-second increments.  Breaking out
        early is fine — :meth:`finalize` ingests whatever remains.
        """
        for batch in self._source.batches(step):
            self.push(batch.bins)
            yield self.advance_watermark(batch.watermark)

    def client(self) -> IODAClient:
        """A live :class:`~repro.ioda.api.IODAClient` over this stream.

        The event feed serves the records curated *so far*; cursors are
        bound to the session's watermark (the feed revision), so a
        cursor minted before an advance fails loudly with
        :class:`~repro.errors.CursorError` instead of silently paging a
        shifted feed.
        """
        return IODAClient(
            self._platform, feed=self._engine.records_so_far,
            revision=lambda: self._engine.watermark)

    # -- completion --------------------------------------------------------------

    def finalize(self):
        """Complete the run; return its :class:`~repro.api.RunResult`.

        Pushes any bins the caller never streamed (deterministic
        replays, so duplicates are no-ops), advances the watermark to
        the horizon (closing every remaining window and queueing the
        closing lifecycle events — still visible via :meth:`events`),
        and runs the pipeline's remaining stages over the streamed
        records.  Idempotent: later calls return the same result.
        """
        if self._result is not None:
            return self._result
        self._check_live()
        horizon = self._engine.horizon
        step = max(horizon - self._source.origin, 1)
        for batch in self._source.batches(step):
            self.push(batch.bins)
        try:
            self.advance_watermark(horizon)
            records = self._engine.finalized_records()
            self._curate_span.set_attrs(
                n_records=len(records), degraded=False, quarantined=())
            self._curate_cm.__exit__(None, None, None)
            result = self._pipeline.complete(self._scenario, records)
            self._stack.close()
            self._pipeline.finish(self._obs, result)
        except BaseException:
            self.close()
            raise
        self._engine.close()
        self._closed = True
        if self._package is not None:
            self._result = self._package(self._pipeline, self._obs,
                                         result)
        else:
            from repro.api import RunResult

            assert (self._pipeline.stats is not None
                    and self._pipeline.health is not None)
            self._result = RunResult(
                events=result, stats=self._pipeline.stats,
                health=self._pipeline.health)
        return self._result

    def close(self) -> None:
        """Abandon the stream without completing the run (idempotent).

        Releases the engine's pool and seals the observability session;
        a finalized session's :meth:`finalize` result stays valid.
        """
        if self._closed:
            return
        self._closed = True
        with contextlib.suppress(BaseException):
            self._curate_cm.__exit__(None, None, None)
        self._stack.close()
        self._engine.close()
        self._obs.finish()

    def __enter__(self) -> "StreamSession":
        return self

    def __exit__(self, *exc) -> None:
        if self._result is None and exc == (None, None, None):
            self.finalize()
        else:
            self.close()

    # -- internals ---------------------------------------------------------------

    def _check_live(self) -> None:
        if self._closed:
            raise StreamError(
                "stream session is finalized/closed; start a new one "
                "with api.stream(...)")

    def _record(self, events: List[StreamEvent]) -> None:
        journal = self._obs.journal
        if journal is not None:
            for event in events:
                journal.write({"type": "stream.event",
                               **event.as_dict()})
        self._queued.extend(events)
        self._update_gauges()

    def _update_gauges(self) -> None:
        metrics = self._obs.metrics
        engine = self._engine
        if engine.watermark is not None:
            metrics.gauge("stream.watermark").set(engine.watermark)
        lag = engine.watermark_lag
        if lag is not None:
            metrics.gauge("stream.lag_seconds").set(lag)
        metrics.gauge("stream.open_events").set(engine.open_event_count)
        metrics.gauge("stream.windows_active").set(
            engine.active_window_count)
        recorder = self._obs.provenance
        if recorder is not None:
            metrics.gauge("stream.provenance_capsules").set(
                len(recorder.capsules))
