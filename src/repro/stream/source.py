"""Replaying a scenario as a live bin feed.

:class:`ScenarioBinSource` turns the synthetic platform into the thing
the paper's platforms actually are: a feed that delivers measurement
bins as time passes.  It walks the scenario's investigation windows,
pulls each (country, window, signal) series from the platform exactly
once — lazily, the first time the advancing watermark reaches it — and
hands the elapsed bins out as watermarked :class:`~repro.stream.models.
BinBatch`\\ es.  Because platform signals are deterministic per (seed,
entity, window start), the feed replays the very bins batch detection
would read, which is what makes stream-vs-batch byte-identity provable.

The pull is the source's fault-injection site: with a
:class:`~repro.resilience.ResilienceConfig`, each series fetch runs
under :func:`~repro.resilience.call_with_retry` (site
``stream.source``), so an ambient :class:`~repro.resilience.FaultPlan`
can fail fetches that then back off and retry deterministically.  A
recovered fetch returns the same deterministic series a fault-free run
reads — a chaos stream that survives its faults finalizes byte-identical
to a calm one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Mapping, Optional, Sequence

import numpy as np

from repro.errors import StreamError
from repro.ioda.platform import IODAPlatform
from repro.resilience import BreakerBoard, ResilienceConfig, call_with_retry
from repro.signals.entities import Entity
from repro.signals.kinds import SignalKind
from repro.stream.models import BinBatch, SignalBin, bin_grid
from repro.timeutils.timestamps import TimeRange

__all__ = ["ScenarioBinSource"]


@dataclass
class _Grid:
    """Replay cursor over one (country, window, signal) series."""

    iso2: str
    window: TimeRange
    kind: SignalKind
    start: int
    n_bins: int
    cursor: int = 0
    bin_starts: Optional[np.ndarray] = None
    values: Optional[np.ndarray] = None

    @property
    def end(self) -> int:
        return self.start + self.n_bins * self.kind.bin_width


class ScenarioBinSource:
    """Streams a scenario's country-level signal bins in watermark steps.

    ``windows`` is the per-country investigation-window map
    (:meth:`repro.ioda.curation.CurationPipeline.country_windows`) — the
    same map the batch executor distributes, so the source covers
    exactly the bins batch curation reads.
    """

    def __init__(self, platform: IODAPlatform,
                 windows: Mapping[str, Sequence[TimeRange]], *,
                 resilience: Optional[ResilienceConfig] = None):
        self._platform = platform
        self._resilience = resilience
        self._board = (BreakerBoard(resilience.breaker)
                       if resilience is not None else None)
        self._grids: List[_Grid] = []
        for iso2 in sorted(windows):
            for window in windows[iso2]:
                for kind in SignalKind:
                    start, n_bins = bin_grid(window, kind)
                    self._grids.append(_Grid(
                        iso2=iso2, window=window, kind=kind,
                        start=start, n_bins=n_bins))

    @property
    def horizon(self) -> int:
        """Timestamp past the last bin of the last window."""
        if not self._grids:
            raise StreamError("source has no windows to stream")
        return max(grid.end for grid in self._grids)

    @property
    def origin(self) -> int:
        """Timestamp of the earliest bin of any window."""
        if not self._grids:
            raise StreamError("source has no windows to stream")
        return min(grid.start for grid in self._grids)

    def batches(self, step: int) -> Iterator[BinBatch]:
        """Yield the feed in watermark increments of ``step`` seconds.

        Each batch carries every bin that fully elapsed since the
        previous batch (bin end <= watermark) plus the watermark
        itself, so a driver can ``push`` then ``advance_watermark`` in
        one move.  The final batch's watermark is exactly
        :attr:`horizon`.  Series are materialized lazily and the
        backing arrays dropped as soon as their last bin ships, so the
        source never holds the whole study period at once.
        """
        if step <= 0:
            raise StreamError(f"watermark step must be positive: {step}")
        if not self._grids:
            return
        horizon = self.horizon
        watermark = self.origin
        while watermark < horizon:
            watermark = min(watermark + step, horizon)
            bins: List[SignalBin] = []
            for grid in self._grids:
                width = grid.kind.bin_width
                ready = min(grid.n_bins,
                            (watermark - grid.start) // width)
                if ready <= grid.cursor:
                    continue
                if grid.values is None:
                    self._materialize(grid)
                assert grid.bin_starts is not None \
                    and grid.values is not None
                for i in range(grid.cursor, ready):
                    bins.append(SignalBin(
                        country_iso2=grid.iso2, kind=grid.kind,
                        window_start=grid.window.start,
                        time=int(grid.bin_starts[i]),
                        value=float(grid.values[i])))
                grid.cursor = ready
                if grid.cursor >= grid.n_bins:
                    grid.bin_starts = grid.values = None
            yield BinBatch(bins=tuple(bins), watermark=watermark)

    def _materialize(self, grid: _Grid) -> None:
        """Pull one series from the platform (the retried fault site)."""
        entity = Entity.country(grid.iso2)

        def pull() -> None:
            series = self._platform.signal(entity, grid.kind, grid.window)
            starts, values = series.arrays()
            if starts.shape[0] != grid.n_bins or int(starts[0]) != grid.start:
                raise StreamError(
                    f"platform series disagrees with the bin grid for "
                    f"{grid.iso2}/{grid.kind.value} at {grid.window}")
            grid.bin_starts = starts.copy()
            grid.values = values.copy()

        if self._resilience is None:
            pull()
            return
        assert self._board is not None
        call_with_retry(
            pull, policy=self._resilience.retry,
            key=f"{grid.iso2}:{grid.window.start}:{grid.kind.value}",
            site="stream.source",
            breaker=self._board.get(grid.iso2))
