"""Wire types of the streaming surface.

These are the values that cross the :class:`~repro.stream.session.
StreamSession` boundary: :class:`SignalBin` going in (one platform
measurement bin), :class:`StreamEvent` coming out (one step of an
outage-event lifecycle).  Everything here is a frozen, picklable
dataclass so the same payloads flow unchanged through the serial,
thread, and process backends and into the run journal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.errors import StreamError
from repro.ioda.records import OutageRecord
from repro.signals.kinds import SignalKind
from repro.timeutils.timestamps import TimeRange, bin_floor

__all__ = ["SignalBin", "BinBatch", "StreamEvent", "EVENT_STATES",
           "EVENT_OUTCOMES", "bin_grid"]


def bin_grid(window: TimeRange, kind: SignalKind) -> Tuple[int, int]:
    """(first bin start, bin count) of a signal's grid over a window.

    This is the platform's own layout (`IODAPlatform._up_fraction`):
    bins are floored to the signal's width at the window start and cover
    the window end.  The engine and the source must agree on it exactly
    — it defines both which bins a window expects and when a watermark
    closes the window.
    """
    width = kind.bin_width
    start = bin_floor(window.start, width)
    n_bins = -(-(window.end - start) // width)
    return start, n_bins

#: Lifecycle states a :class:`StreamEvent` may carry.
EVENT_STATES = ("open", "update", "close")

#: Terminal outcomes a ``close`` event may carry.
EVENT_OUTCOMES = ("recorded", "dismissed", "merged")


@dataclass(frozen=True)
class SignalBin:
    """One measurement bin of one country-level signal.

    ``window_start`` tags the investigation window the bin belongs to —
    platform signals are keyed by window start (the synthetic platform
    derives each window's random substream from it), so the engine must
    route bins to the right per-window detector.  ``time`` is the bin's
    own start timestamp; ``value`` the measured signal level.
    """

    country_iso2: str
    kind: SignalKind
    window_start: int
    time: int
    value: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "country_iso2": self.country_iso2,
            "kind": self.kind.value,
            "window_start": self.window_start,
            "time": self.time,
            "value": self.value,
        }


@dataclass(frozen=True)
class BinBatch:
    """A batch of bins plus the watermark they justify.

    Produced by :class:`repro.stream.source.ScenarioBinSource` when
    replaying a scenario step by step; ``watermark`` is the timestamp up
    to which the source promises all its bins have been delivered, so a
    driver can push the batch and advance in one move.
    """

    bins: Tuple[SignalBin, ...]
    watermark: int

    def __post_init__(self) -> None:
        for b in self.bins:
            if b.time >= self.watermark:
                raise StreamError(
                    f"bin at {b.time} not covered by its own batch "
                    f"watermark {self.watermark}")


@dataclass(frozen=True)
class StreamEvent:
    """One step of an outage-event lifecycle.

    ``seq`` is a session-global, gap-free sequence number (the journal
    and replay order).  ``key`` identifies the event across its
    lifecycle: the (country, first-seen candidate span start) pair,
    rendered ``"CC:timestamp"``.  ``state`` is ``open`` when a visible
    alert-episode cluster first crosses the watermark, ``update`` when
    its provisional span or signal set changes on a later advance, and
    ``close`` when the window is adjudicated (or the cluster merged
    into a neighbour).  A ``close`` carries an ``outcome`` —
    ``recorded`` (with the curated :class:`~repro.ioda.records.
    OutageRecord`), ``dismissed``, or ``merged`` — and only a ``close``
    does.

    ``capsule_id`` references the provenance lineage capsule behind the
    event when the session runs with provenance enabled (the
    adjudication capsule on a decided ``close``, a lifecycle capsule on
    provisional states), and is ``None`` otherwise.  It is journal-only
    metadata: the record payload is identical either way.
    """

    seq: int
    state: str
    key: str
    country_iso2: str
    window_start: int
    span: TimeRange
    signals: Tuple[SignalKind, ...]
    watermark: int
    outcome: Optional[str] = None
    record: Optional[OutageRecord] = None
    capsule_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.state not in EVENT_STATES:
            raise StreamError(f"unknown event state: {self.state!r}")
        if self.state == "close":
            if self.outcome not in EVENT_OUTCOMES:
                raise StreamError(
                    f"close event needs an outcome from {EVENT_OUTCOMES}: "
                    f"{self.outcome!r}")
        elif self.outcome is not None:
            raise StreamError(
                f"{self.state!r} event must not carry an outcome")
        if self.record is not None and self.outcome != "recorded":
            raise StreamError(
                "only a 'recorded' close may carry an outage record")

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering (for the journal and the CLI)."""
        from repro.io import record_to_dict

        out: Dict[str, Any] = {
            "seq": self.seq,
            "state": self.state,
            "key": self.key,
            "country_iso2": self.country_iso2,
            "window_start": self.window_start,
            "span": {"start": self.span.start, "end": self.span.end},
            "signals": [k.value for k in self.signals],
            "watermark": self.watermark,
        }
        if self.outcome is not None:
            out["outcome"] = self.outcome
        if self.record is not None:
            out["record"] = record_to_dict(self.record)
        if self.capsule_id is not None:
            out["capsule_id"] = self.capsule_id
        return out
