"""The watermark-driven streaming engine.

:class:`StreamEngine` is the processor behind
:class:`~repro.stream.session.StreamSession`: bins are **offered** in
any order (:meth:`push`), buffered on each investigation window's bin
grid, and **consumed** in time order when the watermark advances
(:meth:`advance`) — contiguous elapsed prefixes feed the incremental
detectors (:mod:`repro.stream.detect`), and a window whose last bin the
watermark passes is adjudicated through the exact batch curation loop
(:meth:`repro.ioda.curation.CurationPipeline.adjudicate_window`).
Because the detectors are bitwise-equal to the columnar batch path and
adjudication consumes the per-country RNG substream and record ids in
batch order, the finalized record set is byte-identical to
:meth:`repro.ioda.curation.CurationPipeline.run` over the same windows
— however the bins were chunked, and on every backend.

Between adjudications the engine maintains a provisional **event
lifecycle**: after each advance it re-clusters the episodes seen so far
(plus each detector's still-open alert run), and emits
:class:`~repro.stream.models.StreamEvent`\\ s — ``open`` when a
human-visible candidate first appears, ``update`` when its span or
signal set grows, ``close`` when the window is adjudicated (outcome
``recorded``/``dismissed``) or the candidate merges into a neighbour
(``merged``).  The provisional pass is pure (no RNG, no record ids), so
watching a stream never perturbs its final records.

Contract violations raise :class:`~repro.errors.StreamError`:
misaligned bins, conflicting duplicate values, a regressing watermark,
bins still missing when the watermark passes them, or pushes into an
adjudicated window.  Exact duplicates are idempotent no-ops.

Backends mirror the batch executor: ``serial`` adjudicates inline,
``thread`` fans countries out over a thread pool sharing the platform,
``process`` ships (windows, episodes, RNG state) to workers holding the
worker-resident world (:mod:`repro.stream.workers`).  Countries are
independent — same substream discipline as the batch shards — so all
three produce the same bytes.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, StreamError
from repro.exec.workers import worker_init
from repro.ioda.curation import CurationPipeline, WindowAdjudication, \
    finalize_records
from repro.ioda.detectors import detector_for
from repro.ioda.records import OutageRecord
from repro.obs.provenance import DrawCursor
from repro.obs.runtime import current
from repro.rng import substream
from repro.signals.alerts import AlertEpisode
from repro.signals.kinds import SignalKind
from repro.stream.detect import StreamingAlertDetector, \
    StreamingEpisodeGrouper
from repro.stream.models import SignalBin, StreamEvent, bin_grid
from repro.stream.workers import adjudicate_country_subprocess
from repro.timeutils.timestamps import TimeRange

__all__ = ["STREAM_BACKENDS", "StreamEngine"]

STREAM_BACKENDS = ("serial", "thread", "process")


class _SeriesState:
    """Buffer + incremental detector for one (window, signal) grid."""

    __slots__ = ("kind", "start", "width", "n_bins", "bin_starts",
                 "values", "present", "fed", "detector", "grouper",
                 "episodes")

    def __init__(self, window: TimeRange, kind: SignalKind):
        start, n_bins = bin_grid(window, kind)
        self.kind = kind
        self.start = start
        self.width = kind.bin_width
        self.n_bins = n_bins
        self.bin_starts = start + self.width * np.arange(
            n_bins, dtype=np.int64)
        self.values = np.empty(n_bins, dtype=np.float64)
        self.present = np.zeros(n_bins, dtype=bool)
        self.fed = 0
        self.detector = StreamingAlertDetector(
            detector_for(kind).config, self.width)
        self.grouper = StreamingEpisodeGrouper(self.width)
        self.episodes: List[AlertEpisode] = []

    @property
    def end(self) -> int:
        return self.start + self.n_bins * self.width


@dataclass
class _Open:
    """A provisional (not yet adjudicated) lifecycle event."""

    key: int
    span: TimeRange
    signals: Tuple[SignalKind, ...]


class _WindowState:
    """One investigation window's buffers and open lifecycle events."""

    __slots__ = ("window", "series", "close_ts", "opens", "adjudicated",
                 "touched")

    def __init__(self, window: TimeRange):
        self.window = window
        self.series: Optional[Dict[SignalKind, _SeriesState]] = {
            kind: _SeriesState(window, kind) for kind in SignalKind}
        self.close_ts = max(s.end for s in self.series.values())
        self.opens: Dict[int, _Open] = {}
        self.adjudicated = False
        self.touched = False


class _CountryState:
    """One country's windows, RNG substream, and curated records."""

    __slots__ = ("iso2", "windows", "by_start", "rng", "next_record_id",
                 "records", "draws")

    def __init__(self, iso2: str, windows: Sequence[TimeRange], seed: int):
        self.iso2 = iso2
        self.windows = [_WindowState(w) for w in windows]
        self.by_start = {w.window.start: w for w in self.windows}
        self.rng = substream(seed, "curation", iso2)
        self.next_record_id = 1
        self.records: List[OutageRecord] = []
        # RNG-draw cursor for provenance capsules; persists across
        # advances (and ships to process workers) so capsule substream
        # coordinates are chunking-independent and match a batch run.
        self.draws = DrawCursor()


class StreamEngine:
    """Incremental curation over pushed bins and an advancing watermark."""

    def __init__(self, pipeline: CurationPipeline,
                 windows: Mapping[str, Sequence[TimeRange]],
                 period: TimeRange, *, backend: str = "serial",
                 workers: int = 1,
                 signal_cache_size: Optional[int] = None):
        if backend not in STREAM_BACKENDS:
            raise ConfigurationError(
                f"unknown stream backend {backend!r}; expected one of "
                f"{STREAM_BACKENDS}")
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1: {workers}")
        self._pipeline = pipeline
        self._period = period
        self._backend = backend
        self._workers = workers
        self._signal_cache_size = signal_cache_size
        platform = pipeline.platform
        scenario = platform.scenario
        self._scenario_config = scenario.config
        self._platform_config = platform.config
        self._curation_config = pipeline.config
        self._order = sorted(windows)
        self._countries = {
            iso2: _CountryState(iso2, windows[iso2], scenario.seed)
            for iso2 in self._order}
        self._watermark: Optional[int] = None
        self._max_bin_end: Optional[int] = None
        self._bins_pushed = 0
        self._seq = itertools.count(1)
        self._process_pool: Optional[ProcessPoolExecutor] = None

    # -- introspection (the session's telemetry reads these) ------------------

    @property
    def watermark(self) -> Optional[int]:
        """The last advanced watermark (None before the first advance)."""
        return self._watermark

    @property
    def bins_pushed(self) -> int:
        """Distinct bins accepted so far (duplicates not counted)."""
        return self._bins_pushed

    @property
    def watermark_lag(self) -> Optional[int]:
        """Seconds between the newest pushed bin's end and the watermark."""
        if self._max_bin_end is None:
            return None
        return self._max_bin_end - (self._watermark
                                    if self._watermark is not None
                                    else self._max_bin_end)

    @property
    def open_event_count(self) -> int:
        return sum(len(ws.opens)
                   for cs in self._countries.values()
                   for ws in cs.windows if not ws.adjudicated)

    @property
    def active_window_count(self) -> int:
        """Windows not yet adjudicated."""
        return sum(1 for cs in self._countries.values()
                   for ws in cs.windows if not ws.adjudicated)

    @property
    def horizon(self) -> int:
        """Watermark at which every window closes."""
        return max(ws.close_ts for cs in self._countries.values()
                   for ws in cs.windows)

    # -- ingestion -------------------------------------------------------------

    def push(self, bins: Iterable[SignalBin]) -> int:
        """Offer bins, in any order; return how many were new.

        Exact duplicates of already-offered bins are idempotent no-ops
        (replayed feeds are expected); a duplicate with a *different*
        value, a bin off its grid, an unknown (country, window), or a
        push into an adjudicated window raises
        :class:`~repro.errors.StreamError`.
        """
        accepted = 0
        for b in bins:
            cs = self._countries.get(b.country_iso2)
            if cs is None:
                raise StreamError(
                    f"no investigation windows for country "
                    f"{b.country_iso2!r}")
            ws = cs.by_start.get(b.window_start)
            if ws is None:
                raise StreamError(
                    f"{b.country_iso2} has no investigation window "
                    f"starting at {b.window_start}")
            if ws.adjudicated or ws.series is None:
                raise StreamError(
                    f"window {ws.window} of {b.country_iso2} is already "
                    f"adjudicated; cannot push bin at {b.time}")
            ss = ws.series[b.kind]
            offset = b.time - ss.start
            idx, rem = divmod(offset, ss.width)
            if rem or not 0 <= idx < ss.n_bins:
                raise StreamError(
                    f"bin at {b.time} is off the {ss.width}s grid "
                    f"[{ss.start}, {ss.end}) of {b.country_iso2}/"
                    f"{b.kind.value}")
            if ss.present[idx]:
                if ss.values[idx] != b.value:
                    raise StreamError(
                        f"conflicting duplicate for {b.country_iso2}/"
                        f"{b.kind.value} at {b.time}: had "
                        f"{ss.values[idx]!r}, got {b.value!r}")
                continue
            ss.values[idx] = b.value
            ss.present[idx] = True
            accepted += 1
            end = b.time + ss.width
            if self._max_bin_end is None or end > self._max_bin_end:
                self._max_bin_end = end
        self._bins_pushed += accepted
        return accepted

    # -- the watermark ---------------------------------------------------------

    def advance(self, watermark: int) -> List[StreamEvent]:
        """Advance the watermark; consume elapsed bins; emit lifecycle.

        Feeds every window's contiguous elapsed prefix to its
        detectors, adjudicates windows whose last bin elapsed (fanned
        out per country on the configured backend), and returns the
        lifecycle events of this advance in deterministic (country,
        window) order.  A regressing watermark raises; re-advancing to
        the current watermark is a no-op.
        """
        if self._watermark is not None:
            if watermark < self._watermark:
                raise StreamError(
                    f"watermark must not regress: {watermark} < "
                    f"{self._watermark}")
            if watermark == self._watermark:
                return []
        self._watermark = watermark
        due: Dict[str, List[_WindowState]] = {}
        for iso2 in self._order:
            for ws in self._countries[iso2].windows:
                if ws.adjudicated:
                    continue
                self._feed_window(iso2, ws, watermark)
                if watermark >= ws.close_ts:
                    self._complete_window(iso2, ws)
                    due.setdefault(iso2, []).append(ws)
        events: List[StreamEvent] = []
        due_windows = {id(ws) for states in due.values() for ws in states}
        for iso2 in self._order:
            cs = self._countries[iso2]
            for ws in cs.windows:
                if ws.adjudicated or id(ws) in due_windows \
                        or not ws.touched:
                    continue
                events.extend(self._refresh_lifecycle(cs, ws))
                ws.touched = False
        adjudications = self._adjudicate(due)
        for iso2 in sorted(due):
            cs = self._countries[iso2]
            for ws, adj in zip(due[iso2], adjudications[iso2]):
                events.extend(self._close_window(cs, ws, adj))
                cs.records.extend(adj.records)
                ws.adjudicated = True
                ws.series = None  # buffers and detector state released
        return events

    def _feed_window(self, iso2: str, ws: _WindowState,
                     watermark: int) -> None:
        assert ws.series is not None
        for kind in SignalKind:
            ss = ws.series[kind]
            ready = min(ss.n_bins, (watermark - ss.start) // ss.width)
            if ready <= ss.fed:
                continue
            pending = ss.present[ss.fed:ready]
            if not pending.all():
                missing = ss.start + ss.width * (
                    ss.fed + int(np.flatnonzero(~pending)[0]))
                raise StreamError(
                    f"watermark {watermark} passed bin at {missing} of "
                    f"{iso2}/{kind.value} before it was pushed")
            alerts = ss.detector.feed(ss.bin_starts[ss.fed:ready],
                                      ss.values[ss.fed:ready])
            ss.episodes.extend(ss.grouper.feed(alerts))
            ss.fed = ready
            if alerts:
                ws.touched = True

    def _complete_window(self, iso2: str, ws: _WindowState) -> None:
        assert ws.series is not None
        for kind in SignalKind:
            ss = ws.series[kind]
            if ss.fed < ss.n_bins:
                raise StreamError(
                    f"window {ws.window} of {iso2} closed with "
                    f"{ss.n_bins - ss.fed} {kind.value} bins never fed")
            ss.episodes.extend(ss.grouper.finalize())

    @staticmethod
    def _episodes_of(ws: _WindowState, *, provisional: bool
                     ) -> Dict[SignalKind, List[AlertEpisode]]:
        assert ws.series is not None
        episodes: Dict[SignalKind, List[AlertEpisode]] = {}
        for kind in SignalKind:
            ss = ws.series[kind]
            eps = list(ss.episodes)
            if provisional:
                open_episode = ss.grouper.open_episode()
                if open_episode is not None:
                    eps.append(open_episode)
            episodes[kind] = eps
        return episodes

    # -- lifecycle -------------------------------------------------------------

    def _refresh_lifecycle(self, cs: _CountryState,
                           ws: _WindowState) -> List[StreamEvent]:
        """Re-cluster the window's provisional view; emit open/update.

        Pure with respect to the run: clustering, the observation
        calendar, and visibility recomputation touch neither the RNG
        nor record ids, so a watched stream records the same bytes as
        an unwatched one.
        """
        events: List[StreamEvent] = []
        candidates = self._pipeline.cluster_episodes(
            self._episodes_of(ws, provisional=True))
        consumed: set = set()
        for candidate in candidates:
            if not self._pipeline.observes(candidate.span.start):
                continue
            visible = tuple(self._pipeline.visible_signals_of(candidate))
            if not visible:
                continue
            span = candidate.span
            matches = sorted(
                key for key, open_ in ws.opens.items()
                if key not in consumed and open_.span.overlaps(span))
            if not matches:
                open_ = _Open(key=span.start, span=span, signals=visible)
                ws.opens[open_.key] = open_
                consumed.add(open_.key)
                events.append(self._emit(
                    "open", cs.iso2, ws, open_,
                    capsule_id=self._lifecycle_capsule(
                        "open", cs.iso2, ws, open_)))
                continue
            keep = matches[0]
            for key in matches[1:]:
                merged = ws.opens.pop(key)
                events.append(self._emit(
                    "close", cs.iso2, ws, merged, outcome="merged",
                    capsule_id=self._merged_capsule(cs.iso2, ws, merged)))
            consumed.add(keep)
            open_ = ws.opens[keep]
            if open_.span != span or open_.signals != visible:
                open_.span = span
                open_.signals = visible
                events.append(self._emit(
                    "update", cs.iso2, ws, open_,
                    capsule_id=self._lifecycle_capsule(
                        "update", cs.iso2, ws, open_)))
        return events

    def _close_window(self, cs: _CountryState, ws: _WindowState,
                      adj: WindowAdjudication) -> List[StreamEvent]:
        """Resolve the window's lifecycle against its adjudication."""
        events: List[StreamEvent] = []
        consumed: set = set()
        for outcome in adj.outcomes:
            matches = sorted(
                key for key, open_ in ws.opens.items()
                if key not in consumed
                and open_.span.overlaps(outcome.span))
            consumed.update(matches)
            if outcome.outcome == "unobserved":
                # Never opened in the common case (the calendar gap is
                # checked before opening); a span drift that flipped the
                # check closes any stale open quietly.
                for key in matches:
                    events.append(self._emit(
                        "close", cs.iso2, ws, ws.opens.pop(key),
                        outcome="dismissed",
                        capsule_id=outcome.capsule_id))
                continue
            if matches:
                for key in matches[1:]:
                    merged = ws.opens.pop(key)
                    events.append(self._emit(
                        "close", cs.iso2, ws, merged, outcome="merged",
                        capsule_id=self._merged_capsule(cs.iso2, ws,
                                                        merged)))
                open_ = ws.opens.pop(matches[0])
                open_.span = outcome.span
                open_.signals = outcome.signals
                events.append(self._emit(
                    "close", cs.iso2, ws, open_,
                    outcome=outcome.outcome, record=outcome.record,
                    capsule_id=outcome.capsule_id))
                continue
            if not outcome.signals and outcome.outcome != "recorded":
                continue  # never visible, never opened: no lifecycle
            # Opened and closed within one advance: synthesize the open
            # so every close has a matching open on the wire.  Both
            # sides reference the adjudication capsule.
            open_ = _Open(key=outcome.span.start, span=outcome.span,
                          signals=outcome.signals)
            events.append(self._emit("open", cs.iso2, ws, open_,
                                     capsule_id=outcome.capsule_id))
            events.append(self._emit(
                "close", cs.iso2, ws, open_, outcome=outcome.outcome,
                record=outcome.record, capsule_id=outcome.capsule_id))
        for key in sorted(ws.opens):
            merged = ws.opens.pop(key)
            events.append(self._emit(
                "close", cs.iso2, ws, merged, outcome="merged",
                capsule_id=self._merged_capsule(cs.iso2, ws, merged)))
        return events

    def _lifecycle_capsule(self, state: str, iso2: str, ws: _WindowState,
                           open_: _Open,
                           outcome: Optional[str] = None) -> Optional[str]:
        """Mint a lifecycle capsule for a provisional event (or None).

        Provisional spans depend on how the feed was chunked, so these
        capsules are lifecycle evidence only — ``runs diff
        --provenance`` compares adjudication capsules exclusively.
        """
        recorder = current().provenance
        if recorder is None:
            return None
        payload: Dict = {
            "stage": "lifecycle",
            "state": state,
            "country_iso2": iso2,
            "window_start": ws.window.start,
            "span": {"start": open_.span.start, "end": open_.span.end},
            "signals": sorted(k.value for k in open_.signals),
        }
        if outcome is not None:
            payload["outcome"] = outcome
        return recorder.emit(payload)

    def _merged_capsule(self, iso2: str, ws: _WindowState,
                        open_: _Open) -> Optional[str]:
        """Capsule + decision counter for a merge-into-neighbour close."""
        current().metrics.counter("curation.decision.merged",
                                  reason="merged_into_neighbor").inc()
        return self._lifecycle_capsule("close", iso2, ws, open_,
                                       outcome="merged")

    def _emit(self, state: str, iso2: str, ws: _WindowState, open_: _Open,
              outcome: Optional[str] = None,
              record: Optional[OutageRecord] = None,
              capsule_id: Optional[str] = None) -> StreamEvent:
        assert self._watermark is not None
        return StreamEvent(
            seq=next(self._seq), state=state, key=f"{iso2}:{open_.key}",
            country_iso2=iso2, window_start=ws.window.start,
            span=open_.span, signals=open_.signals,
            watermark=self._watermark, outcome=outcome, record=record,
            capsule_id=capsule_id)

    # -- adjudication backends -------------------------------------------------

    def _adjudicate(self, due: Dict[str, List[_WindowState]]
                    ) -> Dict[str, List[WindowAdjudication]]:
        if not due:
            return {}
        work = {
            iso2: [(ws.window, self._episodes_of(ws, provisional=False))
                   for ws in states]
            for iso2, states in due.items()}
        if (self._backend == "serial" or self._workers <= 1
                or len(due) == 1):
            return {iso2: self._adjudicate_country(iso2, work[iso2])
                    for iso2 in sorted(due)}
        if self._backend == "thread":
            with ThreadPoolExecutor(
                    max_workers=min(self._workers, len(due))) as pool:
                futures = {
                    iso2: pool.submit(self._adjudicate_country, iso2,
                                      work[iso2])
                    for iso2 in sorted(due)}
                return {iso2: future.result()
                        for iso2, future in futures.items()}
        obs = current()
        with_provenance = obs.provenance is not None
        pool = self._ensure_pool()
        futures = {}
        for iso2 in sorted(due):
            cs = self._countries[iso2]
            futures[iso2] = pool.submit(
                adjudicate_country_subprocess, self._scenario_config,
                self._platform_config, self._curation_config,
                self._period, iso2, work[iso2],
                cs.rng.bit_generator.state, cs.next_record_id,
                self._signal_cache_size, with_provenance, cs.draws.index)
        out: Dict[str, List[WindowAdjudication]] = {}
        for iso2, future in futures.items():
            (adjudications, rng_state, next_record_id, capsules,
             draw_index) = future.result()
            cs = self._countries[iso2]
            cs.rng.bit_generator.state = rng_state
            cs.next_record_id = next_record_id
            cs.draws.index = draw_index
            if capsules:
                obs.adopt_provenance(capsules)
            out[iso2] = adjudications
        return out

    def _adjudicate_country(
            self, iso2: str,
            work: Sequence[Tuple[TimeRange,
                                 Dict[SignalKind, List[AlertEpisode]]]]
    ) -> List[WindowAdjudication]:
        cs = self._countries[iso2]
        record_ids = itertools.count(cs.next_record_id)
        adjudications = [
            self._pipeline.adjudicate_window(iso2, window, self._period,
                                             episodes, cs.rng, record_ids,
                                             draws=cs.draws)
            for window, episodes in work]
        cs.next_record_id = next(record_ids)
        return adjudications

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._process_pool is None:
            self._process_pool = ProcessPoolExecutor(
                max_workers=self._workers, initializer=worker_init,
                initargs=(self._scenario_config, self._platform_config,
                          self._signal_cache_size))
        return self._process_pool

    # -- completion ------------------------------------------------------------

    def finalized_records(self) -> List[OutageRecord]:
        """The canonical curated dataset, once every window closed.

        Same merge as batch: per-country lists in sorted country order
        through :func:`repro.ioda.curation.finalize_records`.  Raises
        :class:`~repro.errors.StreamError` while windows remain open —
        advance the watermark to :attr:`horizon` first.
        """
        pending = [(cs.iso2, ws.window.start)
                   for iso2 in self._order
                   for cs in (self._countries[iso2],)
                   for ws in cs.windows if not ws.adjudicated]
        if pending:
            raise StreamError(
                f"{len(pending)} windows still open (first: "
                f"{pending[0][0]} @ {pending[0][1]}); advance the "
                f"watermark to the horizon before finalizing")
        return finalize_records(
            self._countries[iso2].records for iso2 in self._order)

    def records_so_far(self) -> List[OutageRecord]:
        """Records of every window adjudicated so far (the live feed).

        Same deterministic merge as :meth:`finalized_records`, over
        whatever has closed — this is what a live
        :meth:`~repro.stream.session.StreamSession.client` serves, with
        the watermark as its feed revision.
        """
        return finalize_records(
            self._countries[iso2].records for iso2 in self._order)

    def close(self) -> None:
        """Release the process pool (no-op for other backends)."""
        if self._process_pool is not None:
            self._process_pool.shutdown()
            self._process_pool = None
