"""The incremental detection core.

:class:`StreamingAlertDetector` is the chunk-at-a-time counterpart of
:meth:`repro.signals.alerts.AlertDetector.detect`: bins arrive in
contiguous chunks (one per watermark advance), state is bounded to
O(window) per series (:class:`repro.stats.rolling.TrailingMedianStream`
plus a running max and a bin counter), and the alerts that come out are
**bitwise-identical** to scanning the concatenated series through the
batch detector — same running-max prefilter, same exact rank-select
baselines, same threshold compare.  ``REPRO_SCALAR_DETECT=1``
(:mod:`repro.flags`) selects the per-bin scalar mode, mirroring the
batch flag; both modes emit the same bits.

:class:`StreamingEpisodeGrouper` is the incremental counterpart of
:func:`repro.signals.alerts.group_alerts`: alerts stream in, maximal
episodes stream out as soon as a gap proves them closed, and the open
run is inspectable (the engine surfaces it as a provisional episode for
``open``/``update`` lifecycle events).

:func:`stream_episodes` composes the two over a whole series in one
feed — which is how the **batch** dashboard
(:mod:`repro.ioda.dashboard`) now runs: batch detection is literally
the streaming engine fed one maximal chunk, so there is exactly one
detection implementation to trust.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import SignalError
from repro.flags import scalar_detect
from repro.signals.alerts import Alert, AlertEpisode, DetectorConfig, \
    _check_grouping_args, _episode_from_run
from repro.signals.series import TimeSeries
from repro.stats.rolling import RollingMedian, TrailingMedianStream

__all__ = ["StreamingAlertDetector", "StreamingEpisodeGrouper",
           "stream_episodes"]


class StreamingAlertDetector:
    """Median-of-trailing-window drop detector over a growing series.

    Construct one per (series, signal); feed contiguous chunks in time
    order.  The detector keeps only the trailing history window, the
    running maximum, and the number of bins absorbed — never the whole
    series — so memory stays O(window) no matter how long the stream
    runs.  Feeding the entire series as one chunk reproduces
    :meth:`repro.signals.alerts.AlertDetector.detect` bit for bit; so
    does any other chunking, because every per-bin quantity (prefilter
    max, baseline median, threshold compare) depends only on the bins
    before it.

    The scalar/columnar mode is chosen at construction from
    ``REPRO_SCALAR_DETECT`` (the two modes emit identical alerts; the
    flag exists so the executable specification stays runnable end to
    end, exactly as in the batch detector).
    """

    def __init__(self, config: DetectorConfig, width: int):
        if width <= 0:
            raise SignalError(f"bin width must be positive: {width}")
        window = config.history_seconds // width
        if window <= 0:
            raise SignalError(
                f"history window {config.history_seconds}s shorter "
                f"than one bin ({width}s)")
        self._config = config
        self._width = width
        self._window = window
        self._min_history = max(
            1, int(window * config.min_history_fraction))
        self._scalar = scalar_detect()
        if self._scalar:
            self._tracker: Optional[RollingMedian] = RollingMedian(window)
            self._median: Optional[TrailingMedianStream] = None
        else:
            self._tracker = None
            self._median = TrailingMedianStream(window)
        self._running_max = -np.inf
        self._n = 0

    @property
    def config(self) -> DetectorConfig:
        return self._config

    @property
    def window(self) -> int:
        """History window, in bins."""
        return self._window

    @property
    def n_bins(self) -> int:
        """Total bins absorbed so far."""
        return self._n

    def feed(self, bin_starts: np.ndarray,
             values: np.ndarray) -> List[Alert]:
        """Absorb the next contiguous chunk; return its alerting bins."""
        values = np.ascontiguousarray(values, dtype=np.float64)
        if values.ndim != 1:
            raise SignalError("feed expects a one-dimensional chunk")
        if values.shape[0] == 0:
            return []
        if self._scalar:
            return self._feed_scalar(bin_starts, values)
        # Prefix maxima seeded with the running max: prev[j] is the
        # largest value strictly before global bin n + j, so the same
        # necessary-condition prefilter as the batch path applies
        # (median <= max of history, and rounding is monotone).
        m = np.maximum.accumulate(
            np.concatenate([[self._running_max], values]))
        prev = m[:-1]
        j = np.arange(values.shape[0])
        eligible = self._n + j >= self._min_history
        candidates = np.flatnonzero(
            eligible & (values < self._config.threshold * prev))
        alerts: List[Alert] = []
        if candidates.size:
            assert self._median is not None
            baselines = self._median.medians_at(values, candidates)
            keep = values[candidates] \
                < self._config.threshold * baselines
            alerts = [
                Alert(time=int(bin_starts[i]), value=float(values[i]),
                      baseline=float(baselines[k]))
                for k, i in zip(np.flatnonzero(keep), candidates[keep])]
        if self._median is not None:
            self._median.push(values)
        self._running_max = float(m[-1])
        self._n += values.shape[0]
        return alerts

    def _feed_scalar(self, bin_starts: np.ndarray,
                     values: np.ndarray) -> List[Alert]:
        """Per-bin reference mode (``REPRO_SCALAR_DETECT=1``)."""
        assert self._tracker is not None
        alerts: List[Alert] = []
        for ts, value in zip(bin_starts, values):
            baseline = self._tracker.median
            if (baseline is not None
                    and len(self._tracker) >= self._min_history
                    and value < self._config.threshold * baseline):
                alerts.append(Alert(time=int(ts), value=float(value),
                                    baseline=baseline))
            self._tracker.push(float(value))
            self._n += 1
        return alerts


class StreamingEpisodeGrouper:
    """Incremental :func:`repro.signals.alerts.group_alerts`.

    Alerts stream in (in time order); an episode is emitted the moment a
    later alert proves its run closed by exceeding the gap tolerance.
    The still-open run is observable as a provisional episode
    (:meth:`open_episode`) — the engine's ``open``/``update`` lifecycle
    events are exactly that view — and :meth:`finalize` flushes it when
    the series ends.  Feeding a full alert list and finalizing matches
    the batch grouper bit for bit.
    """

    def __init__(self, bin_width: int, max_gap_bins: int = 1):
        _check_grouping_args(bin_width, max_gap_bins)
        self._bin_width = bin_width
        self._max_gap = (max_gap_bins + 1) * bin_width
        self._run: List[Alert] = []
        self._closed = False

    @property
    def open_run_size(self) -> int:
        return len(self._run)

    def feed(self, alerts: Sequence[Alert]) -> List[AlertEpisode]:
        """Absorb alerts; return the episodes they prove closed."""
        if self._closed:
            raise SignalError("grouper already finalized")
        episodes: List[AlertEpisode] = []
        for alert in alerts:
            if self._run and alert.time <= self._run[-1].time \
                    + self._max_gap:
                self._run.append(alert)
            else:
                if self._run:
                    episodes.append(
                        _episode_from_run(self._run, self._bin_width))
                self._run = [alert]
        return episodes

    def open_episode(self) -> Optional[AlertEpisode]:
        """The provisional episode of the still-open run (or None)."""
        if not self._run:
            return None
        return _episode_from_run(self._run, self._bin_width)

    def finalize(self) -> List[AlertEpisode]:
        """Close the grouper, flushing the open run (idempotent)."""
        if self._closed:
            return []
        self._closed = True
        if not self._run:
            return []
        episode = _episode_from_run(self._run, self._bin_width)
        self._run = []
        return [episode]


def stream_episodes(series: TimeSeries, config: DetectorConfig,
                    max_gap_bins: int = 1) -> List[AlertEpisode]:
    """Detect and group one whole series through the streaming core.

    One maximal chunk through :class:`StreamingAlertDetector` and
    :class:`StreamingEpisodeGrouper` — bitwise-identical to the batch
    ``detect`` + ``group_alerts`` pair, which is why the dashboard
    (and through it all of batch curation) routes here: batch is the
    ingest-everything special case of the stream engine.
    """
    detector = StreamingAlertDetector(config, series.width)
    grouper = StreamingEpisodeGrouper(series.width,
                                      max_gap_bins=max_gap_bins)
    bin_starts, values = series.arrays()
    episodes = grouper.feed(detector.feed(bin_starts, values))
    episodes.extend(grouper.finalize())
    return episodes
